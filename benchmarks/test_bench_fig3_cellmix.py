"""Benchmark FIG3: non-linearity of the standard-cell mix configurations.

Regenerates the paper's Fig. 3 data series (error-vs-temperature curves
for the six reconstructed configurations) plus the exhaustive search
over all INV/NAND/NOR mixes the paper's method implies.  Asserted shape:
the mixes bracket the inverter-only ring and the best mix approaches the
transistor-level optimum of Fig. 2 without leaving the library.
"""

import pytest

from repro.experiments import run_fig2, run_fig3


@pytest.mark.benchmark(group="fig3")
def test_fig3_paper_configurations(benchmark, tech, paper_grid):
    result = benchmark.pedantic(
        run_fig3,
        kwargs=dict(technology=tech, temperatures_c=paper_grid, run_search=False),
        rounds=3,
        iterations=1,
    )
    print()
    print(result.format_table())

    reference = result.inverter_reference().max_abs_error_percent
    errors = {label: c.max_abs_error_percent for label, c in result.candidates.items()}
    assert min(errors.values()) < reference      # some mix improves on 5INV
    assert max(errors.values()) > reference      # some mix is worse than 5INV
    assert errors["5NAND2"] < 0.25               # a NAND-heavy mix is nearly linear
    assert errors["2INV+3NOR2"] > 1.0            # the NOR-heavy mix is clearly worse


@pytest.mark.benchmark(group="fig3")
def test_fig3_exhaustive_mix_search(benchmark, tech, paper_grid):
    result = benchmark.pedantic(
        run_fig3,
        kwargs=dict(technology=tech, temperatures_c=paper_grid, run_search=True),
        rounds=1,
        iterations=1,
    )
    fig2 = run_fig2(tech, temperatures_c=paper_grid)
    best_mix = result.best_searched_configuration().max_abs_error_percent
    best_sizing = fig2.sweep.best().max_abs_error_percent
    # Cell-level optimisation reaches the same level as transistor-level
    # sizing (the paper's headline claim), within a factor of two.
    assert best_mix < 2.0 * best_sizing
    assert result.search.evaluated_count >= 100
