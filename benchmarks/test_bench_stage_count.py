"""Benchmark STAGES: linearity versus the number of ring stages.

Regenerates the paper's textual claim that 5-, 9- and 21-stage rings
have similar linearity, so the stage count can be chosen for period /
area / readout reasons.
"""

import pytest

from repro.experiments import run_stage_count


@pytest.mark.benchmark(group="stages")
def test_stage_count_study(benchmark, tech):
    result = benchmark.pedantic(
        run_stage_count,
        kwargs=dict(technology=tech),
        rounds=3,
        iterations=1,
    )
    print()
    print(result.format_table())

    # Normalised non-linearity is essentially independent of stage count.
    assert result.nonlinearity_spread_percent() < 0.05
    # The absolute period scales proportionally with the stage count.
    assert result.period_scaling_error() < 0.05


@pytest.mark.benchmark(group="stages")
def test_stage_count_with_cell_mix_stages(benchmark, tech):
    """Extension: the stage-count insensitivity also holds for NAND rings."""
    result = benchmark.pedantic(
        run_stage_count,
        kwargs=dict(technology=tech, cell_name="NAND2", stage_counts=(5, 9, 21)),
        rounds=2,
        iterations=1,
    )
    assert result.nonlinearity_spread_percent() < 0.05
