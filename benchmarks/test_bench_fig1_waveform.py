"""Benchmark FIG1: transient simulation of the 5-stage inverter ring.

Regenerates the paper's Fig. 1 (the ring-oscillator output waveform)
with the transistor-level MNA simulator and reports the runtime of the
full transient.  Asserted shape: rail-to-rail oscillation with a period
of a few hundred picoseconds that tracks the analytical model.
"""

import pytest

from repro.experiments import run_fig1


@pytest.mark.benchmark(group="fig1")
def test_fig1_ring_transient_waveform(benchmark, tech):
    result = benchmark.pedantic(
        run_fig1,
        kwargs=dict(technology=tech, cycles=4.0, points_per_period=120),
        rounds=2,
        iterations=1,
    )
    assert result.oscillates
    # Period in the hundreds of picoseconds at the 0.35 um node.
    assert 50e-12 < result.simulated_period_s < 2e-9
    # The waveform-extracted period tracks the analytical model used by
    # all other experiments (same physics, different evaluation path).
    assert result.period_mismatch_rel < 0.6


@pytest.mark.benchmark(group="fig1")
def test_fig1_waveform_spans_paper_time_axis(benchmark, tech):
    result = benchmark.pedantic(
        run_fig1,
        kwargs=dict(technology=tech, cycles=6.0, points_per_period=100),
        rounds=1,
        iterations=1,
    )
    # The paper's Fig. 1 shows roughly 0..1.5 ns; six periods of our ring
    # covers a comparable span.
    assert result.waveform.duration > 0.8e-9
    assert result.waveform.is_oscillating(supply=tech.vdd)
