"""Benchmark SMART: the smart-unit features of the paper's Section 3.

Regenerates the quantitative view of the smart unit: digital transfer
function, quantisation-limited resolution, calibrated accuracy,
duty-cycling power saving, and the multiplexed thermal-mapping scan on
the example floorplan.
"""

import pytest

from repro.experiments import run_smart_unit


@pytest.mark.benchmark(group="smart-unit")
def test_smart_unit_single_sensor_and_mapping(benchmark, tech):
    result = benchmark.pedantic(
        run_smart_unit,
        kwargs=dict(technology=tech, sensor_grid=3),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format_summary())

    # Digital conversion behaves like a sensor datasheet would promise.
    assert result.transfer.is_monotonic()
    assert result.resolution.temperature_resolution_c < 0.1
    assert result.worst_measurement_error_c < 1.0
    assert result.conversion_time_s < 100e-6

    # Disabling the oscillator between measurements saves orders of
    # magnitude of sensor power (the anti-self-heating feature).
    assert result.power_saving_factor() > 20.0

    # The multiplexed sensor bank reads its local junction temperatures
    # accurately and reconstructs the die map to within a few degrees.
    assert result.mapping_report.worst_site_error_c() < 1.0
    assert result.mapping_report.map_rms_error_c() < result.mapping_report.true_map.gradient_c()


@pytest.mark.benchmark(group="smart-unit")
def test_smart_unit_denser_sensor_grid_improves_map(benchmark, tech):
    """Ablation: more multiplexed sensors -> better thermal-map reconstruction."""
    sparse = run_smart_unit(tech, sensor_grid=2)
    dense = benchmark.pedantic(
        run_smart_unit,
        kwargs=dict(technology=tech, sensor_grid=4),
        rounds=1,
        iterations=1,
    )
    assert dense.mapping_report.map_rms_error_c() < sparse.mapping_report.map_rms_error_c()
