"""Benchmarks for the extension experiments (EXT-SUPPLY / EXT-SCALING / EXT-DTM).

These go beyond the paper's own evaluation but exercise the same system:
supply-noise rejection of the sensor, its portability across technology
nodes, and the closed-loop thermal-management application the paper
motivates in its introduction.
"""

import numpy as np
import pytest

from repro.experiments import run_dtm_study, run_scaling_study, run_supply_sensitivity


@pytest.mark.benchmark(group="extensions")
def test_ext_supply_sensitivity(benchmark, tech):
    result = benchmark.pedantic(
        run_supply_sensitivity,
        kwargs=dict(technology=tech),
        rounds=2,
        iterations=1,
    )
    print()
    print(result.format_table())

    # Every configuration tolerates at least a few millivolts per kelvin
    # of budget, and the mix choice changes the budget measurably.
    budgets = [
        report.supply_error_budget_mv(1.0) for report in result.reports.values()
    ]
    assert min(budgets) > 3.0
    assert max(budgets) / min(budgets) > 1.1


@pytest.mark.benchmark(group="extensions")
def test_ext_scaling_study(benchmark):
    result = benchmark.pedantic(
        run_scaling_study,
        kwargs=dict(temperatures_c=np.linspace(-50.0, 150.0, 9), reoptimize=True),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format_table())

    # The sensing principle survives scaling (sensitivity retained), the
    # fixed 0.35 um mix degrades at low supply, and re-running the
    # paper's optimisation recovers part of that loss on every node.
    assert result.sensitivity_retained() > 0.5
    nonlinearities = [p.max_nonlinearity_percent for p in result.points]
    assert nonlinearities[-1] > nonlinearities[0]
    for point in result.points:
        assert point.reoptimized_nonlinearity_percent <= point.max_nonlinearity_percent + 1e-9


@pytest.mark.benchmark(group="extensions")
def test_ext_dtm_closed_loop(benchmark, tech):
    result = benchmark.pedantic(
        run_dtm_study,
        kwargs=dict(
            technology=tech,
            duration_s=1.0,
            control_interval_s=0.025,
            grid_resolution=16,
            sensor_grid=3,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format_summary())

    # Without management the power-virus workload overheats the die; with
    # the sensor-driven policy the peak drops below (or near) the limit at
    # a finite performance cost.
    assert result.unmanaged.peak_temperature_c() > result.limit_c + 10.0
    assert result.keeps_die_below_limit(tolerance_c=5.0)
    assert result.peak_reduction_c() > 10.0
    assert 0.0 < result.performance_cost() < 0.9
