"""Benchmark ABL-CAL: calibration effort versus accuracy over process spread.

Quantifies why the smart unit needs (and how much it gains from)
per-die calibration: process variation moves the absolute oscillation
frequency a lot, the linearity very little.
"""

import pytest

from repro.experiments import run_calibration_study


@pytest.mark.benchmark(group="calibration")
def test_calibration_scheme_ablation(benchmark, tech):
    result = benchmark.pedantic(
        run_calibration_study,
        kwargs=dict(technology=tech, monte_carlo_samples=8, seed=20250617),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format_table())

    design = result.worst_by_scheme["design"]
    one_point = result.worst_by_scheme["one-point"]
    two_point = result.worst_by_scheme["two-point"]

    # Each calibration insertion buys a large accuracy improvement ...
    assert one_point < design
    assert two_point < one_point
    # ... and after two points only the intrinsic non-linearity is left.
    assert two_point < 1.5
    assert design > 5.0


@pytest.mark.benchmark(group="calibration")
def test_calibration_study_linear_mix_vs_inverter(benchmark, tech):
    """The two-point residual tracks the configuration's non-linearity."""
    inverter_only = run_calibration_study(
        tech, configuration_text="5INV", monte_carlo_samples=4, seed=7
    )
    linear_mix = benchmark.pedantic(
        run_calibration_study,
        kwargs=dict(
            technology=tech,
            configuration_text="2INV+3NAND2",
            monte_carlo_samples=4,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    assert (
        linear_mix.worst_by_scheme["two-point"]
        < inverter_only.worst_by_scheme["two-point"]
    )
