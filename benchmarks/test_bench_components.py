"""Micro-benchmarks of the library's computational kernels.

Not tied to a paper figure; these track the cost of the building blocks
every experiment relies on (analytical period evaluation, transient
timesteps, thermal solves, cell characterisation) so performance
regressions are visible independently of the experiment-level benches.
"""

import numpy as np
import pytest

from repro.analysis import nonlinearity
from repro.cells import characterize_cell, inverter
from repro.oscillator import RingConfiguration, RingOscillator, analytical_response
from repro.thermal import PowerMap, ThermalGrid, solve_steady_state
from repro.thermal.floorplan import Floorplan


@pytest.mark.benchmark(group="kernels")
def test_kernel_ring_period_evaluation(benchmark, library):
    ring = RingOscillator(library, RingConfiguration.parse("2INV+3NAND2"))
    period = benchmark(ring.period, 85.0)
    assert 100e-12 < period < 1e-9


@pytest.mark.benchmark(group="kernels")
def test_kernel_full_temperature_sweep(benchmark, library):
    ring = RingOscillator(library, RingConfiguration.uniform("INV", 5))
    temps = np.linspace(-50.0, 150.0, 41)

    def sweep():
        return nonlinearity(analytical_response(ring, temps)).max_abs_error_percent

    error = benchmark(sweep)
    assert error < 1.0


@pytest.mark.benchmark(group="kernels")
def test_kernel_cell_characterisation(benchmark, tech):
    cell = inverter(tech)
    table = benchmark(
        characterize_cell, cell, (-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0)
    )
    assert table.temperatures_c.size == 9


@pytest.mark.benchmark(group="kernels")
def test_kernel_thermal_steady_state_solve(benchmark):
    power = PowerMap.from_floorplan(Floorplan.example_processor(), nx=32, ny=32)
    grid = ThermalGrid.for_power_map(power)
    result = benchmark(solve_steady_state, grid, power, 45.0)
    assert result.max_c() > 45.0


@pytest.mark.benchmark(group="kernels")
def test_kernel_transient_timestep_cost(benchmark, library):
    """Cost of a short transistor-level transient (fixed work unit)."""
    from repro.circuit import TransientOptions, simulate_transient

    ring = RingOscillator(library, RingConfiguration.uniform("INV", 3))
    circuit = ring.build_circuit(27.0)
    period_estimate = ring.period(27.0)
    options = TransientOptions(timestep=period_estimate / 100.0, use_dc_start=False)

    def run():
        return simulate_transient(circuit, period_estimate, options)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.times.size > 50
