"""Benchmark FIG2: non-linearity versus Wp/Wn ratio (transistor sizing).

Regenerates the paper's Fig. 2 data series (error-vs-temperature curves
for ratios 1.75 / 2.25 / 3 / 4 plus the continuous optimum) and prints
the same rows the paper plots.  Asserted shape: the error is strongly
ratio dependent, changes sign across the sweep, and the best ratio
reaches the paper's "below 0.2 %" level.
"""

import pytest

from repro.experiments import run_fig2


@pytest.mark.benchmark(group="fig2")
def test_fig2_width_ratio_sweep(benchmark, tech, paper_grid):
    result = benchmark.pedantic(
        run_fig2,
        kwargs=dict(technology=tech, temperatures_c=paper_grid),
        rounds=3,
        iterations=1,
    )
    print()
    print(result.format_table())

    sweep = result.sweep
    assert sweep.improvement_factor() > 2.0
    assert sweep.best().max_abs_error_percent < 0.2
    # Sign flip across the swept ratios (the optimum is interior).
    mid_errors = {p.width_ratio: p.linearity.error_at(50.0) for p in sweep.points}
    assert mid_errors[1.75] > 0.0 > mid_errors[4.0]
    # The continuous optimum lies inside the paper's swept range.
    assert 1.75 <= result.optimum.width_ratio <= 4.0


@pytest.mark.benchmark(group="fig2")
def test_fig2_dense_temperature_resolution(benchmark, tech):
    """Same experiment on a dense 41-point grid (stress the sweep cost)."""
    import numpy as np

    dense = np.linspace(-50.0, 150.0, 41)
    result = benchmark.pedantic(
        run_fig2,
        kwargs=dict(technology=tech, temperatures_c=dense),
        rounds=2,
        iterations=1,
    )
    assert result.sweep.best().max_abs_error_percent < 0.25
