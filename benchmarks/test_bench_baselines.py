"""Benchmark BASE: proposed cell-mix sensor versus the prior-art baselines.

Regenerates the comparison the paper's introduction argues in prose:
the cell-based ring sensor versus the analogue diode sensor (Pentium 4 /
PowerPC style) and the FPGA ring oscillator of reference [5].
"""

import pytest

from repro.experiments import run_baseline_comparison


@pytest.mark.benchmark(group="baselines")
def test_baseline_comparison_table(benchmark, tech, paper_grid):
    result = benchmark.pedantic(
        run_baseline_comparison,
        kwargs=dict(technology=tech, temperatures_c=paper_grid),
        rounds=2,
        iterations=1,
    )
    print()
    print(result.format_table())

    proposed = result.entry("proposed cell-mix ring")
    plain = result.entry("inverter-only ring")
    fpga = result.entry("FPGA-style ring [5]")
    diode = result.entry("diode delta-VBE sensor")

    # The optimised cell mix beats the unoptimised digital alternatives.
    assert proposed.worst_error_c < plain.worst_error_c
    assert proposed.worst_error_c < fpga.worst_error_c
    # It is competitive with the analogue diode chain while needing no
    # analogue design and a fraction of the area.
    assert proposed.worst_error_c < diode.worst_error_c
    assert not proposed.requires_analog_design
    assert diode.requires_analog_design
    assert proposed.area_um2 < 0.1 * diode.area_um2


@pytest.mark.benchmark(group="baselines")
def test_baseline_comparison_with_alternative_mix(benchmark, tech, paper_grid):
    """The comparison's conclusion is not specific to one particular mix."""
    result = benchmark.pedantic(
        run_baseline_comparison,
        kwargs=dict(
            technology=tech,
            temperatures_c=paper_grid,
            proposed_configuration="5NAND2",
        ),
        rounds=1,
        iterations=1,
    )
    proposed = result.entry("proposed cell-mix ring")
    plain = result.entry("inverter-only ring")
    assert proposed.worst_error_c < plain.worst_error_c
