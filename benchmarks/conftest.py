"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's figures/claims (see the
per-experiment index in DESIGN.md) and asserts the qualitative "shape"
of the result — who wins and in which direction — so a regression in the
models is caught even though absolute numbers differ from the authors'
testbed.
"""

import numpy as np
import pytest

from repro.cells import default_library
from repro.tech import CMOS035


@pytest.fixture(scope="session")
def tech():
    return CMOS035


@pytest.fixture(scope="session")
def library(tech):
    return default_library(tech)


@pytest.fixture(scope="session")
def paper_grid():
    return np.asarray([-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0])
