"""Benchmark ABL-SELFHEAT: the value of disabling the oscillator.

Quantifies the paper's stated motivation for the enable/disable feature
of the smart unit: a free-running ring biases its own reading upward,
and duty cycling removes almost all of that error.
"""

import pytest

from repro.experiments import run_selfheating_study


@pytest.mark.benchmark(group="self-heating")
def test_selfheating_duty_cycle_ablation(benchmark, tech):
    result = benchmark.pedantic(
        run_selfheating_study,
        kwargs=dict(technology=tech, grid_resolution=24),
        rounds=2,
        iterations=1,
    )
    print()
    print(result.format_table())

    # Free-running self-heating is a measurable bias ...
    assert result.free_running_error_c() > 0.05
    # ... which the measurement duty cycle reduces by orders of magnitude.
    assert result.improvement_factor() > 20.0
    rises = [r.temperature_rise_c for r in result.reports]
    assert rises == sorted(rises, reverse=True)


@pytest.mark.benchmark(group="self-heating")
def test_selfheating_scales_with_oscillator_power(benchmark, tech):
    """Sanity ablation: a hotter sensor macro produces proportionally more bias."""
    light = run_selfheating_study(tech, configuration_text="5INV", grid_resolution=16)
    heavy = benchmark.pedantic(
        run_selfheating_study,
        kwargs=dict(technology=tech, configuration_text="5NAND2", grid_resolution=16),
        rounds=1,
        iterations=1,
    )
    ratio = heavy.free_running_error_c() / light.free_running_error_c()
    power_ratio = heavy.oscillator_power_w / light.oscillator_power_w
    assert ratio == pytest.approx(power_ratio, rel=0.1)
