"""Benchmark ENGINE: scalar loops versus the vectorized batch engine.

Times the two evaluation modes of :class:`repro.engine.BatchEvaluator`
on the workloads the paper's artefacts are built from — Monte-Carlo
populations (25 / 200 / 1000 samples x 41 temperatures) and the Fig. 2
sizing sweep — so the recorded BENCH_*.json tracks the speedup over
time.  Asserted shape: at the realistic 200-sample point the vectorized
engine is at least 3x faster than the scalar reference loop and agrees
with it to 1e-9 relative on every period.
"""

import time

import numpy as np
import pytest

from repro.engine import BatchEvaluator
from repro.oscillator import RingConfiguration
from repro.tech import CMOS035

CONFIGURATION = RingConfiguration.parse("2INV+3NAND2")
DENSE_GRID = np.linspace(-50.0, 150.0, 41)


def _run_monte_carlo(vectorized, sample_count):
    return BatchEvaluator(vectorized=vectorized).run_monte_carlo(
        CMOS035,
        CONFIGURATION,
        sample_count=sample_count,
        temperatures_c=DENSE_GRID,
        seed=1234,
    )


@pytest.mark.benchmark(group="engine-mc-25")
@pytest.mark.parametrize("vectorized", [True, False], ids=["vectorized", "scalar"])
def test_monte_carlo_25_samples(benchmark, vectorized):
    study = benchmark.pedantic(
        _run_monte_carlo, args=(vectorized, 25), rounds=3, iterations=1
    )
    assert study.sample_count == 25


@pytest.mark.benchmark(group="engine-mc-200")
@pytest.mark.parametrize("vectorized", [True, False], ids=["vectorized", "scalar"])
def test_monte_carlo_200_samples(benchmark, vectorized):
    study = benchmark.pedantic(
        _run_monte_carlo, args=(vectorized, 200), rounds=2, iterations=1
    )
    assert study.sample_count == 200


@pytest.mark.slow
@pytest.mark.benchmark(group="engine-mc-1000")
@pytest.mark.parametrize("vectorized", [True, False], ids=["vectorized", "scalar"])
def test_monte_carlo_1000_samples(benchmark, vectorized):
    study = benchmark.pedantic(
        _run_monte_carlo, args=(vectorized, 1000), rounds=1, iterations=1
    )
    assert study.sample_count == 1000


def test_monte_carlo_speedup_at_200x41():
    """The ISSUE acceptance criterion: >= 3x at 200 samples x 41 temps,
    with vectorized-vs-scalar relative period error bounded by 1e-9."""
    start = time.perf_counter()
    vectorized = _run_monte_carlo(True, 200)
    vectorized_s = time.perf_counter() - start

    start = time.perf_counter()
    scalar = _run_monte_carlo(False, 200)
    scalar_s = time.perf_counter() - start

    speedup = scalar_s / vectorized_s
    print(f"\nengine speedup at 200x41: {speedup:.1f}x "
          f"(scalar {scalar_s * 1e3:.0f} ms, vectorized {vectorized_s * 1e3:.0f} ms)")
    assert speedup >= 3.0

    worst = max(
        float(np.max(np.abs(v.periods_s - s.periods_s) / s.periods_s))
        for v, s in zip(vectorized.responses, scalar.responses)
    )
    assert worst <= 1e-9
    assert vectorized.period_spread_percent == pytest.approx(
        scalar.period_spread_percent, rel=1e-9
    )


@pytest.mark.benchmark(group="engine-fig2-sweep")
@pytest.mark.parametrize("vectorized", [True, False], ids=["vectorized", "scalar"])
def test_sizing_sweep_dense_grid(benchmark, vectorized, tech):
    engine = BatchEvaluator(vectorized=vectorized)
    result = benchmark.pedantic(
        engine.sweep_width_ratio,
        args=(tech,),
        kwargs=dict(temperatures_c=DENSE_GRID),
        rounds=3,
        iterations=1,
    )
    assert result.best().max_abs_error_percent < 0.25
