"""Benchmark ENGINE: scalar loops versus the vectorized batch engine.

Times the two evaluation modes of :class:`repro.engine.BatchEvaluator`
on the workloads the paper's artefacts are built from — Monte-Carlo
populations (25 / 200 / 1000 samples x 41 temperatures), the Fig. 2
sizing sweep and the Fig. 3 x Monte-Carlo configuration-axis cross
product — so the recorded BENCH_engine.json tracks the speedup over
time (CI regenerates it at the repo root via
``pytest benchmarks/test_bench_engine.py --benchmark-json=BENCH_engine.json``;
see .github/workflows/ci.yml).  Asserted shape: at the realistic
200-sample point the vectorized engine is at least 3x faster than the
scalar reference loop and agrees with it to 1e-9 relative on every
period; at 1000 samples the stacked sample axis (struct-of-arrays
technologies, PR 2) is at least 3x faster than PR 1's per-sample rebind
loop with the same 1e-9 agreement; and the (C, S, T) configuration-axis
broadcast (ConfigurationBank, PR 3) is at least 3x faster than the
retained per-configuration loop at Fig. 3 scale, again to 1e-9.
"""

import time

import numpy as np
import pytest

from repro.cells import default_library
from repro.engine import Axis, BatchEvaluator, Sweep
from repro.oscillator import (
    PAPER_FIG3_CONFIGURATIONS,
    ConfigurationBank,
    RingConfiguration,
    RingOscillator,
)
from repro.tech import CMOS035, sample_technology_array

CONFIGURATION = RingConfiguration.parse("2INV+3NAND2")
DENSE_GRID = np.linspace(-50.0, 150.0, 41)


def _best_time(callable_, rounds=3):
    """Best-of-N wall-clock time (and last result) of a zero-arg callable.

    The speedup assertions gate CI on shared runners, where a scheduling
    stall inside the short fast-path window would fake a slowdown; the
    minimum over a few rounds removes that flake vector.  (A stall in
    the *slow* reference path only increases the measured speedup, so a
    single slow-path run stays sound.)
    """
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def _run_monte_carlo(vectorized, sample_count):
    return BatchEvaluator(vectorized=vectorized).run_monte_carlo(
        CMOS035,
        CONFIGURATION,
        sample_count=sample_count,
        temperatures_c=DENSE_GRID,
        seed=1234,
    )


@pytest.mark.benchmark(group="engine-mc-25")
@pytest.mark.parametrize("vectorized", [True, False], ids=["vectorized", "scalar"])
def test_monte_carlo_25_samples(benchmark, vectorized):
    study = benchmark.pedantic(
        _run_monte_carlo, args=(vectorized, 25), rounds=3, iterations=1
    )
    assert study.sample_count == 25


@pytest.mark.benchmark(group="engine-mc-200")
@pytest.mark.parametrize("vectorized", [True, False], ids=["vectorized", "scalar"])
def test_monte_carlo_200_samples(benchmark, vectorized):
    study = benchmark.pedantic(
        _run_monte_carlo, args=(vectorized, 200), rounds=2, iterations=1
    )
    assert study.sample_count == 200


@pytest.mark.slow
@pytest.mark.benchmark(group="engine-mc-1000")
@pytest.mark.parametrize("vectorized", [True, False], ids=["vectorized", "scalar"])
def test_monte_carlo_1000_samples(benchmark, vectorized):
    study = benchmark.pedantic(
        _run_monte_carlo, args=(vectorized, 1000), rounds=1, iterations=1
    )
    assert study.sample_count == 1000


def test_monte_carlo_speedup_at_200x41():
    """The ISSUE acceptance criterion: >= 3x at 200 samples x 41 temps,
    with vectorized-vs-scalar relative period error bounded by 1e-9."""
    vectorized_s, vectorized = _best_time(lambda: _run_monte_carlo(True, 200))

    start = time.perf_counter()
    scalar = _run_monte_carlo(False, 200)
    scalar_s = time.perf_counter() - start

    speedup = scalar_s / vectorized_s
    print(f"\nengine speedup at 200x41: {speedup:.1f}x "
          f"(scalar {scalar_s * 1e3:.0f} ms, vectorized {vectorized_s * 1e3:.0f} ms)")
    assert speedup >= 3.0

    worst = max(
        float(np.max(np.abs(v.periods_s - s.periods_s) / s.periods_s))
        for v, s in zip(vectorized.responses, scalar.responses)
    )
    assert worst <= 1e-9
    assert vectorized.period_spread_percent == pytest.approx(
        scalar.period_spread_percent, rel=1e-9
    )


def test_stacked_speedup_at_1000x41():
    """The PR 2 acceptance criterion: the stacked sample axis is >= 3x
    faster than the PR 1 per-sample rebind loop at 1000 Monte-Carlo
    samples x 41 temperatures, agreeing to 1e-9 relative on every
    period."""
    ring = RingOscillator(default_library(CMOS035), CONFIGURATION)
    population = sample_technology_array(CMOS035, 1000, seed=1234)

    stacked_s, stacked = _best_time(
        lambda: ring.period_matrix(population, DENSE_GRID)
    )

    start = time.perf_counter()
    looped = ring.period_matrix_loop(population, DENSE_GRID)
    looped_s = time.perf_counter() - start

    speedup = looped_s / stacked_s
    print(f"\nstacked speedup at 1000x41: {speedup:.1f}x "
          f"(looped {looped_s * 1e3:.0f} ms, stacked {stacked_s * 1e3:.0f} ms)")
    assert speedup >= 3.0

    assert stacked.shape == looped.shape == (1000, DENSE_GRID.size)
    worst = float(np.max(np.abs(stacked - looped) / np.abs(looped)))
    assert worst <= 1e-9


@pytest.mark.benchmark(group="engine-stacked-1000x41")
@pytest.mark.parametrize("mode", ["stacked", "looped"])
def test_period_matrix_1000_samples(benchmark, mode):
    ring = RingOscillator(default_library(CMOS035), CONFIGURATION)
    population = sample_technology_array(CMOS035, 1000, seed=1234)
    evaluate = (
        ring.period_matrix if mode == "stacked" else ring.period_matrix_loop
    )
    matrix = benchmark.pedantic(
        evaluate, args=(population, DENSE_GRID), rounds=2, iterations=1
    )
    assert matrix.shape == (1000, DENSE_GRID.size)


def test_configuration_axis_speedup_at_fig3_scale():
    """The PR 3 acceptance criterion: the Fig. 3 x Monte-Carlo cross
    product evaluated as one (C, S, T) broadcast through the
    configuration bank is >= 3x faster than the retained
    per-configuration loop at Fig. 3 scale (6 configurations x 1000
    samples x 41 temperatures), agreeing to 1e-9 relative on every
    period."""
    bank = ConfigurationBank(default_library(CMOS035), PAPER_FIG3_CONFIGURATIONS)
    population = sample_technology_array(CMOS035, 1000, seed=1234)

    stacked_s, stacked = _best_time(
        lambda: bank.period_tensor(DENSE_GRID, technologies=population)
    )

    start = time.perf_counter()
    looped = bank.period_tensor_loop(DENSE_GRID, technologies=population)
    looped_s = time.perf_counter() - start

    speedup = looped_s / stacked_s
    print(f"\nconfiguration-axis speedup at 6x1000x41: {speedup:.1f}x "
          f"(looped {looped_s * 1e3:.0f} ms, broadcast {stacked_s * 1e3:.0f} ms)")
    assert speedup >= 3.0

    assert stacked.shape == looped.shape == (
        len(PAPER_FIG3_CONFIGURATIONS), 1000, DENSE_GRID.size
    )
    worst = float(np.max(np.abs(stacked - looped) / np.abs(looped)))
    assert worst <= 1e-9


@pytest.mark.benchmark(group="engine-config-bank-6x1000x41")
@pytest.mark.parametrize("mode", ["broadcast", "looped"])
def test_configuration_bank_fig3_cross_product(benchmark, mode):
    bank = ConfigurationBank(default_library(CMOS035), PAPER_FIG3_CONFIGURATIONS)
    population = sample_technology_array(CMOS035, 1000, seed=1234)
    evaluate = (
        bank.period_tensor if mode == "broadcast" else bank.period_tensor_loop
    )
    tensor = benchmark.pedantic(
        evaluate,
        args=(DENSE_GRID,),
        kwargs=dict(technologies=population),
        rounds=2,
        iterations=1,
    )
    assert tensor.shape == (len(PAPER_FIG3_CONFIGURATIONS), 1000, DENSE_GRID.size)


@pytest.mark.benchmark(group="engine-fig3-sweep")
@pytest.mark.parametrize("vectorized", [True, False], ids=["sweep", "scalar"])
def test_fig3_named_configurations_through_sweep_api(benchmark, vectorized):
    """The declarative form of the Fig. 3 sweep: configuration axis x
    temperature axis, lowered onto the bank broadcast (or the scalar
    oracle loop through the compat evaluator).  The library is built
    outside both timed closures so the comparison measures evaluation,
    not library construction."""
    library = default_library(CMOS035)
    if vectorized:
        def evaluate():
            return (
                Sweep(library=library)
                .over(Axis.configuration(PAPER_FIG3_CONFIGURATIONS))
                .over(Axis.temperature(DENSE_GRID))
                .run()
                .values
            )
    else:
        engine = BatchEvaluator(vectorized=False)

        def evaluate():
            return np.stack([
                engine.evaluate_configuration(
                    library, configuration, DENSE_GRID
                ).response.periods_s
                for configuration in PAPER_FIG3_CONFIGURATIONS.values()
            ])

    tensor = benchmark.pedantic(evaluate, rounds=2, iterations=1)
    assert tensor.shape == (len(PAPER_FIG3_CONFIGURATIONS), DENSE_GRID.size)


@pytest.mark.benchmark(group="engine-calibration-study")
@pytest.mark.parametrize("vectorized", [True, False], ids=["vectorized", "scalar"])
def test_calibration_study_batched(benchmark, vectorized):
    engine = BatchEvaluator(vectorized=vectorized)
    result = benchmark.pedantic(
        engine.run_calibration_study,
        kwargs=dict(monte_carlo_samples=12),
        rounds=2,
        iterations=1,
    )
    assert result.sample_count == 17


@pytest.mark.benchmark(group="engine-fig2-sweep")
@pytest.mark.parametrize("vectorized", [True, False], ids=["vectorized", "scalar"])
def test_sizing_sweep_dense_grid(benchmark, vectorized, tech):
    engine = BatchEvaluator(vectorized=vectorized)
    result = benchmark.pedantic(
        engine.sweep_width_ratio,
        args=(tech,),
        kwargs=dict(temperatures_c=DENSE_GRID),
        rounds=3,
        iterations=1,
    )
    assert result.best().max_abs_error_percent < 0.25
