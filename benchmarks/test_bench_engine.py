"""Benchmark ENGINE: scalar loops versus the vectorized batch engine.

Times the two evaluation modes of :class:`repro.engine.BatchEvaluator`
on the workloads the paper's artefacts are built from — Monte-Carlo
populations (25 / 200 / 1000 samples x 41 temperatures), the Fig. 2
sizing sweep and the Fig. 3 x Monte-Carlo configuration-axis cross
product — so the recorded BENCH_engine.json tracks the speedup over
time (CI regenerates it at the repo root via
``pytest benchmarks/test_bench_engine.py --benchmark-json=BENCH_engine.json``;
see .github/workflows/ci.yml).  Asserted shape: at the realistic
200-sample point the vectorized engine is at least 3x faster than the
scalar reference loop and agrees with it to 1e-9 relative on every
period; at 1000 samples the stacked sample axis (struct-of-arrays
technologies, PR 2) is at least 3x faster than PR 1's per-sample rebind
loop with the same 1e-9 agreement; the (C, S, T) configuration-axis
broadcast (ConfigurationBank, PR 3) is at least 3x faster than the
retained per-configuration loop at Fig. 3 scale, again to 1e-9; the
banked sensor-bank scan (SensorBank, PR 4) is at least 3x faster than
the per-sensor oracle at 9 sites x 1000 Monte-Carlo samples with exact
counter codes; repeated steady-state thermal solves through the
cached ThermalOperator factorization are at least 3x faster than the
factorize-per-solve path they replaced; the banked DTM policy sweep
(PolicyBank, PR 5) is at least 3x faster than looping the scalar
closed loop over 8 policies with bit-identical throttle decisions; and
the iterative CG fallback agrees with sparse-direct to 1e-8 while
running a 96x96 grid — 4x the unknowns of the largest factorized
benchmark grid (48x48); and the tiled multiprocess sweep backend
(PR 6) is at least 2x faster than serial tiles at 4 workers on the
20000-sample Monte-Carlo x dense-grid sweep, bitwise identical to the
dense path (the speedup floor is asserted only where >= 4 cores are
actually available; the ``sweep-tiled-parallel`` group is recorded
everywhere); the batched block-CG path (PR 7) does at least 2x less
preconditioner work than the per-column loop it replaced on a 16-column
96x96 stack (the floor is counted in V-cycle applications — every
operation is O(nk) memory-bound, so the wall-clock ratio is hardware-
dependent; both wall clocks are recorded); and on the 256x256 full-die
grid the geometric-multigrid solve (PR 7) is at least 3x faster than
even a 100-iteration slice of the ILU-CG it displaced (a strict lower
bound: ILU does not converge within 1000 iterations there), steady and
dt=1e-2 transient both, in the slow lane; and the sweep service's
micro-batcher (PR 8) answers 16 concurrent point queries at least 2x
faster than the same 16 queries issued sequentially against an
unbatched server (one broadcast evaluation instead of 16), bitwise
identical to local evaluation (the ``serve-microbatch`` group records
both wall clocks); and the technology-node study (PR 10) — 4 nodes x
200 Monte-Carlo samples x 41 temperatures, the workload the declarative
``technology`` sweep axis amortizes — runs at least 2x faster through
the per-node banked broadcast the axis lowers onto than through
rebinding a scalar technology per sample, to 1e-9 relative agreement
(the ``sweep-technology-axis`` group records both forms).
"""

import os
import threading
import time

import numpy as np
import pytest
from scipy.sparse.linalg import spsolve

from repro.cells import default_library
from repro.core import DynamicThermalManager, ReadoutConfig, SensorBank, ThrottlingPolicy
from repro.engine import Axis, BatchEvaluator, ProcessExecutor, Sweep
from repro.serve import ServeClient, start_server_thread
from repro.experiments import run_dtm_study
from repro.oscillator import (
    PAPER_FIG3_CONFIGURATIONS,
    ConfigurationBank,
    RingConfiguration,
    RingOscillator,
)
from repro.tech import CMOS013, CMOS018, CMOS025, CMOS035, sample_technology_array
from repro.thermal import Floorplan, PowerMap, ThermalGrid, ThermalOperator

CONFIGURATION = RingConfiguration.parse("2INV+3NAND2")
DENSE_GRID = np.linspace(-50.0, 150.0, 41)

#: Junction temperatures of the 3x3 sensor-bank scan benchmarks.
SCAN_TEMPS = np.linspace(50.0, 110.0, 9)


def _make_bank():
    floorplan = Floorplan.example_processor()
    floorplan.add_sensor_grid(3, 3)
    return SensorBank.from_floorplan(CMOS035, floorplan, CONFIGURATION)


def _best_time(callable_, rounds=3):
    """Best-of-N wall-clock time (and last result) of a zero-arg callable.

    The speedup assertions gate CI on shared runners, where a scheduling
    stall inside the short fast-path window would fake a slowdown; the
    minimum over a few rounds removes that flake vector.  (A stall in
    the *slow* reference path only increases the measured speedup, so a
    single slow-path run stays sound.)
    """
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def _run_monte_carlo(vectorized, sample_count):
    return BatchEvaluator(vectorized=vectorized).run_monte_carlo(
        CMOS035,
        CONFIGURATION,
        sample_count=sample_count,
        temperatures_c=DENSE_GRID,
        seed=1234,
    )


@pytest.mark.benchmark(group="engine-mc-25")
@pytest.mark.parametrize("vectorized", [True, False], ids=["vectorized", "scalar"])
def test_monte_carlo_25_samples(benchmark, vectorized):
    study = benchmark.pedantic(
        _run_monte_carlo, args=(vectorized, 25), rounds=3, iterations=1
    )
    assert study.sample_count == 25


@pytest.mark.benchmark(group="engine-mc-200")
@pytest.mark.parametrize("vectorized", [True, False], ids=["vectorized", "scalar"])
def test_monte_carlo_200_samples(benchmark, vectorized):
    study = benchmark.pedantic(
        _run_monte_carlo, args=(vectorized, 200), rounds=2, iterations=1
    )
    assert study.sample_count == 200


@pytest.mark.slow
@pytest.mark.benchmark(group="engine-mc-1000")
@pytest.mark.parametrize("vectorized", [True, False], ids=["vectorized", "scalar"])
def test_monte_carlo_1000_samples(benchmark, vectorized):
    study = benchmark.pedantic(
        _run_monte_carlo, args=(vectorized, 1000), rounds=1, iterations=1
    )
    assert study.sample_count == 1000


def test_monte_carlo_speedup_at_200x41():
    """The ISSUE acceptance criterion: >= 3x at 200 samples x 41 temps,
    with vectorized-vs-scalar relative period error bounded by 1e-9."""
    vectorized_s, vectorized = _best_time(lambda: _run_monte_carlo(True, 200))

    start = time.perf_counter()
    scalar = _run_monte_carlo(False, 200)
    scalar_s = time.perf_counter() - start

    speedup = scalar_s / vectorized_s
    print(f"\nengine speedup at 200x41: {speedup:.1f}x "
          f"(scalar {scalar_s * 1e3:.0f} ms, vectorized {vectorized_s * 1e3:.0f} ms)")
    assert speedup >= 3.0

    worst = max(
        float(np.max(np.abs(v.periods_s - s.periods_s) / s.periods_s))
        for v, s in zip(vectorized.responses, scalar.responses)
    )
    assert worst <= 1e-9
    assert vectorized.period_spread_percent == pytest.approx(
        scalar.period_spread_percent, rel=1e-9
    )


def test_stacked_speedup_at_1000x41():
    """The PR 2 acceptance criterion: the stacked sample axis is >= 3x
    faster than the PR 1 per-sample rebind loop at 1000 Monte-Carlo
    samples x 41 temperatures, agreeing to 1e-9 relative on every
    period."""
    ring = RingOscillator(default_library(CMOS035), CONFIGURATION)
    population = sample_technology_array(CMOS035, 1000, seed=1234)

    stacked_s, stacked = _best_time(
        lambda: ring.period_matrix(population, DENSE_GRID)
    )

    start = time.perf_counter()
    looped = ring.period_matrix_loop(population, DENSE_GRID)
    looped_s = time.perf_counter() - start

    speedup = looped_s / stacked_s
    print(f"\nstacked speedup at 1000x41: {speedup:.1f}x "
          f"(looped {looped_s * 1e3:.0f} ms, stacked {stacked_s * 1e3:.0f} ms)")
    assert speedup >= 3.0

    assert stacked.shape == looped.shape == (1000, DENSE_GRID.size)
    worst = float(np.max(np.abs(stacked - looped) / np.abs(looped)))
    assert worst <= 1e-9


@pytest.mark.benchmark(group="engine-stacked-1000x41")
@pytest.mark.parametrize("mode", ["stacked", "looped"])
def test_period_matrix_1000_samples(benchmark, mode):
    ring = RingOscillator(default_library(CMOS035), CONFIGURATION)
    population = sample_technology_array(CMOS035, 1000, seed=1234)
    evaluate = (
        ring.period_matrix if mode == "stacked" else ring.period_matrix_loop
    )
    matrix = benchmark.pedantic(
        evaluate, args=(population, DENSE_GRID), rounds=2, iterations=1
    )
    assert matrix.shape == (1000, DENSE_GRID.size)


def test_configuration_axis_speedup_at_fig3_scale():
    """The PR 3 acceptance criterion: the Fig. 3 x Monte-Carlo cross
    product evaluated as one (C, S, T) broadcast through the
    configuration bank is >= 3x faster than the retained
    per-configuration loop at Fig. 3 scale (6 configurations x 1000
    samples x 41 temperatures), agreeing to 1e-9 relative on every
    period."""
    bank = ConfigurationBank(default_library(CMOS035), PAPER_FIG3_CONFIGURATIONS)
    population = sample_technology_array(CMOS035, 1000, seed=1234)

    stacked_s, stacked = _best_time(
        lambda: bank.period_tensor(DENSE_GRID, technologies=population)
    )

    start = time.perf_counter()
    looped = bank.period_tensor_loop(DENSE_GRID, technologies=population)
    looped_s = time.perf_counter() - start

    speedup = looped_s / stacked_s
    print(f"\nconfiguration-axis speedup at 6x1000x41: {speedup:.1f}x "
          f"(looped {looped_s * 1e3:.0f} ms, broadcast {stacked_s * 1e3:.0f} ms)")
    assert speedup >= 3.0

    assert stacked.shape == looped.shape == (
        len(PAPER_FIG3_CONFIGURATIONS), 1000, DENSE_GRID.size
    )
    worst = float(np.max(np.abs(stacked - looped) / np.abs(looped)))
    assert worst <= 1e-9


@pytest.mark.benchmark(group="engine-config-bank-6x1000x41")
@pytest.mark.parametrize("mode", ["broadcast", "looped"])
def test_configuration_bank_fig3_cross_product(benchmark, mode):
    bank = ConfigurationBank(default_library(CMOS035), PAPER_FIG3_CONFIGURATIONS)
    population = sample_technology_array(CMOS035, 1000, seed=1234)
    evaluate = (
        bank.period_tensor if mode == "broadcast" else bank.period_tensor_loop
    )
    tensor = benchmark.pedantic(
        evaluate,
        args=(DENSE_GRID,),
        kwargs=dict(technologies=population),
        rounds=2,
        iterations=1,
    )
    assert tensor.shape == (len(PAPER_FIG3_CONFIGURATIONS), 1000, DENSE_GRID.size)


@pytest.mark.benchmark(group="engine-fig3-sweep")
@pytest.mark.parametrize("vectorized", [True, False], ids=["sweep", "scalar"])
def test_fig3_named_configurations_through_sweep_api(benchmark, vectorized):
    """The declarative form of the Fig. 3 sweep: configuration axis x
    temperature axis, lowered onto the bank broadcast (or the scalar
    oracle loop through the compat evaluator).  The library is built
    outside both timed closures so the comparison measures evaluation,
    not library construction."""
    library = default_library(CMOS035)
    if vectorized:
        def evaluate():
            return (
                Sweep(library=library)
                .over(Axis.configuration(PAPER_FIG3_CONFIGURATIONS))
                .over(Axis.temperature(DENSE_GRID))
                .run()
                .values
            )
    else:
        engine = BatchEvaluator(vectorized=False)

        def evaluate():
            return np.stack([
                engine.evaluate_configuration(
                    library, configuration, DENSE_GRID
                ).response.periods_s
                for configuration in PAPER_FIG3_CONFIGURATIONS.values()
            ])

    tensor = benchmark.pedantic(evaluate, rounds=2, iterations=1)
    assert tensor.shape == (len(PAPER_FIG3_CONFIGURATIONS), DENSE_GRID.size)


def test_banked_scan_speedup_at_9_sites_x_1000_samples():
    """The PR 4 acceptance criterion: a full sensor-bank scan (two-point
    calibration + measurement of every site against the whole
    Monte-Carlo population) through the banked broadcast path is >= 3x
    faster than the retained per-sensor oracle (one scalar sensor per
    site per sample, controller FSM included) at 9 sites x 1000
    samples, with exact counter codes and estimates agreeing to 1e-9
    relative."""
    bank = _make_bank()
    population = sample_technology_array(CMOS035, 1000, seed=1234)

    def banked():
        calibration = bank.two_point_calibration(
            -50.0, 150.0, technologies=population
        )
        return bank.scan(SCAN_TEMPS, technologies=population, calibration=calibration)

    banked_s, fast = _best_time(banked)

    start = time.perf_counter()
    oracle = bank.scan_loop(
        SCAN_TEMPS, technologies=population, calibrate_at=(-50.0, 150.0)
    )
    oracle_s = time.perf_counter() - start

    speedup = oracle_s / banked_s
    print(f"\nbanked-scan speedup at 9x1000: {speedup:.0f}x "
          f"(oracle {oracle_s * 1e3:.0f} ms, banked {banked_s * 1e3:.1f} ms)")
    assert speedup >= 3.0

    assert fast.codes.shape == oracle.codes.shape == (9, 1000)
    assert np.array_equal(fast.codes, oracle.codes)
    worst = float(
        np.max(np.abs(fast.estimates_c - oracle.estimates_c) / np.abs(oracle.estimates_c))
    )
    assert worst <= 1e-9


@pytest.mark.benchmark(group="engine-bank-scan-9x200")
@pytest.mark.parametrize("mode", ["banked", "oracle"])
def test_bank_scan_9_sites_200_samples(benchmark, mode):
    bank = _make_bank()
    population = sample_technology_array(CMOS035, 200, seed=1234)
    if mode == "banked":
        def evaluate():
            calibration = bank.two_point_calibration(
                -50.0, 150.0, technologies=population
            )
            return bank.scan(
                SCAN_TEMPS, technologies=population, calibration=calibration
            )
    else:
        def evaluate():
            return bank.scan_loop(
                SCAN_TEMPS, technologies=population, calibrate_at=(-50.0, 150.0)
            )
    scan = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    assert scan.codes.shape == (9, 200)


@pytest.mark.benchmark(group="engine-bank-scan-9x1000")
def test_bank_scan_9_sites_1000_samples_banked(benchmark):
    bank = _make_bank()
    population = sample_technology_array(CMOS035, 1000, seed=1234)

    def evaluate():
        calibration = bank.two_point_calibration(
            -50.0, 150.0, technologies=population
        )
        return bank.scan(SCAN_TEMPS, technologies=population, calibration=calibration)

    scan = benchmark.pedantic(evaluate, rounds=3, iterations=1)
    assert scan.codes.shape == (9, 1000)


def test_factorization_reuse_speedup():
    """The PR 4 thermal acceptance criterion: repeated steady-state
    solves through the cached ThermalOperator factorization are >= 3x
    faster than the pre-operator path (one implicit factorization per
    spsolve call), agreeing to solver rounding."""
    power = PowerMap.from_floorplan(Floorplan.example_processor(), nx=48, ny=48)
    grid = ThermalGrid.for_power_map(power)
    rhs = power.values_w.reshape(-1)
    solves = 10

    def refactorize_every_solve():
        matrix = grid.conductance_matrix.tocsc()
        return [spsolve(matrix, rhs) for _ in range(solves)]

    def cached_factorization():
        operator = ThermalOperator(grid)
        return [operator.steady_rise(rhs) for _ in range(solves)]

    cached_s, cached = _best_time(cached_factorization)

    start = time.perf_counter()
    reference = refactorize_every_solve()
    refactorized_s = time.perf_counter() - start

    speedup = refactorized_s / cached_s
    print(f"\nfactorization-reuse speedup over {solves} steady solves on 48x48: "
          f"{speedup:.1f}x (refactorize {refactorized_s * 1e3:.0f} ms, "
          f"cached {cached_s * 1e3:.0f} ms)")
    assert speedup >= 3.0

    worst = float(np.max(np.abs(cached[0] - reference[0]) / np.abs(reference[0])))
    assert worst <= 1e-9


@pytest.mark.benchmark(group="thermal-steady-48x48x10")
@pytest.mark.parametrize("mode", ["cached", "refactorize"])
def test_repeated_steady_solves(benchmark, mode):
    power = PowerMap.from_floorplan(Floorplan.example_processor(), nx=48, ny=48)
    grid = ThermalGrid.for_power_map(power)
    rhs = power.values_w.reshape(-1)

    if mode == "cached":
        def evaluate():
            operator = ThermalOperator(grid)
            return [operator.steady_rise(rhs) for _ in range(10)]
    else:
        def evaluate():
            matrix = grid.conductance_matrix.tocsc()
            return [spsolve(matrix, rhs) for _ in range(10)]

    result = benchmark.pedantic(evaluate, rounds=2, iterations=1)
    assert len(result) == 10


#: The 8-policy comparison set of the policy-bank benchmarks: throttle
#: thresholds spread across the reachable band, fixed hysteresis.
POLICY_SET = {
    f"throttle-{threshold:.0f}": ThrottlingPolicy(
        throttle_threshold_c=float(threshold),
        release_threshold_c=float(threshold) - 15.0,
        emergency_threshold_c=float(threshold) + 10.0,
    )
    for threshold in np.linspace(95.0, 116.0, 8)
}

DTM_KW = dict(
    duration_s=0.6, control_interval_s=0.03, limit_c=115.0, workload_scale=1.6
)


def _make_manager():
    floorplan = Floorplan.example_processor()
    floorplan.add_sensor_grid(3, 3)
    return DynamicThermalManager(
        CMOS035,
        floorplan,
        RingConfiguration.parse("2INV+3NAND2"),
        readout=ReadoutConfig(),
        grid_resolution=16,
    )


def test_policy_bank_speedup_at_8_policies():
    """The PR 5 acceptance criterion: the banked DTM policy sweep (all
    policies through one shared ThermalStepper, one multi-RHS solve +
    one broadcast sensor scan + one vectorized FSM step per timestep)
    is >= 3x faster than looping the scalar closed loop over 8 policies
    on one grid, with bit-identical throttle decisions and temperatures
    agreeing to 1e-9 relative."""
    manager = _make_manager()
    # Warm the shared backward-Euler factorization so both paths time
    # pure evaluation (the scalar loop reuses it too).
    manager.run_bank(POLICY_SET, **DTM_KW)

    banked_s, banked = _best_time(lambda: manager.run_bank(POLICY_SET, **DTM_KW))

    start = time.perf_counter()
    scalar = {
        label: manager.run(policy=policy, **DTM_KW)
        for label, policy in POLICY_SET.items()
    }
    scalar_s = time.perf_counter() - start

    speedup = scalar_s / banked_s
    print(f"\npolicy-bank speedup at 8 policies x 16x16: {speedup:.1f}x "
          f"(looped {scalar_s * 1e3:.0f} ms, banked {banked_s * 1e3:.1f} ms)")
    assert speedup >= 3.0

    for label, policy in POLICY_SET.items():
        row = banked.to_result(label)
        oracle = scalar[label]
        assert [p.state_name for p in row.trace] == [
            p.state_name for p in oracle.trace
        ]
        ours = np.asarray([p.true_peak_c for p in row.trace])
        theirs = np.asarray([p.true_peak_c for p in oracle.trace])
        assert np.max(np.abs(ours - theirs) / np.abs(theirs)) <= 1e-9
        assert row.throttle_events() == oracle.throttle_events()


@pytest.mark.benchmark(group="thermal-policy-bank-8x16")
@pytest.mark.parametrize("mode", ["banked", "looped"])
def test_policy_bank_8_policies(benchmark, mode):
    """Records the banked-vs-looped policy sweep into BENCH_engine.json
    (the CI bench job asserts this group is present)."""
    manager = _make_manager()
    if mode == "banked":
        def evaluate():
            return manager.run_bank(POLICY_SET, **DTM_KW)
    else:
        def evaluate():
            return [
                manager.run(policy=policy, **DTM_KW)
                for policy in POLICY_SET.values()
            ]
    result = benchmark.pedantic(evaluate, rounds=2, iterations=1)
    assert result is not None


def test_iterative_fallback_agreement_and_large_grid():
    """The PR 5 iterative acceptance criterion: preconditioned CG agrees
    with the sparse-direct factorization to 1e-8 relative (steady and
    transient) on the largest factorized benchmark grid (48x48), and
    runs a 96x96 grid — 4x the unknowns — that auto-routes past the
    direct threshold (to multigrid since PR 7), with a physically sane
    field."""
    power = PowerMap.from_floorplan(Floorplan.example_processor(), nx=48, ny=48)
    grid = ThermalGrid.for_power_map(power)
    rhs = power.values_w.reshape(-1)
    direct = ThermalOperator(grid, method="direct")
    iterative = ThermalOperator(grid, method="iterative")
    assert np.max(
        np.abs(iterative.steady_rise(rhs) - direct.steady_rise(rhs))
        / np.abs(direct.steady_rise(rhs))
    ) <= 1e-8
    stepper_d = direct.stepper(0.01)
    stepper_i = iterative.stepper(0.01)
    rise_d = np.zeros(rhs.size)
    rise_i = np.zeros(rhs.size)
    for _ in range(10):
        rise_d = stepper_d.step(rise_d, rhs)
        rise_i = stepper_i.step(rise_i, rhs)
    assert np.max(np.abs(rise_i - rise_d) / np.abs(rise_d)) <= 1e-8

    big_power = PowerMap.from_floorplan(Floorplan.example_processor(), nx=96, ny=96)
    big_grid = ThermalGrid.for_power_map(big_power)
    assert big_grid.nx * big_grid.ny >= 4 * grid.nx * grid.ny
    operator = ThermalOperator.for_grid(big_grid)
    # auto now promotes past-threshold grids to the multigrid path
    # (PR 7); the explicit ILU fallback is exercised above.
    assert operator.method == "multigrid"
    field = operator.solve_steady_state(big_power, 45.0)
    assert np.all(np.isfinite(field.values_c))
    # The mean rise matches theta_ja x total power regardless of grid.
    theta = big_grid.junction_to_ambient_resistance_k_per_w()
    expected = big_power.total_power_w() * theta
    assert field.mean_c() - 45.0 == pytest.approx(expected, rel=0.05)


@pytest.mark.benchmark(group="thermal-iterative-96x96")
def test_iterative_large_grid_steady_solve(benchmark):
    """Records the warm iterative steady solve on the 4x-unknowns grid."""
    power = PowerMap.from_floorplan(Floorplan.example_processor(), nx=96, ny=96)
    operator = ThermalOperator(ThermalGrid.for_power_map(power), method="iterative")
    rhs = power.values_w.reshape(-1)
    operator.steady_rise(rhs)  # build the preconditioner outside the timing
    result = benchmark.pedantic(
        lambda: operator.steady_rise(rhs), rounds=3, iterations=1
    )
    assert result.shape == rhs.shape


@pytest.mark.benchmark(group="thermal-dtm-study")
def test_dtm_study_wall_clock(benchmark):
    """Records the DTM study's wall clock (managed + unmanaged closed
    loops on one manager) so BENCH_engine.json tracks the factorization
    reuse and the banked per-step sensor scans over time."""
    result = benchmark.pedantic(
        run_dtm_study,
        kwargs=dict(duration_s=0.6, control_interval_s=0.03, grid_resolution=16),
        rounds=2,
        iterations=1,
    )
    assert result.managed.peak_temperature_c() <= result.unmanaged.peak_temperature_c()


@pytest.mark.benchmark(group="engine-calibration-study")
@pytest.mark.parametrize("vectorized", [True, False], ids=["vectorized", "scalar"])
def test_calibration_study_batched(benchmark, vectorized):
    engine = BatchEvaluator(vectorized=vectorized)
    result = benchmark.pedantic(
        engine.run_calibration_study,
        kwargs=dict(monte_carlo_samples=12),
        rounds=2,
        iterations=1,
    )
    assert result.sample_count == 17


@pytest.mark.benchmark(group="engine-fig2-sweep")
@pytest.mark.parametrize("vectorized", [True, False], ids=["vectorized", "scalar"])
def test_sizing_sweep_dense_grid(benchmark, vectorized, tech):
    engine = BatchEvaluator(vectorized=vectorized)
    result = benchmark.pedantic(
        engine.sweep_width_ratio,
        args=(tech,),
        kwargs=dict(temperatures_c=DENSE_GRID),
        rounds=3,
        iterations=1,
    )
    assert result.best().max_abs_error_percent < 0.25


#: The tiled-execution benchmark workload: a Monte-Carlo population x
#: dense temperature grid big enough that tile fan-out dominates
#: per-task overhead (20000 x 41 = 820k elements, ~1 s of serial
#: evaluation), split into ~2^17-element tiles.
TILED_SAMPLES = 20000
TILED_TILE_ELEMENTS = 1 << 17


def _tiled_sweep():
    # A prebuilt ring as the base context: the timed region then
    # measures tile evaluation and transport, not per-tile cell-library
    # construction.
    ring = RingOscillator(default_library(CMOS035), CONFIGURATION)
    population = sample_technology_array(CMOS035, TILED_SAMPLES, seed=1234)
    return (
        Sweep(ring=ring)
        .over(Axis.sample(population))
        .over(Axis.temperature(DENSE_GRID))
    )


def test_tiled_parallel_speedup_at_4_workers():
    """The PR 6 acceptance criterion: the multiprocess backend is >= 2x
    faster than serial tiles at 4 workers on the 20000-sample sweep,
    with bitwise-identical results.  The floor is a statement about
    parallel hardware, so it is asserted only where 4 cores exist (the
    CI bench job runs on 4-vCPU runners); the bitwise-identity half
    holds — and is checked — everywhere."""
    sweep = _tiled_sweep()
    workers = 4

    parallel_executor = ProcessExecutor(max_workers=workers)
    # Warm the worker pool outside the timing: pool startup is a
    # once-per-process cost the backend amortizes by design.
    sweep.run(executor=parallel_executor, max_tile_elements=TILED_TILE_ELEMENTS)

    parallel_s, parallel = _best_time(
        lambda: sweep.run(
            executor=parallel_executor, max_tile_elements=TILED_TILE_ELEMENTS
        ),
        rounds=2,
    )

    start = time.perf_counter()
    serial = sweep.run(executor="serial", max_tile_elements=TILED_TILE_ELEMENTS)
    serial_s = time.perf_counter() - start

    speedup = serial_s / parallel_s
    print(f"\ntiled-parallel speedup at {TILED_SAMPLES}x{DENSE_GRID.size}, "
          f"{workers} workers: {speedup:.2f}x "
          f"(serial {serial_s * 1e3:.0f} ms, parallel {parallel_s * 1e3:.0f} ms)")

    assert serial.dims == parallel.dims
    assert np.array_equal(serial.values, parallel.values)
    if (os.cpu_count() or 1) >= workers:
        assert speedup >= 2.0
    else:
        pytest.skip(
            f"speedup floor needs {workers} cores, have {os.cpu_count()}; "
            f"bitwise identity verified"
        )


@pytest.mark.benchmark(group="sweep-tiled-parallel")
@pytest.mark.parametrize("mode", ["process-4", "serial"])
def test_tiled_sweep_execution(benchmark, mode):
    """Records serial-tiles vs 4-worker-pool wall clock into
    BENCH_engine.json (the CI bench job asserts this group is present)."""
    sweep = _tiled_sweep()
    if mode == "process-4":
        executor = ProcessExecutor(max_workers=4)
        # Pool startup is amortized by design; warm it outside the timing.
        sweep.run(executor=executor, max_tile_elements=TILED_TILE_ELEMENTS)
    else:
        executor = "serial"
    result = benchmark.pedantic(
        lambda: sweep.run(executor=executor, max_tile_elements=TILED_TILE_ELEMENTS),
        rounds=2,
        iterations=1,
    )
    assert result.shape == (TILED_SAMPLES, DENSE_GRID.size)


# --------------------------------------------------------------------- #
# PR 7: geometric multigrid + true batched RHS
# --------------------------------------------------------------------- #

BATCHED_K = 16


def _multigrid_solve_at(resolution):
    power = PowerMap.from_floorplan(
        Floorplan.example_processor(), nx=resolution, ny=resolution
    )
    grid = ThermalGrid.for_power_map(power)
    return grid, power, ThermalOperator(grid, method="multigrid")


def test_batched_rhs_work_floor_at_96x96x16():
    """The PR 7 batched-RHS acceptance criterion, counted in solver work.

    The exact degradation the batching removes: a k-column stack used to
    cost k sequential CG runs — k x ~13 single-column V-cycle
    applications — where the block path pays ~13 V-cycles on the whole
    (n, k) block.  The floor is asserted on that counted work (>= 2x
    fewer preconditioner applications) rather than wall clock, because
    every operation involved is O(nk) memory-bound: at 96x96 the
    per-column loop runs L2-resident (74 KB vectors) while the block
    streams DRAM, so the wall-clock ratio is hardware-dependent (1.3 -
    2.2x here) and flaky on shared runners, while the work ratio is
    deterministic.  Both wall clocks are still printed and recorded in
    the thermal-batched-rhs-96x96xK group below.
    """
    grid, power, operator = _multigrid_solve_at(96)
    solve = operator.steady_solve()
    rhs = power.values_w.reshape(-1)
    stack = np.stack(
        [(0.5 + 0.1 * k) * rhs for k in range(BATCHED_K)], axis=1
    )

    loop_applications = 0
    loop_columns = []
    for k in range(BATCHED_K):
        column = stack[:, k : k + 1]
        solution, converged = solve._block_cg(
            column, np.zeros_like(column), solve._preconditioner
        )
        assert converged.all()
        loop_applications += solve.last_iterations
        loop_columns.append(solution[:, 0])

    block_solution, converged = solve._block_cg(
        stack, np.zeros_like(stack), solve._preconditioner
    )
    assert converged.all()
    block_applications = solve.last_iterations

    work_ratio = loop_applications / block_applications
    loop_s, _ = _best_time(lambda: solve.solve_columns_loop(stack))

    def cold_block():
        solve._warm_starts.clear()
        return solve(stack)

    block_s, _ = _best_time(cold_block)
    print(
        f"\nbatched-RHS work at 96x96 x {BATCHED_K}: loop {loop_applications} "
        f"V-cycle applications vs block {block_applications} "
        f"({work_ratio:.1f}x less work; wall clock loop {loop_s * 1e3:.0f} ms, "
        f"block {block_s * 1e3:.0f} ms, {loop_s / block_s:.2f}x)"
    )
    assert work_ratio >= 2.0
    # And the block result is the loop result (1e-8, the solve bound).
    reference = np.stack(loop_columns, axis=1)
    assert np.max(np.abs(block_solution - reference)) <= 1e-8 * np.max(np.abs(reference))


@pytest.mark.benchmark(group="thermal-batched-rhs-96x96xK")
@pytest.mark.parametrize("mode", ["block", "column-loop"])
def test_batched_rhs_block_vs_column_loop(benchmark, mode):
    """Records block-CG vs per-column CG wall clock on a 16-column stack
    into BENCH_engine.json (the CI bench job asserts this group is
    present); the asserted >= 2x floor lives in the counted-work test
    above."""
    _grid, power, operator = _multigrid_solve_at(96)
    solve = operator.steady_solve()
    rhs = power.values_w.reshape(-1)
    stack = np.stack([(0.5 + 0.1 * k) * rhs for k in range(BATCHED_K)], axis=1)
    solve(stack)  # build the hierarchy outside the timing

    if mode == "block":

        def run():
            solve._warm_starts.clear()
            return solve(stack)

    else:

        def run():
            return solve.solve_columns_loop(stack)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.shape == stack.shape


@pytest.mark.slow
def test_multigrid_speedup_floor_at_256x256():
    """The PR 7 multigrid acceptance criterion on the full-die grid.

    At 256x256 (65536 unknowns) the ILU-preconditioned CG of PR 5
    collapses — it does not reach the tolerance within the 1000-
    iteration cap on the steady system, and needs ~1000 iterations on
    the dt=1e-2 backward-Euler shift — while multigrid-CG converges in
    ~13 iterations for both.  The floor compares the full multigrid
    solve against a 100-iteration slice of ILU-CG, a strict lower bound
    on any ILU solve (>= 10x fewer iterations than it actually needs),
    so the asserted >= 3x is honest however fast the ILU's triangular
    solves are.
    """
    from repro.thermal.operator import _IterativeSolve

    power = PowerMap.from_floorplan(Floorplan.example_processor(), nx=256, ny=256)
    grid = ThermalGrid.for_power_map(power)
    rhs = power.values_w.reshape(-1)

    multigrid = ThermalOperator(grid, method="multigrid")
    assert ThermalOperator.for_grid(grid).method == "multigrid"  # auto routes here

    # Steady state: full multigrid solve vs a 100-iteration ILU slice.
    mg_solve = multigrid.steady_solve()
    mg_solve(rhs)  # hierarchy built outside the timing

    def mg_steady():
        mg_solve._warm_starts.clear()
        return mg_solve(rhs)

    mg_s, mg_rise = _best_time(mg_steady)
    mg_iterations = mg_solve.last_iterations

    ilu_solve = _IterativeSolve(grid.conductance_matrix, preconditioner="ilu")
    start = time.perf_counter()
    _partial, converged = ilu_solve._block_cg(
        rhs[:, np.newaxis], np.zeros((rhs.size, 1)), ilu_solve._preconditioner,
        maxiter=100,
    )
    ilu_slice_s = time.perf_counter() - start
    assert not converged.all()  # ILU is nowhere near done after 100 iterations

    steady_floor = ilu_slice_s / mg_s
    print(
        f"\nmultigrid vs ILU at 256x256 steady: full MG solve "
        f"{mg_s * 1e3:.0f} ms ({mg_iterations} iterations) vs 100-iteration "
        f"ILU slice {ilu_slice_s * 1e3:.0f} ms -> >= {steady_floor:.1f}x "
        f"(lower bound)"
    )
    assert steady_floor >= 3.0

    # Physics check on the multigrid field: mean rise = theta_ja x P.
    theta = grid.junction_to_ambient_resistance_k_per_w()
    assert np.mean(mg_rise) == pytest.approx(theta * power.total_power_w(), rel=1e-6)

    # Transient (dt = 1e-2, where the backward-Euler shift is too small
    # to rescue ILU): one multigrid step vs a 100-iteration ILU slice.
    dt = 1e-2
    stepper = multigrid.stepper(dt)
    state = stepper.step(np.zeros_like(rhs), rhs)  # builds the shifted hierarchy
    transient_solve = multigrid._transient_solves[dt]

    def mg_step():
        transient_solve._warm_starts.clear()
        return stepper.step(state, rhs)

    mg_step_s, _ = _best_time(mg_step)

    from scipy.sparse import diags

    shifted = diags(grid.capacitance_vector / dt) + grid.conductance_matrix
    ilu_shifted = _IterativeSolve(shifted, preconditioner="ilu")
    step_rhs = rhs + grid.capacitance_vector / dt * state
    start = time.perf_counter()
    _partial, converged = ilu_shifted._block_cg(
        step_rhs[:, np.newaxis], np.zeros((rhs.size, 1)),
        ilu_shifted._preconditioner, maxiter=100,
    )
    ilu_step_slice_s = time.perf_counter() - start
    assert not converged.all()

    transient_floor = ilu_step_slice_s / mg_step_s
    print(
        f"multigrid vs ILU at 256x256 transient (dt={dt:g}): full MG step "
        f"{mg_step_s * 1e3:.0f} ms vs 100-iteration ILU slice "
        f"{ilu_step_slice_s * 1e3:.0f} ms -> >= {transient_floor:.1f}x "
        f"(lower bound)"
    )
    assert transient_floor >= 3.0


@pytest.mark.slow
@pytest.mark.benchmark(group="thermal-multigrid-256x256")
@pytest.mark.parametrize("phase", ["steady", "transient-step"])
def test_multigrid_full_die_wall_clock(benchmark, phase):
    """Records the warm 256x256 multigrid solves into BENCH_engine.json
    (the CI bench job asserts this group is present); the >= 3x floor
    against capped ILU-CG lives in the slow floor test above."""
    power = PowerMap.from_floorplan(Floorplan.example_processor(), nx=256, ny=256)
    grid = ThermalGrid.for_power_map(power)
    operator = ThermalOperator(grid, method="multigrid")
    rhs = power.values_w.reshape(-1)
    if phase == "steady":
        solve = operator.steady_solve()
        solve(rhs)  # hierarchy built outside the timing

        def run():
            solve._warm_starts.clear()
            return solve(rhs)

    else:
        stepper = operator.stepper(1e-2)
        state = stepper.step(np.zeros_like(rhs), rhs)
        solve = operator._transient_solves[1e-2]

        def run():
            solve._warm_starts.clear()
            return stepper.step(state, rhs)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.shape == rhs.shape


# --------------------------------------------------------------------- #
# PR 8: the sweep service's micro-batched point queries
# --------------------------------------------------------------------- #

#: The micro-batching benchmark workload: 16 point queries against a
#: width_ratio base.  The geometry axis rebuilds the sized ring per
#: ratio, so each solo evaluation carries real fixed cost (~10 ms) that
#: one batched broadcast pays once — the exact degradation the batcher
#: removes — while the spec payload stays a few hundred bytes, keeping
#: transport out of the measurement.
SERVE_POINTS = 16
SERVE_RATIOS = tuple(float(r) for r in np.linspace(1.0, 4.5, 8))

#: The batching window is pure added latency for the batch (the
#: speedup cap is N*eval / (window + eval)), so it is kept just wide
#: enough that 16 loopback clients reliably land inside it.
SERVE_WINDOW_MS = 20.0


def _serve_base_spec():
    return Sweep(technology=CMOS035).over(Axis.width_ratio(SERVE_RATIOS)).to_dict()


def _serve_temps(round_index):
    """A fresh temperature grid per round: repeat rounds must measure
    evaluation, not the service's result cache."""
    return [
        float(t)
        for t in np.linspace(-40.0, 125.0, SERVE_POINTS) + 0.001 * round_index
    ]


def _points_concurrent(port, spec, temps):
    """All points at once, one connection each (the batcher coalesces
    across connections); returns the per-point results in temp order."""
    results = [None] * len(temps)
    errors = []
    barrier = threading.Barrier(len(temps))

    def worker(slot):
        try:
            with ServeClient("127.0.0.1", port) as remote:
                barrier.wait()
                results[slot] = remote.point(spec, temps[slot])
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(slot,)) for slot in range(len(temps))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return results


def _points_sequential(port, spec, temps):
    """The same points issued one at a time over one connection."""
    with ServeClient("127.0.0.1", port) as remote:
        return [remote.point(spec, t) for t in temps]


def test_microbatch_throughput_floor_at_16_points():
    """The PR 8 acceptance criterion: 16 concurrent point queries
    through the micro-batcher complete >= 2x faster than the same 16
    issued sequentially against an unbatched server (window 0: every
    point evaluates alone), because the batch coalesces onto one
    broadcast evaluation.  Every batched answer is bitwise identical to
    the local evaluation of its point."""
    spec = _serve_base_spec()

    sequential_handle = start_server_thread(batch_window_ms=0.0)
    try:
        with ServeClient("127.0.0.1", sequential_handle.port) as remote:
            remote.point(spec, 150.5)  # warm the evaluation path
            start = time.perf_counter()
            _points_sequential(sequential_handle.port, spec, _serve_temps(0))
            sequential_s = time.perf_counter() - start
        assert sequential_handle.server.evaluations == SERVE_POINTS + 1
    finally:
        sequential_handle.stop()

    batched_handle = start_server_thread(batch_window_ms=SERVE_WINDOW_MS)
    try:
        batched_handle.server.evaluations  # touch: server is live
        best_s = float("inf")
        round_evaluations = []
        results = None
        temps = None
        for round_index in (1, 2):
            temps = _serve_temps(round_index)
            before = batched_handle.server.evaluations
            start = time.perf_counter()
            results = _points_concurrent(batched_handle.port, spec, temps)
            best_s = min(best_s, time.perf_counter() - start)
            round_evaluations.append(batched_handle.server.evaluations - before)
    finally:
        batched_handle.stop()

    speedup = sequential_s / best_s
    print(f"\nserve-microbatch speedup at {SERVE_POINTS} points: {speedup:.1f}x "
          f"(sequential {sequential_s * 1e3:.0f} ms, batched {best_s * 1e3:.0f} ms; "
          f"evaluations per round {round_evaluations})")
    assert speedup >= 2.0
    # The concurrent burst coalesced (a straggler may open a second
    # batch on a loaded runner; 16 solo evaluations must not happen).
    assert min(round_evaluations) <= 2

    local = Sweep.from_dict(spec).over(Axis.temperature(temps)).run()
    for temperature, served in zip(temps, results):
        expected = local.select(temperature=[temperature])
        assert served.dims == expected.dims
        assert np.array_equal(served.values, expected.values)


@pytest.mark.benchmark(group="serve-microbatch")
@pytest.mark.parametrize("mode", ["batched", "sequential"])
def test_point_query_throughput(benchmark, mode):
    """Records batched vs sequential point-query wall clock into
    BENCH_engine.json (the CI bench job asserts this group is present);
    the asserted >= 2x floor lives in the test above."""
    spec = _serve_base_spec()
    window = SERVE_WINDOW_MS if mode == "batched" else 0.0
    handle = start_server_thread(batch_window_ms=window)
    rounds = iter(range(10, 20))  # fresh temps per round: no cache hits

    if mode == "batched":
        def run():
            return _points_concurrent(handle.port, spec, _serve_temps(next(rounds)))
    else:
        def run():
            return _points_sequential(handle.port, spec, _serve_temps(next(rounds)))

    try:
        results = benchmark.pedantic(run, rounds=2, iterations=1)
    finally:
        handle.stop()
    assert len(results) == SERVE_POINTS


# --------------------------------------------------------------------- #
# PR 10: the technology sweep axis
# --------------------------------------------------------------------- #

#: The technology-study workload: every built-in node, each with its own
#: 200-sample Monte-Carlo population (nodes differ in geometry, so the
#: populations cannot stack across nodes), on the dense 41-point grid.
TECH_AXIS_NODES = (CMOS035, CMOS025, CMOS018, CMOS013)
TECH_AXIS_SAMPLES = 200


def _per_node_workload():
    """(ring, population) per node, built outside the timed regions so
    both forms measure evaluation, not library construction."""
    return [
        (
            RingOscillator(default_library(node), CONFIGURATION),
            sample_technology_array(node, TECH_AXIS_SAMPLES, seed=1234),
        )
        for node in TECH_AXIS_NODES
    ]


def test_technology_axis_speedup_at_4x200x41():
    """The PR 10 acceptance criterion: the per-node banked broadcast the
    ``technology`` axis lowers onto (one struct-of-arrays pass per node)
    is >= 2x faster than rebinding a scalar technology per sample across
    4 nodes x 200 samples x 41 temperatures, agreeing to 1e-9 relative
    on every period."""
    workload = _per_node_workload()

    banked_s, banked = _best_time(
        lambda: [ring.period_matrix(pop, DENSE_GRID) for ring, pop in workload]
    )

    start = time.perf_counter()
    looped = [ring.period_matrix_loop(pop, DENSE_GRID) for ring, pop in workload]
    looped_s = time.perf_counter() - start

    speedup = looped_s / banked_s
    print(f"\ntechnology-axis speedup at {len(TECH_AXIS_NODES)}x"
          f"{TECH_AXIS_SAMPLES}x{DENSE_GRID.size}: {speedup:.1f}x "
          f"(looped {looped_s * 1e3:.0f} ms, banked {banked_s * 1e3:.0f} ms)")
    assert speedup >= 2.0

    for fast, slow in zip(banked, looped):
        assert fast.shape == slow.shape == (TECH_AXIS_SAMPLES, DENSE_GRID.size)
        assert float(np.max(np.abs(fast - slow) / np.abs(slow))) <= 1e-9


@pytest.mark.benchmark(group="sweep-technology-axis")
@pytest.mark.parametrize("mode", ["banked", "looped"])
def test_technology_study_4_nodes(benchmark, mode):
    """Records the 4-node x 200-sample x 41-temperature technology study
    in its banked-broadcast vs per-sample-rebind forms into
    BENCH_engine.json (the CI bench job asserts this group is present);
    the asserted >= 2x floor lives in the test above."""
    workload = _per_node_workload()
    evaluate_one = (
        (lambda ring, pop: ring.period_matrix(pop, DENSE_GRID))
        if mode == "banked"
        else (lambda ring, pop: ring.period_matrix_loop(pop, DENSE_GRID))
    )
    matrices = benchmark.pedantic(
        lambda: [evaluate_one(ring, pop) for ring, pop in workload],
        rounds=2,
        iterations=1,
    )
    assert len(matrices) == len(TECH_AXIS_NODES)
    assert all(m.shape == (TECH_AXIS_SAMPLES, DENSE_GRID.size) for m in matrices)


# --------------------------------------------------------------------- #
# PR 9: multi-worker parallel sweep serving
# --------------------------------------------------------------------- #

#: The multi-worker workload: 8 concurrent clients, each asking for a
#: *distinct* sweep (its own width_ratio grid), so neither single-flight
#: dedup nor temperature coalescing can collapse the work — the only
#: lever left is genuine cross-request parallelism in the scheduler.
SERVE_CLIENTS = 8
SERVE_MULTI_WORKERS = 4


def _distinct_sweep_spec(slot, round_index=0):
    """One client's sweep: a width_ratio grid no other client shares.

    The geometry axis rebuilds the sized ring per ratio (~1 ms each),
    so a 48-ratio sweep carries ~50 ms of real evaluation cost — heavy
    enough that cross-request parallelism, not transport, dominates the
    measurement; the per-slot (and per-round) ratio offset keeps every
    spec's canonical key distinct, so repeat rounds measure evaluation,
    not the result cache.
    """
    ratios = tuple(
        float(r)
        for r in np.linspace(1.0, 4.5, 48) + 0.01 * slot + 0.0001 * round_index
    )
    return (
        Sweep(technology=CMOS035)
        .over(Axis.width_ratio(ratios))
        .over(Axis.temperature([-40.0, 25.0, 85.0, 125.0]))
        .to_dict()
    )


def _sweeps_concurrent(port, specs):
    """All sweeps at once, one connection each; results in spec order."""
    results = [None] * len(specs)
    errors = []
    barrier = threading.Barrier(len(specs))

    def worker(slot):
        try:
            with ServeClient("127.0.0.1", port) as remote:
                barrier.wait()
                results[slot] = remote.sweep_payload(specs[slot])
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(slot,)) for slot in range(len(specs))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return results


def test_multiworker_throughput_floor_at_8_concurrent_sweeps():
    """The PR 9 acceptance criterion: 8 concurrent distinct sweeps
    against a 4-worker server complete >= 2x faster than against a
    single-worker server, and every served payload is bitwise identical
    to its solo local evaluation (the process pool's tiled path carries
    the engine's bitwise-identity guarantee end to end)."""
    single = start_server_thread(workers=1, batch_window_ms=0.0)
    try:
        with ServeClient("127.0.0.1", single.port) as remote:
            remote.sweep_payload(_distinct_sweep_spec(99))  # warm the path
        specs = [_distinct_sweep_spec(slot, 0) for slot in range(SERVE_CLIENTS)]
        start = time.perf_counter()
        _sweeps_concurrent(single.port, specs)
        single_s = time.perf_counter() - start
        assert single.server.evaluations == SERVE_CLIENTS + 1
    finally:
        single.stop()

    multi = start_server_thread(
        workers=SERVE_MULTI_WORKERS, batch_window_ms=0.0
    )
    try:
        with ServeClient("127.0.0.1", multi.port) as remote:
            remote.sweep_payload(_distinct_sweep_spec(99))  # warm pool + path
        best_s = float("inf")
        results = None
        specs = None
        for round_index in (1, 2):
            specs = [
                _distinct_sweep_spec(slot, round_index)
                for slot in range(SERVE_CLIENTS)
            ]
            start = time.perf_counter()
            results = _sweeps_concurrent(multi.port, specs)
            best_s = min(best_s, time.perf_counter() - start)
    finally:
        multi.stop()

    speedup = single_s / best_s
    print(
        f"\nserve-multiworker speedup at {SERVE_CLIENTS} concurrent sweeps, "
        f"{SERVE_MULTI_WORKERS} workers: {speedup:.1f}x "
        f"(single-worker {single_s * 1e3:.0f} ms, multi {best_s * 1e3:.0f} ms)"
    )
    for spec, served in zip(specs, results):
        assert served == Sweep.from_dict(spec).run().to_dict()
    if (os.cpu_count() or 1) >= SERVE_MULTI_WORKERS:
        assert speedup >= 2.0
    else:
        pytest.skip(
            f"speedup floor needs {SERVE_MULTI_WORKERS} cores, have "
            f"{os.cpu_count()}; bitwise identity verified"
        )


@pytest.mark.benchmark(group="serve-multiworker")
@pytest.mark.parametrize("workers", [1, SERVE_MULTI_WORKERS])
def test_concurrent_sweep_throughput(benchmark, workers):
    """Records 8-concurrent-sweep wall clock at 1 vs 4 workers into
    BENCH_engine.json (the CI bench job asserts this group is present);
    the asserted >= 2x floor lives in the test above."""
    handle = start_server_thread(workers=workers, batch_window_ms=0.0)
    rounds = iter(range(10, 20))  # fresh specs per round: no cache hits

    def run():
        round_index = next(rounds)
        specs = [
            _distinct_sweep_spec(slot, round_index)
            for slot in range(SERVE_CLIENTS)
        ]
        return _sweeps_concurrent(handle.port, specs)

    try:
        with ServeClient("127.0.0.1", handle.port) as remote:
            remote.sweep_payload(_distinct_sweep_spec(99))  # warm pool + path
        results = benchmark.pedantic(run, rounds=2, iterations=1)
    finally:
        handle.stop()
    assert len(results) == SERVE_CLIENTS
