#!/usr/bin/env python3
"""Thermal mapping of a processor die with multiplexed smart sensors.

The end application the paper motivates: several ring-oscillator
sensors distributed over a die, read through one multiplexed smart unit,
feeding a dynamic thermal-management policy.  This example

1. builds a processor-like floorplan with a strongly non-uniform power
   map (two cores, a cache, an FPU hotspot),
2. computes the reference temperature field with the compact thermal
   model,
3. places a grid of calibrated smart sensors, scans them through the
   multiplexer, and reconstructs the thermal map from the sparse
   readings,
4. prints both maps as ASCII heat maps and reports the reconstruction
   accuracy and which sensors would trigger a 95 C thermal alarm.

Run with:  python examples/thermal_mapping.py
"""

from __future__ import annotations

import numpy as np

from repro import CMOS035, RingConfiguration, ThermalMonitor
from repro.core import ReadoutConfig
from repro.thermal import Floorplan, TemperatureMap


def ascii_heat_map(temperature_map: TemperatureMap, columns: int = 24, rows: int = 12) -> str:
    """Render a temperature map as an ASCII heat map."""
    ramp = " .:-=+*#%@"
    low, high = temperature_map.min_c(), temperature_map.max_c()
    span = max(high - low, 1e-9)
    lines = []
    for row in range(rows - 1, -1, -1):
        y = (row + 0.5) / rows * temperature_map.height_mm
        line = []
        for column in range(columns):
            x = (column + 0.5) / columns * temperature_map.width_mm
            level = (temperature_map.sample(x, y) - low) / span
            line.append(ramp[min(int(level * (len(ramp) - 1)), len(ramp) - 1)])
        lines.append("".join(line))
    lines.append(f"scale: ' '={low:.1f} C ... '@'={high:.1f} C")
    return "\n".join(lines)


def main() -> None:
    technology = CMOS035
    configuration = RingConfiguration.parse("2INV+3NAND2")

    # A processor-like die: two cores, an L2 cache, I/O and a hot FPU.
    floorplan = Floorplan.example_processor()
    sensor_sites = floorplan.add_sensor_grid(3, 3)
    print(f"Floorplan '{floorplan.name}': {floorplan.width_mm} x {floorplan.height_mm} mm, "
          f"{floorplan.total_power_w():.1f} W total, {len(sensor_sites)} sensor sites")

    monitor = ThermalMonitor(
        technology,
        floorplan,
        configuration,
        readout=ReadoutConfig(window_cycles=256),
        grid_resolution=32,
        ambient_c=45.0,
    )
    monitor.calibrate(low_temperature_c=-40.0, high_temperature_c=125.0)

    report = monitor.scan()

    print("\nTrue temperature field (thermal model):")
    print(ascii_heat_map(report.true_map))
    print(f"hotspot: {report.true_map.max_c():.1f} C at "
          f"{report.true_map.hotspot_location()} mm, "
          f"die gradient {report.true_map.gradient_c():.1f} C")

    print("\nSensor readings (multiplexed scan, "
          f"{report.scan.total_time_s * 1e6:.1f} us total):")
    for name in sorted(report.site_estimates_c):
        site = floorplan.sensor_site(name)
        truth = report.site_true_temperatures_c[name]
        estimate = report.site_estimates_c[name]
        code = report.scan.readings[name].code
        print(f"  {name:6s} at ({site.x_mm:4.2f}, {site.y_mm:4.2f}) mm: "
              f"code={code:5d}  estimate={estimate:7.2f} C  truth={truth:7.2f} C  "
              f"error={estimate - truth:+6.3f} C")

    print("\nReconstructed map from the nine sensor readings:")
    print(ascii_heat_map(report.reconstructed_map))
    print(f"worst site error : {report.worst_site_error_c():.3f} C")
    print(f"map RMS error    : {report.map_rms_error_c():.2f} C")
    print(f"hotspot estimate : {report.hotspot_error_c():+.2f} C versus the true hotspot")

    threshold = 95.0
    alarms = monitor.detect_overheating(report, threshold_c=threshold)
    if alarms:
        print(f"\nThermal alarm (> {threshold:.0f} C) raised by: {', '.join(alarms)}")
    else:
        print(f"\nNo sensor exceeds the {threshold:.0f} C thermal-alarm threshold.")

    # What-if: double the workload power and rescan.
    hot_power = monitor.power_map_for_floorplan().scaled(2.0)
    hot_report = monitor.scan(hot_power)
    hot_alarms = monitor.detect_overheating(hot_report, threshold_c=threshold)
    print(f"\nAt 2x workload power the hotspot reaches "
          f"{hot_report.true_map.max_c():.1f} C and "
          f"{len(hot_alarms)} of {len(sensor_sites)} sensors raise the alarm.")


if __name__ == "__main__":
    main()
