#!/usr/bin/env python3
"""Searching for the best sensor placement on a processor die.

EXT-THERMALMAP answers how *many* multiplexed sensors a thermal map
needs on a regular grid; this example optimises *where* a fixed budget
of sensors should go.  It

1. builds a three-phase workload corpus for the example processor
   (balanced, compute-bound, memory-bound) and solves all three true
   temperature fields in ONE multi-RHS pass through the cached thermal
   operator (the batched block-CG path on large grids),
2. scans a dense 5x5 grid of candidate sites through the full smart
   sensor chain once per workload (the readings are placement-
   independent, so the search never touches the physics again),
3. runs greedy forward selection and a seeded simulated-annealing
   refinement over the 4-site subsets, and
4. prints the search tables plus ASCII maps marking the chosen sites
   against the balanced workload's field.

Run with:  python examples/placement_search.py
"""

from __future__ import annotations

from repro.experiments import run_placement_study
from repro.experiments.placement_study import example_workloads
from repro.thermal import TemperatureMap, ThermalGrid, ThermalOperator
from repro.thermal.power import PowerMap


def placement_map(study, columns: int = 25, rows: int = 13) -> str:
    """ASCII die outline marking candidate (.) and selected (#) sites."""
    _, plan = example_workloads()[0]
    power = PowerMap.from_floorplan(plan, nx=study.grid_resolution, ny=study.grid_resolution)
    field = ThermalOperator.for_grid(ThermalGrid.for_power_map(power)).solve_steady_state(power)
    ramp = " .:-=+*"
    low, high = field.min_c(), field.max_c()
    span = max(high - low, 1e-9)
    # Candidate grid geometry matches Floorplan.add_sensor_grid.
    side = int(round(study.candidate_count**0.5))
    selected = set(study.best.selected_names)
    marks = {}
    for row in range(side):
        for column in range(side):
            name = f"c{row}_{column}"
            x = (column + 0.5) / side * field.width_mm
            y = (row + 0.5) / side * field.height_mm
            marks[(round(y / field.height_mm * rows - 0.5), round(x / field.width_mm * columns - 0.5))] = (
                "#" if name in selected else "o"
            )
    lines = []
    for row in range(rows - 1, -1, -1):
        y = (row + 0.5) / rows * field.height_mm
        line = []
        for column in range(columns):
            x = (column + 0.5) / columns * field.width_mm
            mark = marks.get((row, column))
            if mark is not None:
                line.append(mark)
                continue
            level = (field.sample(x, y) - low) / span
            line.append(ramp[min(int(level * (len(ramp) - 1)), len(ramp) - 1)])
        lines.append("".join(line))
    lines.append(f"scale ' '={low:.1f} C ... '*'={high:.1f} C, o=candidate, #=selected")
    return "\n".join(lines)


def main() -> None:
    study = run_placement_study(
        candidate_grid=5,
        sensor_count=4,
        grid_resolution=24,
        anneal_steps=200,
    )
    print(study.format_table())
    print()
    print(f"best placement ({study.best.method}): {', '.join(study.best.selected_names)}")
    print()
    print(placement_map(study))


if __name__ == "__main__":
    main()
