#!/usr/bin/env python3
"""Closed-loop dynamic thermal management driven by the smart sensors.

The paper's opening argument is that thermal management needs built-in
temperature sensors.  This example closes the whole loop the paper only
sketches:

    workload power -> die temperature (compact thermal model)
                   -> multiplexed ring-sensor readings (the paper's unit)
                   -> throttling policy (full-speed / throttled / emergency)
                   -> workload power ...

A power-virus workload (1.6x nominal power) is run twice: once with the
policy disabled (the die sails past its 115 C junction limit) and once
with the sensor-driven policy enabled (the die is held near the limit at
a measurable performance cost).

Run with:  python examples/dynamic_thermal_management.py
"""

from __future__ import annotations

from repro import CMOS035
from repro.experiments import run_dtm_study


def plot_trace_ascii(result, width: int = 64) -> str:
    """Render the peak-temperature traces as a rough ASCII chart."""
    managed = result.managed.trace
    unmanaged = result.unmanaged.trace
    t_min = 40.0
    t_max = max(point.true_peak_c for point in unmanaged) + 5.0

    def row(value: float, marker: str) -> str:
        position = int((value - t_min) / (t_max - t_min) * (width - 1))
        line = [" "] * width
        limit_pos = int((result.limit_c - t_min) / (t_max - t_min) * (width - 1))
        line[limit_pos] = "|"
        line[max(0, min(position, width - 1))] = marker
        return "".join(line)

    lines = [f"{'time':>6s}  {'unmanaged (U) vs managed (M), | = limit':<{width}s}  peak U / peak M"]
    step = max(1, len(managed) // 20)
    for index in range(0, len(managed), step):
        u = unmanaged[index].true_peak_c
        m = managed[index].true_peak_c
        merged = list(row(u, "U"))
        m_row = row(m, "M")
        for position, char in enumerate(m_row):
            if char == "M":
                merged[position] = "M" if merged[position] == " " else "X"
        lines.append(
            f"{managed[index].time_s:5.2f}s  {''.join(merged)}  {u:6.1f} / {m:6.1f} C"
        )
    return "\n".join(lines)


def main() -> None:
    result = run_dtm_study(
        CMOS035,
        configuration_text="2INV+3NAND2",
        workload_scale=1.6,
        duration_s=2.0,
        control_interval_s=0.02,
        limit_c=115.0,
        sensor_grid=3,
        grid_resolution=20,
    )

    print(result.format_summary())
    print()
    print(plot_trace_ascii(result))
    print()

    occupancy = result.managed.state_occupancy()
    print("Performance-state occupancy with the policy enabled:")
    for state, fraction in occupancy.items():
        bar = "#" * int(round(fraction * 40))
        print(f"  {state:12s} {fraction * 100:5.1f} %  {bar}")

    print()
    if result.keeps_die_below_limit():
        print(
            f"The sensor-driven policy holds the die at "
            f"{result.managed.peak_temperature_c():.1f} C "
            f"(limit {result.limit_c:.0f} C) while the unmanaged die would have "
            f"reached {result.unmanaged.peak_temperature_c():.1f} C — at an average "
            f"performance cost of {result.performance_cost() * 100:.0f} %."
        )
    else:
        print("The policy did not hold the die below the limit — tune the thresholds.")


if __name__ == "__main__":
    main()
