#!/usr/bin/env python3
"""The site axis: a sensor-bank thermal-map scan as one declarative Sweep.

The paper's multiplexer exists so several ring-oscillator sensors
"distributed on different points" can reconstruct the die's thermal
map.  This example shows the sweep engine's ``site`` axis doing exactly
that workload end to end:

1. solve the example processor's steady-state field once (the
   sparse-direct factorization is cached process-wide by
   ``repro.thermal.ThermalOperator``, so every later solve on the same
   grid reuses it),
2. place a ``SensorBank`` on the floorplan — all sites stacked
   struct-of-arrays style around one shared ring design — and two-point
   calibrate the *whole Monte-Carlo population* in one vectorized pass,
3. declare the scan as ``Sweep().over(Axis.site(bank, junction_
   temperatures_c=...)).over(Axis.sample(population))`` with the
   ``code`` observable: every site measured at its own local junction
   temperature, for every process sample, in a single broadcast,
4. time the banked scan against the retained per-sensor oracle (one
   scalar sensor per site per sample, controller FSM included), and
5. sweep the sensor-grid *density* and report how the reconstruction
   and hotspot errors fall as sensors are added — the design question
   the multiplexer answers.

Run with:  python examples/thermal_map_sweep.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    Axis,
    CMOS035,
    RingConfiguration,
    SensorBank,
    Sweep,
    sample_technology_array,
)
from repro.experiments import run_thermal_map_study
from repro.thermal import Floorplan, PowerMap, ThermalGrid, ThermalOperator


def main() -> None:
    configuration = RingConfiguration.parse("2INV+3NAND2")
    population = sample_technology_array(CMOS035, 200, seed=42)

    # -- the die and its true thermal field (one cached factorization) --
    floorplan = Floorplan.example_processor()
    floorplan.add_sensor_grid(3, 3)
    power = PowerMap.from_floorplan(floorplan, nx=24, ny=24)
    grid = ThermalGrid.for_power_map(power)
    true_map = ThermalOperator.for_grid(grid).solve_steady_state(power, ambient_c=45.0)
    print(f"die peak {true_map.max_c():.1f} C, "
          f"gradient {true_map.gradient_c():.1f} C")

    # -- the bank, calibrated across the whole population at once --
    bank = SensorBank.from_floorplan(CMOS035, floorplan, configuration)
    xs, ys = bank.positions()
    site_temps = true_map.sample_points(xs, ys)
    calibration = bank.two_point_calibration(-50.0, 150.0, technologies=population)

    # -- the scan, declared on named axes --
    start = time.perf_counter()
    codes = (
        Sweep()
        .over(Axis.site(bank, junction_temperatures_c=site_temps))
        .over(Axis.sample(population))
        .observe("code")
        .run()
    )
    banked_s = time.perf_counter() - start
    print(f"\nbanked scan: dims {codes.dims}, shape {codes.shape}, "
          f"{banked_s * 1e3:.1f} ms")

    estimates = calibration.estimate(bank.counter.codes_to_periods(codes.values))
    worst = np.max(np.abs(estimates - site_temps[:, np.newaxis]))
    print(f"worst per-site error across {len(population)} samples: {worst:.2f} C")

    # -- the retained per-sensor oracle, for scale (a small slice) --
    oracle_samples = 20
    start = time.perf_counter()
    bank.scan_loop(
        site_temps,
        technologies=[population.technology_at(i) for i in range(oracle_samples)],
        calibrate_at=(-50.0, 150.0),
    )
    oracle_s = (time.perf_counter() - start) * len(population) / oracle_samples
    print(f"per-sensor oracle (extrapolated from {oracle_samples} samples): "
          f"~{oracle_s:.1f} s -> ~{oracle_s / banked_s:.0f}x speedup")

    # -- the design question: how dense must the sensor grid be? --
    print()
    study = run_thermal_map_study(
        CMOS035, sensor_grids=(1, 2, 3, 4), sample_count=100, grid_resolution=24
    )
    print(study.format_table())
    budget = study.best_density_under(rms_limit_c=4.0)
    if budget is not None:
        print(f"\nsparsest grid meeting a 4 C RMS budget on every sample: "
              f"{budget.sensor_columns}x{budget.sensor_rows} "
              f"({budget.site_count} sensors, "
              f"{budget.scan_time_s * 1e6:.0f} us scan)")


if __name__ == "__main__":
    main()
