#!/usr/bin/env python3
"""Calibration flow across process corners and Monte-Carlo samples.

A cell-based sensor ships on every die of a digital product, so its
production-test cost matters: how many calibration insertions does it
need?  This example walks the flow a test engineer would:

1. characterise the *typical* sensor at design time (the shared slope),
2. for each process corner and a handful of Monte-Carlo dies, apply
   three calibration schemes (none / one-point / two-point),
3. report the worst-case temperature error of each scheme, and
4. show that what two-point calibration cannot remove is exactly the
   ring's intrinsic non-linearity — the quantity the paper's cell-mix
   optimisation minimises.

Run with:  python examples/calibration_and_corners.py
"""

from __future__ import annotations

import numpy as np

from repro import CMOS035, RingConfiguration, SmartTemperatureSensor
from repro.analysis import nonlinearity
from repro.core import design_calibration, one_point_calibration
from repro.experiments import run_calibration_study
from repro.tech import corner_technologies


def main() -> None:
    technology = CMOS035
    configuration = RingConfiguration.parse("2INV+3NAND2")
    temperatures = np.linspace(-50.0, 150.0, 17)

    # ------------------------------------------------------------------ #
    # Step 1: the design-time (typical process) transfer function.
    # ------------------------------------------------------------------ #
    typical = SmartTemperatureSensor.from_configuration(technology, configuration)
    design_transfer = typical.transfer_function(temperatures)
    design_cal = design_calibration(
        design_transfer.measured_periods_s, design_transfer.temperatures_c
    )
    print(f"Design-time slope: {design_cal.slope_c_per_second / 1e12:.3f} C/ps "
          f"(one division + one multiply in the digital block)")

    # ------------------------------------------------------------------ #
    # Step 2: per-corner behaviour of the three calibration schemes.
    # ------------------------------------------------------------------ #
    print("\ncorner   uncalibrated   one-point   two-point   intrinsic |NL|")
    print("------   ------------   ---------   ---------   ---------------")
    for corner_name, corner_tech in corner_technologies(technology).items():
        sensor = SmartTemperatureSensor.from_configuration(corner_tech, configuration)

        sensor.install_calibration(design_cal)
        uncalibrated = sensor.worst_case_error_c(temperatures)

        sensor.install_calibration(
            one_point_calibration(
                sensor.measured_period(25.0), 25.0, design_cal.slope_c_per_second
            )
        )
        one_point = sensor.worst_case_error_c(temperatures)

        sensor.calibrate_two_point(-50.0, 150.0)
        two_point = sensor.worst_case_error_c(temperatures)

        intrinsic = nonlinearity(
            sensor.temperature_response(temperatures)
        ).max_abs_temperature_error_c

        print(f"{corner_name:6s}   {uncalibrated:12.2f}   {one_point:9.2f}   "
              f"{two_point:9.3f}   {intrinsic:15.3f}")

    # ------------------------------------------------------------------ #
    # Step 3: the same study with Monte-Carlo dies (the ABL-CAL bench).
    # ------------------------------------------------------------------ #
    study = run_calibration_study(
        technology,
        configuration_text=configuration.label(),
        monte_carlo_samples=12,
        temperatures_c=temperatures,
        seed=20250617,
    )
    print()
    print(study.format_table())

    print(
        "\nTakeaway: the absolute frequency spread (tens of degrees if "
        "uncalibrated) collapses to the sub-kelvin intrinsic non-linearity "
        "after a two-point calibration, and choosing a linear cell mix is "
        "what keeps that residual small."
    )


if __name__ == "__main__":
    main()
