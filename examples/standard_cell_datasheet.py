#!/usr/bin/env python3
"""Generate a timing "datasheet" for the standard-cell library.

The sensor is built only from ordinary library gates, so everything the
designer needs is the cells' delay-versus-temperature behaviour.  This
example characterises the default library with the analytical model,
validates two cells against the transistor-level simulator, and writes a
Liberty-like ``.lib`` file — the artefact a cell-based flow would consume.

Run with:  python examples/standard_cell_datasheet.py [output.lib]
"""

from __future__ import annotations

import sys

from repro import CMOS035, default_library
from repro.cells import characterize_cell, measure_cell_delays, write_library


def main() -> None:
    technology = CMOS035
    library = default_library(technology, drives=(1,), max_fan_in=3)
    temperatures = (-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0)

    print(library.describe())
    print()

    # Delay-versus-temperature table at a fan-out-of-4 load for every
    # inverting cell (the candidates for ring-oscillator stages).
    print("Cell delays (tpHL+tpLH, ps) at FO4 load versus temperature:")
    header = f"{'cell':10s}" + "".join(f"{t:>9.0f}C" for t in temperatures) + "   tempco(fs/K)"
    print(header)
    for cell in library.inverting_cells():
        load = 4.0 * cell.input_capacitance()
        table = characterize_cell(cell, temperatures, loads_f=(load, 2 * load))
        row = f"{cell.name:10s}"
        for temperature in temperatures:
            row += f"{table.pair_sum(temperature, load) * 1e12:10.1f}"
        tempco = table.temperature_sensitivity(load) * 1e15
        row += f"   {tempco:12.2f}"
        print(row)

    # Spot-validate the analytical model against the MNA simulator.
    print("\nModel validation against the transistor-level simulator (27 C, FO4):")
    for name in ("INV", "NAND2"):
        cell = library.get(name)
        measurement = measure_cell_delays(cell, temperature_c=27.0, timestep_s=2e-12)
        print(
            f"  {cell.name:10s} simulated tpHL/tpLH = "
            f"{measurement.simulated.tphl * 1e12:6.1f} / "
            f"{measurement.simulated.tplh * 1e12:6.1f} ps, "
            f"analytical = {measurement.analytical.tphl * 1e12:6.1f} / "
            f"{measurement.analytical.tplh * 1e12:6.1f} ps "
            f"(worst error {max(measurement.tphl_error_rel, measurement.tplh_error_rel) * 100:.0f} %)"
        )

    # Export the Liberty-like datasheet.
    output = sys.argv[1] if len(sys.argv) > 1 else "stdcells_cmos035.lib"
    write_library(library, output, temperatures_c=(-50.0, 25.0, 150.0))
    print(f"\nLiberty-like timing library written to {output}")


if __name__ == "__main__":
    main()
