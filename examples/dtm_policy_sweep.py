#!/usr/bin/env python3
"""Banked DTM policy sweeps: many throttling policies through one loop.

The paper frames its sensor as "the core part of any thermal management
system" — and choosing a thermal-management *policy* is a comparison
problem: how eagerly should the die throttle, how much hysteresis, how
many performance states?  This example shows the banked policy path
answering that end to end:

1. stack a set of candidate ``ThrottlingPolicy`` objects into a
   ``PolicyBank`` (struct-of-arrays thresholds + padded state tables),
2. run them all through ``DynamicThermalManager.run_bank`` — every
   timestep is **one** multi-RHS backward-Euler solve for the whole
   ``(cell, policy)`` temperature stack, one bilinear gather of every
   policy's sensor sites, one broadcast ring-period evaluation and one
   vectorized FSM step — and time it against looping the retained
   scalar ``run(policy=...)`` oracle (the decisions bit-match),
3. declare the paper-facing comparison with
   ``run_dtm_policy_sweep``: policy x thermal-grid-resolution (the
   sweep engine's grid-refinement axis — one cached ``ThermalOperator``
   entry per resolution), with labeled ``SweepResult`` observables, and
4. add a Monte-Carlo ``sample`` axis: every process sample's sensors
   read the same die through their own corner and calibration, giving
   the policy robustness question one more broadcast dimension.

Run with:  python examples/dtm_policy_sweep.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import CMOS035, RingConfiguration, sample_technology_array
from repro.core import DynamicThermalManager, PolicyBank, ReadoutConfig, ThrottlingPolicy
from repro.experiments import example_policy_set, run_dtm_policy_sweep
from repro.thermal import Floorplan


def main() -> None:
    # -- the managed die: example processor, 3x3 sensors, 16x16 grid --
    floorplan = Floorplan.example_processor()
    floorplan.add_sensor_grid(3, 3)
    manager = DynamicThermalManager(
        CMOS035,
        floorplan,
        RingConfiguration.parse("2INV+3NAND2"),
        readout=ReadoutConfig(),
        grid_resolution=16,
    )

    # -- eight candidate policies on one axis --
    bank = PolicyBank(
        {
            f"throttle-{threshold:.0f}": ThrottlingPolicy(
                throttle_threshold_c=float(threshold),
                release_threshold_c=float(threshold) - 15.0,
                emergency_threshold_c=float(threshold) + 10.0,
            )
            for threshold in np.linspace(95.0, 116.0, 8)
        }
    )
    kw = dict(
        duration_s=0.6, control_interval_s=0.03, limit_c=115.0, workload_scale=1.6
    )

    # -- banked versus the scalar oracle loop --
    manager.run_bank(bank, **kw)  # warm the shared factorization
    start = time.perf_counter()
    banked = manager.run_bank(bank, **kw)
    banked_s = time.perf_counter() - start
    start = time.perf_counter()
    scalar = {label: manager.run(policy=bank.policy(label), **kw) for label in bank.labels()}
    scalar_s = time.perf_counter() - start
    print(f"8 policies, banked {banked_s * 1e3:.1f} ms vs looped "
          f"{scalar_s * 1e3:.0f} ms ({scalar_s / banked_s:.1f}x)")
    for label in bank.labels():
        assert [p.state_name for p in banked.to_result(label).trace] == [
            p.state_name for p in scalar[label].trace
        ], "banked decisions must bit-match the scalar oracle"
    print("throttle decisions bit-match the scalar oracle on every policy\n")

    peaks = banked.peak_temperature_c()
    performance = banked.average_performance()
    for index, label in enumerate(banked.labels):
        print(f"  {label:>12s}: peak {peaks[index]:6.1f} C, "
              f"performance {performance[index] * 100:5.1f} %")

    # -- the declarative policy x resolution sweep --
    sweep = run_dtm_policy_sweep(
        policies=example_policy_set(),
        duration_s=0.8,
        control_interval_s=0.04,
        grid_resolutions=(12, 16, 20),
        sensor_grid=2,
    )
    print()
    print(sweep.format_table())
    reduction = sweep.observable("peak_reduction_c")
    print(f"\nobservable dims: {reduction.dims}, shape {reduction.shape}")
    print(f"default-policy reduction at 16^2: "
          f"{reduction.select(policy='default', resolution=16).item():.1f} C")

    # -- the Monte-Carlo sample axis: policy robustness over process --
    population = sample_technology_array(CMOS035, 25, seed=42)
    robust = run_dtm_policy_sweep(
        policies=example_policy_set(),
        duration_s=0.8,
        control_interval_s=0.04,
        grid_resolutions=12,
        sensor_grid=2,
        technologies=population,
    )
    peak = robust.observable("peak_temperature_c").select(resolution=12)
    readings = robust.bank_result(12).hottest_reading_c  # (policy, sample, step)
    print(f"\npolicy x sample over {len(population)} Monte-Carlo samples "
          f"(per-sample calibration absorbs the process spread, so a zero "
          f"peak spread means every corner's sensors drive the same "
          f"decisions):")
    for index, label in enumerate(peak.coordinates("policy")):
        row = peak.select(policy=label).values
        spread = readings[index].max(axis=-1)
        print(f"  {label:>12s}: peak mean {row.mean():6.1f} C "
              f"(spread {row.max() - row.min():.2f} C), hottest-reading "
              f"spread {spread.max() - spread.min():.2f} C across corners")


if __name__ == "__main__":
    main()
