#!/usr/bin/env python3
"""The sweep engine as a persistent service: cache hits and micro-batching.

A thermal-characterisation campaign asks the same sweeps over and over —
the same Fig. 3 configuration grid from several analysis scripts, the
same operating point from many monitor processes.  ``repro.serve`` keeps
one evaluator warm behind a TCP socket so that repeated work is answered
from a content-addressed cache and concurrent point queries coalesce
into one broadcast evaluation.

This example

1. starts a :class:`~repro.serve.server.SweepServer` in a background
   thread on an ephemeral port (exactly what ``repro-serve`` /
   ``python -m repro.serve`` runs as a standalone process),
2. submits a configuration-grid sweep through the blocking
   :class:`~repro.serve.client.ServeClient` and verifies the served
   payload is byte-identical to evaluating the same ``Sweep`` locally,
3. repeats the request — respelled with integer coordinates, as a
   remote JSON caller would — and shows it costs **zero** new engine
   evaluations because both spellings collide on one canonical key,
4. fires 8 concurrent point queries (same base spec, different
   temperatures) from 8 threads and shows the micro-batcher folds them
   into **one** broadcast evaluation,
5. prints the server's cache / batcher statistics, and
6. **restarts** the server over a persistent disk cache directory
   (``cache_dir`` / ``REPRO_SERVE_CACHE_DIR``) and shows the freshly
   started server answers the repeat sweep from disk with **zero**
   evaluations — the warm-restart contract a long campaign relies on.

Run with:  python examples/sweep_service.py
"""

from __future__ import annotations

import json
import tempfile
import threading
import time

import numpy as np

from repro import Axis, CMOS035, PAPER_FIG3_CONFIGURATIONS, Sweep
from repro.serve import ServeClient, canonical_key, start_server_thread


def main() -> None:
    sweep = (
        Sweep(technology=CMOS035)
        .over(Axis.configuration(PAPER_FIG3_CONFIGURATIONS))
        .over(Axis.temperature(np.linspace(-40.0, 125.0, 12)))
        .observe("period")
    )

    cache_dir = tempfile.mkdtemp(prefix="repro-serve-cache-")
    handle = start_server_thread(batch_window_ms=25.0, cache_dir=cache_dir)
    try:
        print(f"Server        : 127.0.0.1:{handle.port} (ephemeral, in-process)")

        # -- 1+2: round trip -------------------------------------------------
        with ServeClient("127.0.0.1", handle.port) as client:
            start = time.perf_counter()
            served = client.sweep_payload(sweep)
            first_ms = (time.perf_counter() - start) * 1e3
            local = sweep.run().to_dict()
            print(f"First request : {first_ms:7.1f} ms  (evaluated on the server)")
            print(f"Byte-identical: {served == local}")

            # -- 3: respelled repeat hits the cache --------------------------
            respelled = json.loads(json.dumps(sweep.to_dict()))
            for axis in respelled["axes"]:
                if axis["name"] == "temperature":
                    axis["coordinates"] = [round(c, 6) for c in axis["coordinates"]]
            assert canonical_key(respelled) == canonical_key(sweep)
            before = handle.server.evaluations
            start = time.perf_counter()
            again = client.sweep_payload(respelled)
            repeat_ms = (time.perf_counter() - start) * 1e3
            print(
                f"Repeat request: {repeat_ms:7.1f} ms  "
                f"({handle.server.evaluations - before} new evaluations, "
                f"payload equal: {again == served})"
            )

        # -- 4: concurrent point queries micro-batch -------------------------
        base = Sweep(technology=CMOS035, configuration="2INV+3NAND2").to_dict()
        temps = [float(t) for t in np.linspace(-40.0, 125.0, 8)]
        results = [None] * len(temps)
        barrier = threading.Barrier(len(temps))
        before = handle.server.evaluations

        def worker(slot: int) -> None:
            with ServeClient("127.0.0.1", handle.port) as remote:
                barrier.wait()
                results[slot] = remote.point(base, temps[slot])

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(len(temps))
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        batch_ms = (time.perf_counter() - start) * 1e3

        periods_ns = [result.item() * 1e9 for result in results]
        print(
            f"Point queries : {len(temps)} concurrent clients in {batch_ms:6.1f} ms, "
            f"{handle.server.evaluations - before} broadcast evaluation(s)"
        )
        print(
            "                periods "
            f"{min(periods_ns):.2f}..{max(periods_ns):.2f} ns over "
            f"{temps[0]:.0f}..{temps[-1]:.0f} degC"
        )

        # -- 5: statistics ---------------------------------------------------
        stats = handle.server.stats()
        cache, batcher = stats["cache"], stats["batcher"]
        print(
            f"Cache         : {cache['hits']} hits / {cache['misses']} misses, "
            f"{cache['entries']} entries, {cache['bytes']} bytes"
        )
        print(
            f"Batcher       : {batcher['batches']} batch(es), "
            f"largest {batcher['largest_batch']} points"
        )
        print(f"Evaluations   : {stats['evaluations']} total for all of the above")
    finally:
        handle.stop()

    # -- 6: warm restart from the disk cache ---------------------------------
    # The server process is gone; its results are not.  A fresh server
    # over the same cache directory serves the repeat without a single
    # engine evaluation — what a multi-day campaign (or a second host
    # sharing the directory) relies on.
    restarted = start_server_thread(batch_window_ms=25.0, cache_dir=cache_dir)
    try:
        with ServeClient("127.0.0.1", restarted.port) as client:
            start = time.perf_counter()
            warm = client.sweep_payload(sweep)
            warm_ms = (time.perf_counter() - start) * 1e3
            disk = client.stats()["cache"]["disk"]
        print(
            f"Warm restart  : {warm_ms:7.1f} ms  "
            f"({restarted.server.evaluations} evaluations on the new server, "
            f"{disk['hits']} disk hit(s), payload equal: "
            f"{warm == sweep.run().to_dict()})"
        )
    finally:
        restarted.stop()


if __name__ == "__main__":
    main()
