#!/usr/bin/env python3
"""Tiled sweep execution: out-of-core assembly and multiprocess fan-out.

``Sweep.run()`` evaluates the whole axis product as one dense in-memory
broadcast — the right default at paper scale, a hard wall when the
sample axis grows toward production Monte-Carlo counts.  The tiled
execution layer (``repro.engine.tiling`` + ``repro.engine.executors``)
splits the planned sweep into bounded-memory chunks along the
cheapest-to-split axes (sample, then temperature) and runs them through
a pluggable backend; every backend is **bitwise identical** to the
dense path, because each tile evaluates exactly the same elementwise
broadcast on a slice of the population.

This example

1. runs a sweep whose dense result tensor exceeds a deliberately tiny
   memory budget *out of core*: tiles stream through a
   ``np.memmap``-backed sink, so the full tensor never lives in RAM —
   the same mechanism that lets a bigger-than-RAM sample axis complete,
2. aggregates the same oversized sweep through *streaming reducers*
   (mean / exact percentile / histogram) without materializing the
   result at all, and checks them against the dense numbers,
3. measures the multiprocess backend's speedup over serial tiles on a
   large population (shared-memory transport of the technology columns;
   the speedup only shows on a multi-core machine), and
4. shows the environment knobs (``REPRO_SWEEP_EXECUTOR``,
   ``REPRO_SWEEP_WORKERS``, ``REPRO_SWEEP_TILE_ELEMENTS``) that route
   every ``Sweep.run`` in a process through a backend without touching
   call sites.

Run with:  python examples/tiled_sweep.py
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import (
    Axis,
    CMOS035,
    HistogramReducer,
    MeanReducer,
    MemmapExecutor,
    PercentileReducer,
    ProcessExecutor,
    RingConfiguration,
    Sweep,
    sample_technology_array,
)
from repro.engine import plan_tiles


def build_sweep(population, temperatures):
    return (
        Sweep(technology=CMOS035, configuration=RingConfiguration.parse("2INV+3NAND2"))
        .over(Axis.sample(population))
        .over(Axis.temperature(temperatures))
    )


def main() -> None:
    temperatures = np.linspace(-50.0, 150.0, 41)

    # ------------------------------------------------------------------ #
    # 1. out-of-core: dense tensor larger than the memory budget
    # ------------------------------------------------------------------ #
    population = sample_technology_array(CMOS035, 4000, seed=77)
    sweep = build_sweep(population, temperatures)
    dense_bytes = len(population) * temperatures.size * 8
    budget = 256 * 1024  # pretend RAM ends at 256 KiB of result
    print("Out-of-core execution")
    print(f"  dense result tensor : {dense_bytes / 1e6:6.2f} MB "
          f"({len(population)} samples x {temperatures.size} temperatures)")
    print(f"  memory budget       : {budget / 1024:6.0f} KiB")

    tiling = plan_tiles(sweep.plan(), memory_budget_bytes=budget)
    print(f"  tiling              : {len(tiling.tiles)} tiles along "
          f"{[b[0] for b in tiling.tiles[0].bounds]}")

    start = time.perf_counter()
    result = sweep.run(executor=MemmapExecutor(memory_budget_bytes=budget))
    elapsed = time.perf_counter() - start
    print(f"  completed in        : {elapsed * 1e3:7.1f} ms  "
          f"dims={result.dims} shape={result.shape}")
    # The values are a disk-backed memmap view; label queries work as on
    # any other SweepResult.
    at_25c = result.select(temperature=25.0).values
    print(f"  period @ 25 C       : median {np.median(at_25c) * 1e9:.2f} ns "
          f"across the population")

    # ------------------------------------------------------------------ #
    # 2. streaming reducers: aggregate without the tensor
    # ------------------------------------------------------------------ #
    print("\nStreaming reducers (tensor never materialized)")
    reduced = sweep.reduce(
        {
            "mean": MeanReducer(),
            "p95_per_t": PercentileReducer(95.0, dims=("sample",)),
            "histogram": HistogramReducer(
                bins=12, range=(float(np.min(result.values)),
                                float(np.max(result.values)) * 1.0001)
            ),
        },
        max_tile_elements=budget // 8,
    )
    dense_mean = float(np.mean(result.values))
    print(f"  streamed mean       : {reduced['mean']:.6e} s "
          f"(dense agreement {abs(reduced['mean'] - dense_mean):.2e})")
    p95 = reduced["p95_per_t"]
    print(f"  p95 period spread   : {p95.min() * 1e9:.2f} .. {p95.max() * 1e9:.2f} ns "
          f"across temperature (exact, slab-finalized)")
    counts, _edges = reduced["histogram"]
    print(f"  histogram           : {counts.sum()} values in {counts.size} bins")

    # ------------------------------------------------------------------ #
    # 3. multiprocess fan-out with shared-memory population transport
    # ------------------------------------------------------------------ #
    workers = min(4, os.cpu_count() or 1)
    print(f"\nMultiprocess backend ({workers} workers, "
          f"{os.cpu_count()} cpu(s) visible)")
    big = sample_technology_array(CMOS035, 20000, seed=78)
    big_sweep = build_sweep(big, temperatures)

    start = time.perf_counter()
    serial = big_sweep.run(executor="serial", max_tile_elements=1 << 17)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = big_sweep.run(
        executor=ProcessExecutor(max_workers=workers), max_tile_elements=1 << 17
    )
    parallel_s = time.perf_counter() - start

    identical = np.array_equal(serial.values, parallel.values)
    print(f"  serial tiles        : {serial_s * 1e3:7.1f} ms")
    print(f"  {workers}-worker pool       : {parallel_s * 1e3:7.1f} ms  "
          f"(speedup {serial_s / parallel_s:4.2f}x, bitwise identical: {identical})")
    if workers < 2:
        print("  (run on a multi-core machine to see the speedup)")

    # ------------------------------------------------------------------ #
    # 4. the environment knobs
    # ------------------------------------------------------------------ #
    print("\nEnvironment-selected default backend:")
    print("  REPRO_SWEEP_EXECUTOR=process REPRO_SWEEP_WORKERS=4 python ...")
    print("  routes every Sweep.run() through the pool — the CI lane runs")
    print("  the whole fast test suite that way, and the experiment CLI")
    print("  exposes the same knobs as --executor/--workers/--tile-elements.")


if __name__ == "__main__":
    main()
