#!/usr/bin/env python3
"""The declarative sweep API: Fig. 3 x Monte-Carlo in one Sweep.

Every paper-facing artefact is a cross product of the same few named
axes — ring configuration (Fig. 3), process sample (the Monte-Carlo
calibration argument), supply, transistor sizing, temperature.  The
sweep API (``repro.engine.sweep``) lets you *declare* such a workload
instead of wiring bespoke loops: compose ``Axis`` objects over a base
technology, pick an observable, and get back a labeled ``SweepResult``
whose dimensions carry names and coordinates instead of anonymous
ndarray positions.

This example

1. declares the full Fig. 3 x Monte-Carlo cross product — all six paper
   configurations x 500 process samples x 41 temperatures — as one
   ``Sweep`` and evaluates it as a single ``(C, S, T)`` broadcast
   through the stacked configuration bank
   (``repro.oscillator.ConfigurationBank``),
2. times that broadcast against the retained per-configuration loop
   (the oracle) and verifies the agreement,
3. slices the labeled result by *name* — no dimension bookkeeping — to
   rank the configurations by their worst-case non-linearity spread
   across the population, and
4. shows a second observable on the same axes: the worst-case
   temperature error of an ideally two-point-calibrated sensor
   (``calibration_error_c``).

Run with:  python examples/batch_sweep.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    Axis,
    CMOS035,
    ConfigurationBank,
    PAPER_FIG3_CONFIGURATIONS,
    Sweep,
    default_library,
    sample_technology_array,
)


def main() -> None:
    temperatures = np.linspace(-50.0, 150.0, 41)
    population = sample_technology_array(CMOS035, 500, seed=1234)

    print("Workload : Fig. 3 configuration axis x Monte-Carlo sample axis")
    print(f"           {len(PAPER_FIG3_CONFIGURATIONS)} configurations x "
          f"{len(population)} samples x {temperatures.size} temperatures")

    # ------------------------------------------------------------------ #
    # 1. declare and evaluate the cross product
    # ------------------------------------------------------------------ #
    sweep = (
        Sweep(technology=CMOS035)
        .over(Axis.configuration(PAPER_FIG3_CONFIGURATIONS))
        .over(Axis.sample(population))
        .over(Axis.temperature(temperatures))
    )
    start = time.perf_counter()
    periods = sweep.run()
    broadcast_s = time.perf_counter() - start
    print(f"\nSweep dims   : {periods.dims}")
    print(f"Sweep shape  : {periods.shape}  (one (C, S, T) broadcast)")
    print(f"Broadcast    : {broadcast_s * 1e3:7.1f} ms")

    # ------------------------------------------------------------------ #
    # 2. the retained per-configuration loop is the oracle
    # ------------------------------------------------------------------ #
    bank = ConfigurationBank(default_library(CMOS035), PAPER_FIG3_CONFIGURATIONS)
    start = time.perf_counter()
    looped = bank.period_tensor_loop(temperatures, technologies=population)
    loop_s = time.perf_counter() - start
    worst = float(np.max(np.abs(periods.values - looped) / np.abs(looped)))
    print(f"Config loop  : {loop_s * 1e3:7.1f} ms   "
          f"(speedup {loop_s / broadcast_s:.1f}x, agreement {worst:.2e} rel)")

    # ------------------------------------------------------------------ #
    # 3. slice by name: linearity spread across the population
    # ------------------------------------------------------------------ #
    errors = sweep.observe("nonlinearity_percent").run()
    print("\nWorst-case non-linearity across the Monte-Carlo population")
    print(f"{'configuration':15s} {'median |NL|%':>14s} {'max |NL|%':>12s}")
    ranked = sorted(
        errors.coordinates("configuration"),
        key=lambda label: np.max(
            np.abs(errors.select(configuration=label).values)
        ),
    )
    for label in ranked:
        per_sample = np.max(
            np.abs(errors.select(configuration=label).values), axis=-1
        )
        print(f"{label:15s} {np.median(per_sample):14.3f} {np.max(per_sample):12.3f}")

    # ------------------------------------------------------------------ #
    # 4. same axes, another observable: calibrated temperature error
    # ------------------------------------------------------------------ #
    cal = sweep.observe("calibration_error_c").run()
    best = ranked[0]
    worst_error_c = np.max(np.abs(cal.select(configuration=best).values))
    print(f"\nTwo-point-calibrated worst-case error of {best}: "
          f"{worst_error_c:.2f} C over all samples and temperatures")


if __name__ == "__main__":
    main()
