#!/usr/bin/env python3
"""Quickstart: build, calibrate and read the smart temperature sensor.

This is the five-minute tour of the library:

1. pick the paper's 0.35 um technology,
2. build a smart sensor whose ring oscillator uses a linearised mix of
   standard cells (2 inverters + 3 NAND2, one of the Fig. 3 mixes),
3. two-point calibrate it,
4. read junction temperatures across the military range and compare the
   digital estimate against the truth.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CMOS035, RingConfiguration, SmartTemperatureSensor
from repro.analysis import nonlinearity
from repro.core import ReadoutConfig


def main() -> None:
    technology = CMOS035
    configuration = RingConfiguration.parse("2INV+3NAND2")

    print(f"Technology        : {technology.name} (VDD = {technology.vdd} V)")
    print(f"Ring configuration: {configuration.label()} "
          f"({configuration.stage_count} stages)")

    # The readout counts ring cycles during a 256-cycle window of a
    # 50 MHz reference clock (about 5 us per conversion).
    readout = ReadoutConfig(reference_clock_hz=50e6, window_cycles=256, counter_bits=16)
    sensor = SmartTemperatureSensor.from_configuration(
        technology, configuration, readout=readout, name="quickstart"
    )

    # Sensor characteristic before any calibration: the raw period and
    # its linearity over the paper's -50..150 C range.
    response = sensor.temperature_response()
    linearity = nonlinearity(response)
    print(f"\nOscillation period : {response.period_at(25.0) * 1e12:7.1f} ps at 25 C")
    print(f"Sensitivity        : {response.mean_sensitivity() * 1e15:7.1f} fs/K")
    print(f"Non-linearity      : {linearity.max_abs_error_percent:7.3f} % of full scale "
          f"({linearity.max_abs_temperature_error_c:.2f} C equivalent)")

    # Two-point calibration at the insertion temperatures a production
    # test would use.
    calibration = sensor.calibrate_two_point(-40.0, 125.0)
    print(f"\nCalibration        : {calibration.kind}, "
          f"slope {calibration.slope_c_per_second / 1e12:.3f} C/ps")

    print("\n true T (C) |  code  | estimate (C) | error (C) | busy after?")
    print(" -----------+--------+--------------+-----------+-------------")
    for true_temperature in (-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0):
        reading = sensor.measure(true_temperature)
        print(
            f"  {true_temperature:9.1f} | {reading.code:6d} | "
            f"{reading.temperature_estimate_c:12.2f} | {reading.error_c:9.3f} | "
            f"{'yes' if sensor.busy else 'no'}"
        )

    worst = sensor.worst_case_error_c()
    print(f"\nWorst-case measurement error over -50..150 C: {worst:.3f} C")
    print(f"Conversion time: {sensor.history()[-1].conversion_time_s * 1e6:.1f} us; "
          f"sensor power while measuring: "
          f"{sensor.measurement_power_w(85.0) * 1e6:.1f} uW")


if __name__ == "__main__":
    main()
