#!/usr/bin/env python3
"""Batch Monte-Carlo with the vectorized evaluation engine.

The paper's calibration argument rests on a population statement: process
variation shifts the *absolute* ring period strongly (so the sensor needs
calibration) but leaves the *linearity* nearly untouched (so one cheap
calibration point suffices).  Checking that statement well needs many
Monte-Carlo samples over a dense temperature grid — exactly the workload
the batch engine accelerates.

This example

1. runs a 200-sample x 41-temperature Monte-Carlo study through
   ``BatchEvaluator()`` (the vectorized path) and times it against the
   scalar reference loop (``BatchEvaluator(vectorized=False)``),
2. verifies the two paths agree to floating-point rounding, and
3. prints the population summary the paper's argument is built on.

Run with:  python examples/batch_montecarlo.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import BatchEvaluator, CMOS035, RingConfiguration


def main() -> None:
    configuration = RingConfiguration.parse("2INV+3NAND2")
    temperatures = np.linspace(-50.0, 150.0, 41)
    samples = 200

    print(f"Configuration : {configuration.label()}")
    print(f"Workload      : {samples} Monte-Carlo samples x {temperatures.size} temperatures")

    engine = BatchEvaluator()
    start = time.perf_counter()
    study = engine.run_monte_carlo(
        CMOS035, configuration, sample_count=samples,
        temperatures_c=temperatures, seed=1234,
    )
    vectorized_s = time.perf_counter() - start

    oracle = BatchEvaluator(vectorized=False)
    start = time.perf_counter()
    reference = oracle.run_monte_carlo(
        CMOS035, configuration, sample_count=samples,
        temperatures_c=temperatures, seed=1234,
    )
    scalar_s = time.perf_counter() - start

    worst_rel = max(
        float(np.max(np.abs(v.periods_s - s.periods_s) / s.periods_s))
        for v, s in zip(study.responses, reference.responses)
    )
    print(f"Vectorized    : {vectorized_s * 1e3:7.1f} ms")
    print(f"Scalar oracle : {scalar_s * 1e3:7.1f} ms")
    print(f"Speedup       : {scalar_s / vectorized_s:7.1f} x")
    print(f"Agreement     : worst relative period error {worst_rel:.2e}")

    print()
    print("Population summary (the paper's calibration argument):")
    print(f"  period spread at 25 C : {study.period_spread_percent:6.2f} % "
          "(large -> calibration needed)")
    print(f"  worst non-linearity   : mean {study.nonlinearity_percent.mean:.3f} %, "
          f"max {study.nonlinearity_percent.maximum:.3f} % "
          "(small -> one-point calibration suffices)")
    print(f"  mean sensitivity      : {study.sensitivity_s_per_k.mean * 1e15:.2f} fs/K")


if __name__ == "__main__":
    main()
