#!/usr/bin/env python3
"""Batch Monte-Carlo with the vectorized evaluation engine.

The paper's calibration argument rests on a population statement: process
variation shifts the *absolute* ring period strongly (so the sensor needs
calibration) but leaves the *linearity* nearly untouched (so one cheap
calibration point suffices).  Checking that statement well needs many
Monte-Carlo samples over a dense temperature grid — exactly the workload
the batch engine accelerates.

This example

1. runs a 200-sample x 41-temperature Monte-Carlo study through
   ``BatchEvaluator()`` (the vectorized path) and times it against the
   scalar reference loop (``BatchEvaluator(vectorized=False)``),
2. verifies the two paths agree to floating-point rounding,
3. prints the population summary the paper's argument is built on, and
4. shows the stacked sample axis directly: a 1000-sample population
   drawn as one struct-of-arrays ``TechnologyArray``
   (``sample_technology_array``) and evaluated as a single
   ``(sample x temperature)`` broadcast through ``period_matrix`` —
   timed against the retained per-sample rebind loop
   (``period_matrix_loop``).

Run with:  python examples/batch_montecarlo.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    BatchEvaluator,
    CMOS035,
    RingConfiguration,
    RingOscillator,
    default_library,
    sample_technology_array,
)


def main() -> None:
    configuration = RingConfiguration.parse("2INV+3NAND2")
    temperatures = np.linspace(-50.0, 150.0, 41)
    samples = 200

    print(f"Configuration : {configuration.label()}")
    print(f"Workload      : {samples} Monte-Carlo samples x {temperatures.size} temperatures")

    engine = BatchEvaluator()
    start = time.perf_counter()
    study = engine.run_monte_carlo(
        CMOS035, configuration, sample_count=samples,
        temperatures_c=temperatures, seed=1234,
    )
    vectorized_s = time.perf_counter() - start

    oracle = BatchEvaluator(vectorized=False)
    start = time.perf_counter()
    reference = oracle.run_monte_carlo(
        CMOS035, configuration, sample_count=samples,
        temperatures_c=temperatures, seed=1234,
    )
    scalar_s = time.perf_counter() - start

    worst_rel = max(
        float(np.max(np.abs(v.periods_s - s.periods_s) / s.periods_s))
        for v, s in zip(study.responses, reference.responses)
    )
    print(f"Vectorized    : {vectorized_s * 1e3:7.1f} ms")
    print(f"Scalar oracle : {scalar_s * 1e3:7.1f} ms")
    print(f"Speedup       : {scalar_s / vectorized_s:7.1f} x")
    print(f"Agreement     : worst relative period error {worst_rel:.2e}")

    print()
    print("Population summary (the paper's calibration argument):")
    print(f"  period spread at 25 C : {study.period_spread_percent:6.2f} % "
          "(large -> calibration needed)")
    print(f"  worst non-linearity   : mean {study.nonlinearity_percent.mean:.3f} %, "
          f"max {study.nonlinearity_percent.maximum:.3f} % "
          "(small -> one-point calibration suffices)")
    print(f"  mean sensitivity      : {study.sensitivity_s_per_k.mean * 1e15:.2f} fs/K")

    # ------------------------------------------------------------------ #
    # The stacked sample axis, hands on
    # ------------------------------------------------------------------ #
    print()
    print("Stacked sample axis (struct-of-arrays technologies):")
    ring = RingOscillator(default_library(CMOS035), configuration)
    population = sample_technology_array(CMOS035, 1000, seed=1234)

    start = time.perf_counter()
    matrix = ring.period_matrix(population, temperatures)
    stacked_s = time.perf_counter() - start

    start = time.perf_counter()
    looped = ring.period_matrix_loop(population, temperatures)
    looped_s = time.perf_counter() - start

    worst = float(np.max(np.abs(matrix - looped) / np.abs(looped)))
    print(f"  population    : {len(population)} samples x {temperatures.size} temperatures")
    print(f"  stacked       : {stacked_s * 1e3:7.1f} ms  (one broadcast, no per-sample loop)")
    print(f"  per-sample    : {looped_s * 1e3:7.1f} ms  (PR 1 rebind loop, kept as oracle)")
    print(f"  speedup       : {looped_s / stacked_s:7.1f} x")
    print(f"  agreement     : worst relative period error {worst:.2e}")


if __name__ == "__main__":
    main()
