#!/usr/bin/env python3
"""Design-space exploration: reproduce the paper's Fig. 2 and Fig. 3 studies.

The paper linearises the ring oscillator two ways:

* Section 2 / Fig. 2 — transistor-level: sweep the PMOS/NMOS width
  ratio of a custom inverter (needs a full-custom cell);
* Section 3 / Fig. 3 — cell-level: choose the mix of standard library
  gates composing the ring (no custom cell at all).

This example runs both studies, prints the error tables, and then lets
the exhaustive mix search find the best configuration the library can
offer — the design flow a user of this package would actually follow.

Run with:  python examples/sensor_design_space.py
"""

from __future__ import annotations

import numpy as np

from repro import CMOS035, default_library
from repro.experiments import run_fig2, run_fig3
from repro.optimize import greedy_cell_mix, optimize_width_ratio, search_cell_mix


def main() -> None:
    technology = CMOS035
    library = default_library(technology)
    temperatures = np.asarray([-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0])

    # ------------------------------------------------------------------ #
    # Transistor-level optimisation (the paper's Fig. 2)
    # ------------------------------------------------------------------ #
    fig2 = run_fig2(technology, temperatures_c=temperatures)
    print(fig2.format_table())
    print()

    # ------------------------------------------------------------------ #
    # Cell-level optimisation (the paper's Fig. 3)
    # ------------------------------------------------------------------ #
    fig3 = run_fig3(technology, temperatures_c=temperatures, library=library)
    print(fig3.format_table())
    print()

    # ------------------------------------------------------------------ #
    # What the library can achieve: exhaustive and greedy searches
    # ------------------------------------------------------------------ #
    search = search_cell_mix(
        library,
        cell_names=("INV", "NAND2", "NAND3", "NOR2", "NOR3"),
        stage_count=5,
        temperatures_c=temperatures,
        top_k=5,
    )
    print(f"Top 5 of {search.evaluated_count} evaluated 5-stage mixes:")
    for rank, candidate in enumerate(search.top(5), start=1):
        print(
            f"  {rank}. {candidate.label:22s} max|NL| = "
            f"{candidate.max_abs_error_percent:6.3f} %   area = {candidate.area_um2:6.1f} um2"
        )
    print()

    # For longer rings exhaustive enumeration explodes; the greedy search
    # scales and lands close to the optimum.
    greedy = greedy_cell_mix(
        library,
        cell_names=("INV", "NAND2", "NAND3", "NOR2"),
        stage_count=9,
        temperatures_c=temperatures,
    )
    print(
        f"Greedy search, 9-stage ring: {greedy.label} with max|NL| = "
        f"{greedy.max_abs_error_percent:.3f} %"
    )

    # Summary: cell-level versus transistor-level optimisation.
    sizing_optimum = optimize_width_ratio(technology, temperatures_c=temperatures)
    print()
    print("Summary (worst-case non-linearity over -50..150 C):")
    print(f"  plain 5-inverter ring          : "
          f"{fig3.inverter_reference().max_abs_error_percent:6.3f} %")
    print(f"  best paper cell mix            : "
          f"{fig3.best_paper_configuration().max_abs_error_percent:6.3f} % "
          f"({fig3.best_paper_configuration().label})")
    print(f"  best searched cell mix         : "
          f"{search.best().max_abs_error_percent:6.3f} % ({search.best().label})")
    print(f"  transistor-level optimum ratio : "
          f"{sizing_optimum.max_abs_error_percent:6.3f} % "
          f"(Wp/Wn = {sizing_optimum.width_ratio:.2f}, needs a custom cell)")


if __name__ == "__main__":
    main()
