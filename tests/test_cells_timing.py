"""Unit tests for NLDM-style timing tables and the Liberty exporter."""

import numpy as np
import pytest

from repro.cells import (
    CellError,
    TimingTable,
    characterize_cell,
    format_cell,
    format_library,
    inverter,
    nand_gate,
    default_library,
    write_library,
)
from repro.tech import CMOS035


@pytest.fixture(scope="module")
def inv_table():
    return characterize_cell(inverter(CMOS035), temperatures_c=(-50.0, 25.0, 150.0))


class TestCharacterize:
    def test_grid_shape(self, inv_table):
        assert inv_table.tphl_s.shape == (3, 4)
        assert inv_table.tplh_s.shape == (3, 4)

    def test_requires_two_temperatures(self):
        with pytest.raises(CellError):
            characterize_cell(inverter(CMOS035), temperatures_c=(25.0,))

    def test_custom_loads(self):
        table = characterize_cell(
            inverter(CMOS035), temperatures_c=(-50.0, 150.0), loads_f=(5e-15, 20e-15)
        )
        assert table.loads_f.size == 2

    def test_delays_increase_with_temperature_and_load(self, inv_table):
        grid = inv_table.tphl_s
        assert np.all(np.diff(grid, axis=0) > 0)  # hotter rows are slower
        assert np.all(np.diff(grid, axis=1) > 0)  # heavier columns are slower


class TestTimingTableInterpolation:
    def test_exact_grid_points_recovered(self, inv_table):
        cell = inverter(CMOS035)
        load = float(inv_table.loads_f[1])
        expected = cell.delays(25.0, load).tphl
        assert inv_table.tphl(25.0, load) == pytest.approx(expected, rel=1e-9)

    def test_interpolation_between_points(self, inv_table):
        load = float(inv_table.loads_f[0])
        mid = inv_table.tphl(50.0, load)
        low = inv_table.tphl(25.0, load)
        high = inv_table.tphl(150.0, load)
        assert low < mid < high

    def test_out_of_range_queries_rejected(self, inv_table):
        load = float(inv_table.loads_f[0])
        with pytest.raises(CellError):
            inv_table.tphl(200.0, load)
        with pytest.raises(CellError):
            inv_table.tphl(25.0, 1.0)

    def test_pair_sum_and_sensitivity(self, inv_table):
        load = float(inv_table.loads_f[0])
        assert inv_table.pair_sum(25.0, load) == pytest.approx(
            inv_table.tphl(25.0, load) + inv_table.tplh(25.0, load)
        )
        assert inv_table.temperature_sensitivity(load) > 0.0

    def test_invalid_grids_rejected(self):
        with pytest.raises(CellError):
            TimingTable(
                cell_name="bad",
                temperatures_c=np.array([0.0, 1.0]),
                loads_f=np.array([1e-15, 2e-15]),
                tphl_s=np.zeros((2, 2)),
                tplh_s=np.ones((2, 2)) * 1e-12,
            )
        with pytest.raises(CellError):
            TimingTable(
                cell_name="bad",
                temperatures_c=np.array([1.0, 0.0]),
                loads_f=np.array([1e-15, 2e-15]),
                tphl_s=np.ones((2, 2)) * 1e-12,
                tplh_s=np.ones((2, 2)) * 1e-12,
            )


class TestLibertyExport:
    def test_cell_block_contains_function_and_pins(self):
        text = format_cell(nand_gate(CMOS035, 2), temperatures_c=(-50.0, 150.0))
        assert "cell (NAND2_X1)" in text
        assert "!(A0 & A1)" in text
        assert "cell_fall" in text and "cell_rise" in text

    def test_library_header_and_all_cells(self):
        library = default_library(CMOS035, drives=(1,), max_fan_in=2)
        text = format_library(library, temperatures_c=(-50.0, 150.0))
        assert text.startswith("library (")
        for name in library.names():
            assert f"cell ({name})" in text

    def test_write_library_to_disk(self, tmp_path):
        library = default_library(CMOS035, drives=(1,), max_fan_in=2)
        path = tmp_path / "stdcells.lib"
        write_library(library, str(path), temperatures_c=(-50.0, 150.0))
        content = path.read_text()
        assert "nom_voltage : 3.30;" in content
