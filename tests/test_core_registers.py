"""Unit tests for the register-map front end of the smart unit."""

import pytest

from repro.core import SensorMultiplexer, SmartTemperatureSensor
from repro.core.registers import (
    CONFIG_ADDR,
    CTRL_ADDR,
    CTRL_CHANNEL_SHIFT,
    CTRL_ENABLE_BIT,
    CTRL_START_BIT,
    DATA_ADDR,
    STATUS_ADDR,
    STATUS_DATA_VALID_BIT,
    TEMP_ADDR,
    SmartSensorRegisters,
    _from_fixed_point_8_4,
    _to_fixed_point_8_4,
)
from repro.oscillator import RingConfiguration
from repro.tech import CMOS035, TechnologyError


@pytest.fixture()
def registers(tech):
    sensors = []
    for index in range(3):
        sensor = SmartTemperatureSensor.from_configuration(
            tech, RingConfiguration.parse("2INV+3NAND2"), name=f"ch{index}"
        )
        sensor.calibrate_two_point(-40.0, 125.0)
        sensors.append(sensor)
    return SmartSensorRegisters(SensorMultiplexer(sensors))


class TestFixedPointEncoding:
    def test_round_trip_positive(self):
        assert _from_fixed_point_8_4(_to_fixed_point_8_4(85.25)) == pytest.approx(85.25)

    def test_round_trip_negative(self):
        assert _from_fixed_point_8_4(_to_fixed_point_8_4(-40.5)) == pytest.approx(-40.5)

    def test_quantisation_step_is_sixteenth(self):
        assert _from_fixed_point_8_4(_to_fixed_point_8_4(25.03)) == pytest.approx(25.03, abs=1 / 16)

    def test_saturates_at_range_edges(self):
        assert _from_fixed_point_8_4(_to_fixed_point_8_4(500.0)) == pytest.approx(2047 / 16)


class TestBusAccess:
    def test_unknown_address_rejected(self, registers):
        with pytest.raises(TechnologyError):
            registers.read(0x40)
        with pytest.raises(TechnologyError):
            registers.write(0x40, 1)

    def test_read_only_registers_reject_writes(self, registers):
        for address in (STATUS_ADDR, DATA_ADDR, TEMP_ADDR, CONFIG_ADDR):
            with pytest.raises(TechnologyError):
                registers.write(address, 1)

    def test_config_reports_window_cycles(self, registers):
        assert registers.read(CONFIG_ADDR) == 256

    def test_ctrl_readback_reflects_enable_and_channel(self, registers):
        registers.write(CTRL_ADDR, (1 << CTRL_ENABLE_BIT) | (2 << CTRL_CHANNEL_SHIFT))
        value = registers.read(CTRL_ADDR)
        assert (value >> CTRL_ENABLE_BIT) & 1 == 1
        assert (value >> CTRL_CHANNEL_SHIFT) & 0xF == 2
        # START is self-clearing and must read back as 0.
        assert (value >> CTRL_START_BIT) & 1 == 0

    def test_channel_out_of_range_rejected(self, registers):
        with pytest.raises(TechnologyError):
            registers.write(CTRL_ADDR, (1 << CTRL_ENABLE_BIT) | (9 << CTRL_CHANNEL_SHIFT))


class TestConversionFlow:
    def test_start_without_enable_rejected(self, registers):
        registers.set_junction_temperatures({"ch0": 60.0})
        with pytest.raises(TechnologyError):
            registers.write(CTRL_ADDR, 1 << CTRL_START_BIT)

    def test_start_without_temperature_rejected(self, registers):
        with pytest.raises(TechnologyError):
            registers.write(
                CTRL_ADDR, (1 << CTRL_ENABLE_BIT) | (1 << CTRL_START_BIT)
            )

    def test_full_conversion_sequence(self, registers):
        registers.set_junction_temperatures({"ch0": 72.0})
        registers.write(
            CTRL_ADDR, (1 << CTRL_ENABLE_BIT) | (1 << CTRL_START_BIT)
        )
        status = registers.read(STATUS_ADDR)
        assert (status >> STATUS_DATA_VALID_BIT) & 1 == 1
        temperature = _from_fixed_point_8_4(registers.read(TEMP_ADDR))
        assert temperature == pytest.approx(72.0, abs=1.0)
        code = registers.read(DATA_ADDR)
        assert code > 0
        # Reading DATA clears DATA_VALID.
        assert (registers.read(STATUS_ADDR) >> STATUS_DATA_VALID_BIT) & 1 == 0

    def test_driver_helper_reads_each_channel(self, registers):
        for channel, temperature in enumerate((25.0, 85.0, 110.0)):
            estimate = registers.convert_channel(channel, temperature)
            assert estimate == pytest.approx(temperature, abs=1.0)

    def test_unknown_channel_temperature_rejected(self, registers):
        with pytest.raises(TechnologyError):
            registers.set_junction_temperatures({"ch9": 50.0})
