"""Unit tests for the complete smart temperature sensor."""

import numpy as np
import pytest

from repro.core import ReadoutConfig, SmartTemperatureSensor
from repro.oscillator import RingConfiguration
from repro.tech import CMOS035, TechnologyError


class TestConstruction:
    def test_from_configuration_builds_ring(self, smart_sensor):
        assert smart_sensor.ring.stage_count == 5
        assert smart_sensor.calibration is None

    def test_custom_library_respected(self, tech, library):
        sensor = SmartTemperatureSensor.from_configuration(
            tech, RingConfiguration.uniform("NAND2", 5), library=library, name="n2"
        )
        assert sensor.ring.label() == "5NAND2"


class TestMeasurement:
    def test_uncalibrated_reading_has_code_but_no_estimate(self, smart_sensor):
        reading = smart_sensor.measure(85.0)
        assert reading.code > 0
        assert reading.temperature_estimate_c is None
        assert reading.error_c is None

    def test_code_decreases_with_temperature(self, smart_sensor):
        cold = smart_sensor.measure(-40.0)
        hot = smart_sensor.measure(125.0)
        assert hot.code < cold.code

    def test_measured_period_close_to_true_period(self, smart_sensor):
        reading = smart_sensor.measure(25.0)
        assert reading.measured_period_s == pytest.approx(
            reading.oscillator_period_s, rel=1e-3
        )
        assert abs(reading.quantisation_error_s) < 1e-13

    def test_history_accumulates(self, smart_sensor):
        smart_sensor.measure(0.0)
        smart_sensor.measure(50.0)
        assert len(smart_sensor.history()) == 2

    def test_conversion_time_matches_readout(self, smart_sensor):
        reading = smart_sensor.measure(25.0)
        expected = smart_sensor.readout.window_cycles / smart_sensor.readout.reference_clock_hz
        assert reading.conversion_time_s >= expected

    def test_busy_flag_low_after_measurement(self, smart_sensor):
        smart_sensor.measure(25.0)
        assert not smart_sensor.busy
        assert not smart_sensor.enabled  # auto-disable default


class TestCalibrationAndAccuracy:
    def test_two_point_calibrated_error_subkelvin(self, smart_sensor, paper_temperatures):
        smart_sensor.calibrate_two_point(-50.0, 150.0)
        worst = smart_sensor.worst_case_error_c(paper_temperatures)
        assert worst < 1.0

    def test_calibrated_reading_reports_estimate(self, smart_sensor):
        smart_sensor.calibrate_two_point(-40.0, 125.0)
        reading = smart_sensor.measure(85.0)
        assert reading.temperature_estimate_c == pytest.approx(85.0, abs=1.0)

    def test_exact_at_calibration_points(self, smart_sensor):
        smart_sensor.calibrate_two_point(-40.0, 125.0)
        low = smart_sensor.measure(-40.0)
        high = smart_sensor.measure(125.0)
        assert low.temperature_estimate_c == pytest.approx(-40.0, abs=0.1)
        assert high.temperature_estimate_c == pytest.approx(125.0, abs=0.1)

    def test_one_point_calibration_against_design_curve(self, tech, paper_temperatures):
        design_sensor = SmartTemperatureSensor.from_configuration(
            tech, RingConfiguration.parse("2INV+3NAND2"), name="design"
        )
        design_transfer = design_sensor.transfer_function(paper_temperatures)
        sensor = SmartTemperatureSensor.from_configuration(
            tech, RingConfiguration.parse("2INV+3NAND2"), name="dut"
        )
        sensor.calibrate_one_point(25.0, design_transfer)
        # Same (typical) technology: one-point calibration must be nearly
        # as good as two-point here.
        assert sensor.worst_case_error_c(paper_temperatures) < 1.5

    def test_measurement_errors_require_calibration(self, smart_sensor):
        with pytest.raises(TechnologyError):
            smart_sensor.measurement_errors()

    def test_install_custom_calibration_validated(self, smart_sensor):
        with pytest.raises(TechnologyError):
            smart_sensor.install_calibration(object())


class TestTransferFunction:
    def test_monotonic_and_code_span(self, smart_sensor, paper_temperatures):
        transfer = smart_sensor.transfer_function(paper_temperatures)
        assert transfer.is_monotonic()
        assert transfer.codes_per_kelvin() > 1.0

    def test_transfer_periods_match_ring(self, smart_sensor, paper_temperatures):
        transfer = smart_sensor.transfer_function(paper_temperatures)
        expected = smart_sensor.ring.period(25.0)
        measured = transfer.measured_periods_s[list(paper_temperatures).index(25.0)]
        assert measured == pytest.approx(expected, rel=1e-3)

    def test_code_at_interpolates(self, smart_sensor, paper_temperatures):
        transfer = smart_sensor.transfer_function(paper_temperatures)
        mid = transfer.code_at(60.0)
        assert transfer.codes.min() <= mid <= transfer.codes.max()


class TestPower:
    def test_measurement_power_positive(self, smart_sensor):
        assert smart_sensor.measurement_power_w(85.0) > 0.0

    def test_average_power_scales_with_rate(self, smart_sensor):
        slow = smart_sensor.average_power_w(85.0, measurement_rate_hz=10.0)
        fast = smart_sensor.average_power_w(85.0, measurement_rate_hz=1000.0)
        assert fast > slow

    def test_average_power_bounded_by_free_running(self, smart_sensor):
        free_running = smart_sensor.measurement_power_w(85.0)
        duty_cycled = smart_sensor.average_power_w(85.0, measurement_rate_hz=100.0)
        assert duty_cycled < free_running

    def test_negative_rate_rejected(self, smart_sensor):
        with pytest.raises(TechnologyError):
            smart_sensor.average_power_w(85.0, measurement_rate_hz=-1.0)
