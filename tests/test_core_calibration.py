"""Unit tests for the calibration schemes."""

import numpy as np
import pytest

from repro.core import (
    CalibrationError,
    LinearCalibration,
    PolynomialCalibration,
    design_calibration,
    fit_polynomial_calibration,
    one_point_calibration,
    two_point_calibration,
)


class TestLinearCalibration:
    def test_round_trip(self):
        calibration = LinearCalibration(slope_c_per_second=1e12, offset_c=-250.0)
        period = 300e-12
        temp = calibration.temperature(period)
        assert calibration.period(temp) == pytest.approx(period)

    def test_zero_slope_rejected(self):
        with pytest.raises(CalibrationError):
            LinearCalibration(slope_c_per_second=0.0, offset_c=0.0)

    def test_nonpositive_period_rejected(self):
        calibration = LinearCalibration(slope_c_per_second=1e12, offset_c=0.0)
        with pytest.raises(CalibrationError):
            calibration.temperature(0.0)

    def test_offset_shift(self):
        calibration = LinearCalibration(slope_c_per_second=1e12, offset_c=-250.0)
        shifted = calibration.with_offset_shift(5.0)
        assert shifted.temperature(300e-12) == pytest.approx(
            calibration.temperature(300e-12) + 5.0
        )


class TestTwoPoint:
    def test_exact_at_calibration_points(self):
        calibration = two_point_calibration([200e-12, 400e-12], [-40.0, 125.0])
        assert calibration.temperature(200e-12) == pytest.approx(-40.0)
        assert calibration.temperature(400e-12) == pytest.approx(125.0)

    def test_interpolates_linearly(self):
        calibration = two_point_calibration([200e-12, 400e-12], [0.0, 100.0])
        assert calibration.temperature(300e-12) == pytest.approx(50.0)

    def test_requires_exactly_two_points(self):
        with pytest.raises(CalibrationError):
            two_point_calibration([1e-12], [0.0])

    def test_requires_distinct_points(self):
        with pytest.raises(CalibrationError):
            two_point_calibration([1e-12, 1e-12], [0.0, 100.0])
        with pytest.raises(CalibrationError):
            two_point_calibration([1e-12, 2e-12], [25.0, 25.0])


class TestOnePoint:
    def test_anchors_offset_at_reference(self):
        calibration = one_point_calibration(300e-12, 25.0, design_slope_c_per_second=1e12)
        assert calibration.temperature(300e-12) == pytest.approx(25.0)
        assert calibration.kind == "one-point"

    def test_requires_nonzero_slope(self):
        with pytest.raises(CalibrationError):
            one_point_calibration(300e-12, 25.0, 0.0)

    def test_requires_positive_period(self):
        with pytest.raises(CalibrationError):
            one_point_calibration(0.0, 25.0, 1e12)


class TestDesignCalibration:
    def test_fits_least_squares_line(self):
        temps = np.linspace(-50.0, 150.0, 11)
        periods = 200e-12 + 1e-12 * (temps + 50.0)
        calibration = design_calibration(periods, temps)
        assert calibration.slope_c_per_second == pytest.approx(1e12, rel=1e-6)
        assert calibration.temperature(250e-12) == pytest.approx(0.0, abs=1e-6)

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(CalibrationError):
            design_calibration([1e-12], [25.0])
        with pytest.raises(CalibrationError):
            design_calibration([1e-12, 1e-12], [0.0, 50.0])


class TestPolynomialCalibration:
    def test_quadratic_fit_recovers_exact_quadratic_relation(self):
        # Data generated so that temperature IS a quadratic in the period;
        # a degree-2 fit must then reproduce it to numerical precision.
        periods = np.linspace(200e-12, 400e-12, 21)
        temps = -60.0 + 0.9e12 * (periods - 200e-12) + 2.0e21 * (periods - 200e-12) ** 2
        calibration = fit_polynomial_calibration(periods, temps, degree=2)
        for temp, period in zip(temps, periods):
            assert calibration.temperature(period) == pytest.approx(temp, abs=1e-6)

    def test_quadratic_correction_beats_linear_on_curved_sensor(self):
        # For a curved period(T) characteristic the polynomial readout
        # leaves a much smaller residual than the best straight line.
        temps = np.linspace(-50.0, 150.0, 21)
        periods = 200e-12 + 1e-12 * (temps + 50.0) + 2e-15 * (temps + 50.0) ** 2
        quadratic = fit_polynomial_calibration(periods, temps, degree=3)
        linear = design_calibration(periods, temps)
        quad_err = max(abs(quadratic.temperature(p) - t) for p, t in zip(periods, temps))
        lin_err = max(abs(linear.temperature(p) - t) for p, t in zip(periods, temps))
        assert quad_err < 0.2 * lin_err

    def test_degree_validation(self):
        with pytest.raises(CalibrationError):
            fit_polynomial_calibration([1e-12, 2e-12, 3e-12], [0.0, 1.0, 2.0], degree=0)
        with pytest.raises(CalibrationError):
            fit_polynomial_calibration([1e-12, 2e-12], [0.0, 1.0], degree=2)

    def test_rejects_nonpositive_period_query(self):
        calibration = PolynomialCalibration(coefficients=(1.0, 2.0))
        with pytest.raises(CalibrationError):
            calibration.temperature(-1e-12)

    def test_degree_property(self):
        assert PolynomialCalibration(coefficients=(1.0, 2.0, 3.0)).degree == 2
