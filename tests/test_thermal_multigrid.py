"""Tests for the geometric-multigrid preconditioner and its CG solves.

Three layers of evidence:

* unit tests on the transfer operators (partition of unity, shapes,
  rejected degenerate extents),
* hypothesis property tests that the V-cycle *is* what CG theory
  requires of it — a symmetric positive-definite linear operator — over
  random grid shapes and backward-Euler shifts, and
* equivalence of the multigrid-CG solves against the sparse-direct
  factorization to the 1e-8 bound the ISSUE pins, on steady,
  multi-RHS and transient workloads, plus the grid-independence of the
  iteration count that justifies routing ``auto`` through multigrid.

The 256x256 full-die run (steady + multi-RHS transient through
``method="auto"`` with sparse-direct factorization forbidden) is in the
slow lane.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from scipy.sparse import diags

from repro.tech import TechnologyError
from repro.thermal import (
    Floorplan,
    GeometricMultigrid,
    PowerMap,
    ThermalGrid,
    ThermalOperator,
)
from repro.thermal.multigrid import (
    COARSE_DIRECT_UNKNOWNS,
    prolongation_1d,
    prolongation_matrix,
)

ITERATIVE_RTOL = 1e-8


def _grid_at(resolution):
    power = PowerMap.from_floorplan(
        Floorplan.example_processor(), nx=resolution, ny=resolution
    )
    return ThermalGrid.for_power_map(power), power


class TestTransferOperators:
    def test_prolongation_rows_are_a_partition_of_unity(self):
        for fine, coarse in [(8, 4), (9, 5), (7, 4), (2, 2), (97, 49)]:
            prolong = prolongation_1d(fine, coarse)
            assert prolong.shape == (fine, coarse)
            assert np.allclose(np.asarray(prolong.sum(axis=1)).ravel(), 1.0)

    def test_prolongation_interpolates_linear_functions(self):
        # Away from the clamped boundary cells, linear interpolation
        # reproduces linear coarse data exactly.
        fine, coarse = 16, 8
        prolong = prolongation_1d(fine, coarse)
        coarse_centers = (np.arange(coarse) + 0.5) / coarse
        fine_centers = (np.arange(fine) + 0.5) / fine
        interpolated = prolong @ coarse_centers
        interior = (fine_centers >= coarse_centers[0]) & (
            fine_centers <= coarse_centers[-1]
        )
        assert np.allclose(interpolated[interior], fine_centers[interior])

    def test_tensor_product_shape(self):
        prolong = prolongation_matrix((9, 7), (5, 4))
        assert prolong.shape == (9 * 7, 5 * 4)
        assert np.allclose(np.asarray(prolong.sum(axis=1)).ravel(), 1.0)

    def test_degenerate_extents_rejected(self):
        with pytest.raises(TechnologyError):
            prolongation_1d(1, 1)
        with pytest.raises(TechnologyError):
            prolongation_1d(8, 1)
        with pytest.raises(TechnologyError):
            prolongation_1d(4, 8)


class TestHierarchyConstruction:
    def test_large_grid_builds_multiple_levels(self):
        grid, _power = _grid_at(48)
        cycle = GeometricMultigrid(grid.conductance_matrix, (48, 48))
        assert cycle.level_count >= 2
        assert cycle.coarse_unknowns <= COARSE_DIRECT_UNKNOWNS

    def test_small_grid_is_a_direct_solve(self):
        grid, power = _grid_at(12)
        cycle = GeometricMultigrid(grid.conductance_matrix, (12, 12))
        assert cycle.level_count == 1
        # Single level == exact solve: the "preconditioned residual" is
        # the true solution.
        from scipy.sparse.linalg import spsolve

        rhs = power.values_w.reshape(-1)
        assert np.allclose(
            cycle(rhs), spsolve(grid.conductance_matrix.tocsc(), rhs), rtol=1e-10
        )

    def test_mismatched_shape_rejected(self):
        grid, _power = _grid_at(12)
        with pytest.raises(TechnologyError):
            GeometricMultigrid(grid.conductance_matrix, (12, 13))

    def test_asymmetric_smoothing_rejected(self):
        grid, _power = _grid_at(12)
        with pytest.raises(TechnologyError):
            GeometricMultigrid(grid.conductance_matrix, (12, 12), pre_smooth=2, post_smooth=1)
        with pytest.raises(TechnologyError):
            GeometricMultigrid(grid.conductance_matrix, (12, 12), pre_smooth=0, post_smooth=0)

    def test_one_cycle_contracts_the_residual(self):
        grid, power = _grid_at(48)
        cycle = GeometricMultigrid(grid.conductance_matrix, (48, 48))
        rhs = power.values_w.reshape(-1)
        residual = rhs - grid.conductance_matrix @ cycle(rhs)
        assert np.linalg.norm(residual) < 0.1 * np.linalg.norm(rhs)

    def test_batched_application_matches_columns(self):
        grid, power = _grid_at(36)
        cycle = GeometricMultigrid(grid.conductance_matrix, (36, 36))
        rhs = power.values_w.reshape(-1)
        stack = np.stack([rhs, 0.25 * rhs, np.zeros_like(rhs)], axis=1)
        block = cycle(stack)
        for k in range(stack.shape[1]):
            assert np.allclose(block[:, k], cycle(stack[:, k]), rtol=1e-12, atol=0.0)


class TestVCyclePropertyBased:
    """The V-cycle is a symmetric positive-definite linear operator.

    This is the load-bearing property: CG with a non-symmetric or
    indefinite preconditioner silently loses its convergence guarantee.
    Grid shapes are drawn to straddle the direct-coarse threshold (both
    one- and multi-level hierarchies) and the matrix is either ``G`` or
    a backward-Euler shift ``C/dt + G``.
    """

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        nx=st.integers(min_value=5, max_value=40),
        ny=st.integers(min_value=5, max_value=40),
        shift=st.sampled_from([None, 1e-2, 1e-3]),
        data_seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_symmetric_and_positive_definite(self, nx, ny, shift, data_seed):
        grid = ThermalGrid(8.0, 8.0, nx, ny)
        matrix = grid.conductance_matrix
        if shift is not None:
            matrix = diags(grid.capacitance_vector / shift) + matrix
        cycle = GeometricMultigrid(matrix, (ny, nx))
        rng = np.random.default_rng(data_seed)
        u = rng.standard_normal(nx * ny)
        v = rng.standard_normal(nx * ny)
        left = u @ cycle(v)
        right = v @ cycle(u)
        scale = max(abs(left), abs(right), 1e-30)
        assert abs(left - right) / scale < 1e-9
        assert v @ cycle(v) > 0.0
        assert u @ cycle(u) > 0.0

    @settings(max_examples=6, deadline=None)
    @given(
        resolution=st.integers(min_value=33, max_value=48),
        data_seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_multilevel_hierarchies_stay_symmetric(self, resolution, data_seed):
        # Above COARSE_DIRECT_UNKNOWNS the cycle recurses; symmetry must
        # survive the restriction/prolongation round trip.
        grid = ThermalGrid(8.0, 8.0, resolution, resolution)
        cycle = GeometricMultigrid(grid.conductance_matrix, (resolution, resolution))
        assert cycle.level_count >= 2
        rng = np.random.default_rng(data_seed)
        u = rng.standard_normal(resolution * resolution)
        v = rng.standard_normal(resolution * resolution)
        left, right = u @ cycle(v), v @ cycle(u)
        assert abs(left - right) / max(abs(left), abs(right)) < 1e-9


class TestMultigridSolves:
    """Multigrid-CG against the sparse-direct factorization (<= 1e-8)."""

    @pytest.fixture(scope="class", params=[48, 96])
    def grid_and_power(self, request):
        return _grid_at(request.param)

    def test_steady_agrees_with_direct(self, grid_and_power):
        grid, power = grid_and_power
        rhs = power.values_w.reshape(-1)
        direct = ThermalOperator(grid, method="direct").steady_rise(rhs)
        multigrid = ThermalOperator(grid, method="multigrid").steady_rise(rhs)
        assert np.max(np.abs(multigrid - direct) / np.abs(direct)) <= ITERATIVE_RTOL

    def test_multi_rhs_agrees_with_direct(self, grid_and_power):
        grid, power = grid_and_power
        rhs = power.values_w.reshape(-1)
        stack = np.stack([rhs, 0.25 * rhs, np.zeros_like(rhs), 2.0 * rhs], axis=1)
        direct = ThermalOperator(grid, method="direct").steady_rise(stack)
        multigrid = ThermalOperator(grid, method="multigrid").steady_rise(stack)
        assert multigrid.shape == stack.shape
        # The zero column must come back exactly zero, not noise.
        assert np.array_equal(multigrid[:, 2], np.zeros(rhs.size))
        nonzero = [0, 1, 3]
        assert (
            np.max(np.abs(multigrid[:, nonzero] - direct[:, nonzero]) / np.abs(direct[:, nonzero]))
            <= ITERATIVE_RTOL
        )

    def test_transient_stepping_agrees_with_direct(self, grid_and_power):
        grid, power = grid_and_power
        rhs = power.values_w.reshape(-1)
        direct = ThermalOperator(grid, method="direct").stepper(0.01)
        multigrid = ThermalOperator(grid, method="multigrid").stepper(0.01)
        rise_d = np.zeros(grid.nx * grid.ny)
        rise_m = np.zeros(grid.nx * grid.ny)
        for _ in range(20):
            rise_d = direct.step(rise_d, rhs)
            rise_m = multigrid.step(rise_m, rhs)
            assert np.max(np.abs(rise_m - rise_d) / np.abs(rise_d)) <= ITERATIVE_RTOL

    def test_block_matches_column_loop(self, grid_and_power):
        grid, power = grid_and_power
        rhs = power.values_w.reshape(-1)
        solve = ThermalOperator(grid, method="multigrid").steady_solve()
        stack = np.stack([rhs, 0.5 * rhs, 1.5 * rhs], axis=1)
        block = solve(stack)
        loop = solve.solve_columns_loop(stack)
        assert np.allclose(block, loop, rtol=1e-6, atol=0.0)

    def test_iteration_count_is_grid_independent(self):
        # The whole point of the multigrid preconditioner: CG converges
        # in essentially the same handful of iterations at every
        # resolution, where ILU's count grows with the grid.
        counts = {}
        for resolution in (48, 96):
            grid, power = _grid_at(resolution)
            solve = ThermalOperator(grid, method="multigrid").steady_solve()
            solve(power.values_w.reshape(-1))
            counts[resolution] = solve.last_iterations
        assert all(0 < count <= 25 for count in counts.values())
        assert abs(counts[96] - counts[48]) <= 5


@pytest.mark.slow
class TestFullDieAutoRouting:
    """256x256: ``auto`` must serve the full die without factorizing."""

    def test_steady_and_transient_without_direct_factorization(self, monkeypatch):
        import repro.thermal.operator as operator_module

        def forbidden(*_args, **_kwargs):  # pragma: no cover - failure path
            raise AssertionError(
                "auto routed a full-die solve through the direct factorization"
            )

        # The multigrid coarse solve imports factorized separately (in
        # repro.thermal.multigrid), so only the operator's direct path
        # is forbidden here.
        monkeypatch.setattr(operator_module, "factorized", forbidden)
        ThermalOperator.clear_cache()
        grid, power = _grid_at(256)
        operator = ThermalOperator.for_grid(grid)
        assert operator.method == "multigrid"

        # Steady state: the mean rise over a uniform-conductance die is
        # pinned by energy conservation to R_ja * P_total.
        rise = operator.steady_rise(power.values_w.reshape(-1))
        expected = grid.junction_to_ambient_resistance_k_per_w() * power.total_power_w()
        assert np.mean(rise) == pytest.approx(expected, rel=1e-6)
        assert rise.min() > 0.0

        # Multi-RHS transient: an (n, 4) stack of workload scalings
        # advances through one block solve per step and stays ordered
        # by power.
        stack = np.stack(
            [scale * power.values_w.reshape(-1) for scale in (0.5, 1.0, 1.5, 2.0)],
            axis=1,
        )
        stepper = operator.stepper(1e-2)
        state = np.zeros_like(stack)
        for _ in range(5):
            state = stepper.step(state, stack)
        means = state.mean(axis=0)
        assert np.all(np.diff(means) > 0.0)
        # Columns scale linearly with the power scaling (linear system).
        assert np.allclose(state[:, 1] * 2.0, state[:, 3], rtol=1e-6)
        ThermalOperator.clear_cache()
