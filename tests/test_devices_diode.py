"""Unit tests for the thermal-diode model (baseline sensor substrate)."""

import pytest

from repro.devices import DiodeModel, DiodeParameters
from repro.tech import TechnologyError, celsius_to_kelvin


class TestDiodeParameters:
    def test_defaults_valid(self):
        params = DiodeParameters()
        assert params.ideality >= 1.0

    def test_rejects_nonpositive_saturation_current(self):
        with pytest.raises(TechnologyError):
            DiodeParameters(saturation_current_a=0.0)

    def test_rejects_subunity_ideality(self):
        with pytest.raises(TechnologyError):
            DiodeParameters(ideality=0.9)


class TestSaturationCurrent:
    def test_reference_value(self):
        model = DiodeModel()
        assert model.saturation_current(model.params.reference_temperature_k) == pytest.approx(
            model.params.saturation_current_a
        )

    def test_strongly_increases_with_temperature(self):
        model = DiodeModel()
        # Roughly a decade every 10-12 K for silicon.
        ratio = model.saturation_current(310.0) / model.saturation_current(300.0)
        assert 2.0 < ratio < 6.0

    def test_rejects_nonpositive_temperature(self):
        with pytest.raises(TechnologyError):
            DiodeModel().saturation_current(-5.0)


class TestForwardVoltage:
    def test_room_temperature_forward_voltage(self):
        model = DiodeModel()
        voltage = model.forward_voltage(10e-6, 300.0)
        assert 0.4 < voltage < 0.75

    def test_negative_temperature_coefficient(self):
        # The classic ~-2 mV/K slope of a forward-biased junction.
        model = DiodeModel()
        slope = (model.forward_voltage(10e-6, 310.0) - model.forward_voltage(10e-6, 300.0)) / 10.0
        assert -2.6e-3 < slope < -1.2e-3

    def test_rejects_nonpositive_current(self):
        with pytest.raises(TechnologyError):
            DiodeModel().forward_voltage(0.0, 300.0)

    def test_celsius_wrapper_consistent(self):
        model = DiodeModel()
        assert model.forward_voltage_celsius(10e-6, 25.0) == pytest.approx(
            model.forward_voltage(10e-6, celsius_to_kelvin(25.0))
        )


class TestDeltaVbe:
    def test_positive_and_ptat(self):
        model = DiodeModel()
        cold = model.delta_vbe(5e-6, 80e-6, 250.0)
        hot = model.delta_vbe(5e-6, 80e-6, 400.0)
        assert 0.0 < cold < hot

    def test_proportional_to_absolute_temperature(self):
        # PTAT proportionality holds while the bias currents stay far
        # above the saturation current (true over the sensing range).
        model = DiodeModel(DiodeParameters(series_resistance_ohm=0.0))
        v250 = model.delta_vbe(5e-6, 80e-6, 250.0)
        v375 = model.delta_vbe(5e-6, 80e-6, 375.0)
        assert v375 == pytest.approx(1.5 * v250, rel=1e-3)

    def test_requires_distinct_currents(self):
        with pytest.raises(TechnologyError):
            DiodeModel().delta_vbe(10e-6, 10e-6, 300.0)

    def test_inversion_recovers_temperature(self):
        model = DiodeModel(DiodeParameters(series_resistance_ohm=0.0))
        temp_k = 350.0
        delta = model.delta_vbe(5e-6, 80e-6, temp_k)
        recovered = model.temperature_from_delta_vbe(delta, 5e-6, 80e-6)
        assert recovered == pytest.approx(temp_k, rel=1e-6)

    def test_inversion_rejects_nonpositive_voltage(self):
        with pytest.raises(TechnologyError):
            DiodeModel().temperature_from_delta_vbe(0.0, 5e-6, 80e-6)
