"""Transistor-level validation of the ring oscillator (slow tests).

These exercise the full MNA transient path on real ring netlists, so the
count is kept small; they pin down the facts the paper's Fig. 1 shows
and the consistency between the simulated and analytical period models.
"""

import pytest

from repro.oscillator import RingConfiguration, RingOscillator, simulated_response
from repro.tech import CMOS035

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def simulated_waveform(inverter_ring_module):
    return inverter_ring_module.simulate(27.0, cycles=5.0, points_per_period=150)


@pytest.fixture(scope="module")
def inverter_ring_module(request):
    from repro.cells import default_library

    library = default_library(CMOS035)
    return RingOscillator(library, RingConfiguration.uniform("INV", 5))


class TestRingSimulation:
    def test_oscillation_is_rail_to_rail(self, simulated_waveform):
        assert simulated_waveform.is_oscillating(supply=CMOS035.vdd)
        assert simulated_waveform.amplitude() > 0.9 * CMOS035.vdd

    def test_simulated_period_within_factor_of_analytical(
        self, simulated_waveform, inverter_ring_module
    ):
        simulated = simulated_waveform.period(threshold=0.5 * CMOS035.vdd, skip_cycles=2)
        analytical = inverter_ring_module.period(27.0)
        assert simulated == pytest.approx(analytical, rel=0.6)

    @pytest.fixture(scope="class")
    def simulated_sweep(self, inverter_ring_module):
        return simulated_response(
            inverter_ring_module, [-25.0, 50.0, 125.0], cycles=6.0, points_per_period=150
        )

    def test_simulated_period_increases_with_temperature(self, simulated_sweep):
        assert simulated_sweep.is_monotonic()

    def test_simulated_and_analytical_sensitivity_agree_in_sign_and_scale(
        self, simulated_sweep, inverter_ring_module
    ):
        sim_sens = (simulated_sweep.periods_s[-1] - simulated_sweep.periods_s[0]) / 150.0
        ana_sens = (
            inverter_ring_module.period(125.0) - inverter_ring_module.period(-25.0)
        ) / 150.0
        assert sim_sens > 0.0
        # Relative (percent-per-kelvin) sensitivities must agree within 2x.
        sim_rel = sim_sens / simulated_sweep.periods_s.mean()
        ana_rel = ana_sens / (
            (inverter_ring_module.period(125.0) + inverter_ring_module.period(-25.0)) / 2.0
        )
        assert sim_rel == pytest.approx(ana_rel, rel=1.0)
