"""Tests for the FIG1 experiment and the command-line runner."""

import os

import pytest

from repro.experiments import run_all, run_fig1
from repro.experiments.runner import main
from repro.tech import CMOS035


@pytest.fixture(scope="module")
def fig1_result():
    # Small settings keep the transient affordable inside the unit suite.
    return run_fig1(CMOS035, cycles=3.0, points_per_period=100)


class TestFig1Experiment:
    def test_ring_oscillates_rail_to_rail(self, fig1_result):
        assert fig1_result.oscillates
        assert fig1_result.waveform.amplitude() > 0.9 * CMOS035.vdd

    def test_periods_in_expected_range(self, fig1_result):
        assert 50e-12 < fig1_result.analytical_period_s < 1e-9
        assert 50e-12 < fig1_result.simulated_period_s < 2e-9

    def test_simulated_tracks_analytical(self, fig1_result):
        assert fig1_result.period_mismatch_rel < 0.6

    def test_summary_mentions_periods(self, fig1_result):
        text = fig1_result.format_summary()
        assert "analytical period" in text
        assert "simulated period" in text

    def test_stage_count_recorded(self, fig1_result):
        assert fig1_result.stage_count == 5


class TestRunnerCli:
    def test_main_writes_report_file(self, tmp_path):
        output = tmp_path / "report.txt"
        exit_code = main(
            [
                "--technology",
                "cmos035",
                "--experiment",
                "STAGES",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        content = output.read_text()
        assert "STAGES" in content
        assert "cmos035" in content

    def test_main_prints_to_stdout(self, capsys):
        exit_code = main(["--experiment", "STAGES"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "STAGES - linearity vs number of stages" in captured.out

    def test_main_rejects_unknown_technology(self):
        from repro.tech import TechnologyError

        with pytest.raises(TechnologyError):
            main(["--technology", "cmos007", "--experiment", "STAGES"])

    def test_run_all_report_header(self):
        report = run_all(CMOS035, only=["STAGES", "EXT-SUPPLY"])
        assert report.startswith("Reproduction report")
        assert "EXT-SUPPLY" in report

    def test_main_list_prints_experiment_ids(self, capsys):
        from repro.experiments.runner import default_registry

        exit_code = main(["--list"])
        assert exit_code == 0
        listed = capsys.readouterr().out.split()
        assert listed == default_registry().names()

    def test_main_rejects_unknown_experiment_with_argparse_error(self, capsys):
        # An unknown id must die as a friendly argparse error (exit code
        # 2 with the available ids), not as a KeyError inside run_all.
        with pytest.raises(SystemExit) as excinfo:
            main(["--experiment", "FIG99"])
        assert excinfo.value.code == 2
        message = capsys.readouterr().err
        assert "FIG99" in message
        assert "FIG2" in message  # the available ids are listed
