"""Tests for the declarative sweep API and the stacked configuration axis.

Three concerns, matching the PR's acceptance criteria:

* :class:`~repro.engine.sweep.SweepResult` is a faithful labeled
  container — property-based round trips prove that axis names and
  coordinates survive ``select`` / ``isel`` / ``squeeze``;
* the configuration axis is *correct* — the single ``(C, S, T)``
  broadcast of :class:`~repro.oscillator.bank.ConfigurationBank` is
  pinned to the retained per-configuration loop (and through it to the
  scalar oracle) at 1e-9 relative on all ``PAPER_FIG3_CONFIGURATIONS``;
* the planner lowers every axis combination onto the same numbers the
  pre-sweep entry points produced.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.linearity import nonlinearity
from repro.cells import default_library
from repro.engine import Axis, BatchEvaluator, Sweep, SweepError, SweepResult
from repro.oscillator import (
    PAPER_FIG3_CONFIGURATIONS,
    ConfigurationBank,
    RingConfiguration,
    RingOscillator,
)
from repro.oscillator.period import TemperatureResponse
from repro.tech import CMOS035, sample_technology_array

#: The acceptance bound on broadcast-vs-loop relative period error.
RTOL = 1e-9

DEFAULT_SETTINGS = dict(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def relative_error(a, b):
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return float(np.max(np.abs(a - b) / np.abs(b)))


# --------------------------------------------------------------------------- #
# SweepResult: property-based label round trips
# --------------------------------------------------------------------------- #

_axis_names = st.permutations(
    ["configuration", "width_ratio", "supply", "sample", "temperature"]
).map(tuple)


@st.composite
def labeled_results(draw):
    """A random SweepResult with unique labels on every axis."""
    name_count = draw(st.integers(min_value=1, max_value=4))
    names = draw(_axis_names)[:name_count]
    # Canonical order is part of the contract the planner upholds, but
    # the container itself accepts any order; exercise both.
    coords = {}
    shape = []
    for name in names:
        size = draw(st.integers(min_value=1, max_value=4))
        labels = tuple(f"{name}-{i}" for i in range(size))
        coords[name] = labels
        shape.append(size)
    values = np.arange(int(np.prod(shape)), dtype=float).reshape(shape)
    return SweepResult(values=values, dims=tuple(names), coords=coords)


@given(result=labeled_results(), data=st.data())
@settings(**DEFAULT_SETTINGS)
def test_select_round_trip_preserves_labels_and_values(result, data):
    # Selecting one coordinate from one axis drops exactly that axis,
    # keeps every other axis's labels intact, and slices the values.
    name = data.draw(st.sampled_from(result.dims))
    index = data.draw(
        st.integers(min_value=0, max_value=len(result.coords[name]) - 1)
    )
    label = result.coords[name][index]
    selected = result.select(**{name: label})
    assert name not in selected.dims
    for other in selected.dims:
        assert selected.coords[other] == result.coords[other]
    assert np.array_equal(
        selected.values, np.take(result.values, index, axis=result.axis_index(name))
    )
    # Subset selection (list form) keeps the axis and its label order.
    subset = result.select(**{name: [label]})
    assert subset.coords[name] == (label,)
    assert subset.dims == result.dims


@given(result=labeled_results())
@settings(**DEFAULT_SETTINGS)
def test_squeeze_round_trip_preserves_labels(result):
    squeezed = result.squeeze()
    kept = [name for name in result.dims if len(result.coords[name]) != 1]
    assert list(squeezed.dims) == kept
    for name in squeezed.dims:
        assert squeezed.coords[name] == result.coords[name]
    assert squeezed.values.size == result.values.size
    assert np.array_equal(squeezed.values.ravel(), result.values.ravel())


@given(result=labeled_results())
@settings(**DEFAULT_SETTINGS)
def test_isel_and_select_agree(result):
    name = result.dims[0]
    by_index = result.isel(**{name: 0})
    by_label = result.select(**{name: result.coords[name][0]})
    assert by_index.dims == by_label.dims
    assert by_index.coords == by_label.coords
    assert np.array_equal(by_index.values, by_label.values)


@given(result=labeled_results())
@settings(**DEFAULT_SETTINGS)
def test_to_tree_depth_matches_dims(result):
    tree = result.to_tree()
    node = tree
    for name in result.dims:
        assert set(node.keys()) == set(result.coords[name])
        node = node[result.coords[name][0]]
    assert isinstance(node, float)


@given(result=labeled_results())
@settings(**DEFAULT_SETTINGS)
def test_to_dict_from_dict_round_trip(result):
    rebuilt = SweepResult.from_dict(result.to_dict())
    assert rebuilt.dims == result.dims
    assert rebuilt.coords == result.coords
    assert rebuilt.observable == result.observable
    assert rebuilt.values.dtype == result.values.dtype
    assert np.array_equal(rebuilt.values, result.values)


def test_duplicate_coordinate_labels_rejected():
    with pytest.raises(SweepError, match="duplicate"):
        SweepResult(
            values=np.zeros(2),
            dims=("temperature",),
            coords={"temperature": (25.0, 25.0)},
        )


def test_from_dict_rejects_bad_payloads():
    result = SweepResult(
        values=np.arange(3, dtype=float),
        dims=("temperature",),
        coords={"temperature": (0.0, 25.0, 50.0)},
    )
    payload = result.to_dict()
    with pytest.raises(SweepError, match="version"):
        SweepResult.from_dict({**payload, "version": 999})
    incomplete = dict(payload)
    del incomplete["coords"]
    with pytest.raises(SweepError, match="coords"):
        SweepResult.from_dict(incomplete)
    with pytest.raises(SweepError, match="mapping"):
        SweepResult.from_dict([payload])


def test_select_ambiguous_close_float_labels_raise():
    # Two distinct float coordinates, both within the isclose fallback's
    # tolerance of the queried label (which matches neither exactly):
    # selection must refuse to silently pick the first.
    result = SweepResult(
        values=np.arange(2, dtype=float),
        dims=("temperature",),
        coords={"temperature": (25.0 + 1e-12, 25.0 + 2e-12)},
    )
    with pytest.raises(SweepError, match="ambiguous"):
        result.select(temperature=25.0)
    # An exact match stays unambiguous, and positional selection works.
    assert result.select(temperature=25.0 + 2e-12).values == 1.0
    assert result.isel(temperature=1).values == 1.0


def test_select_unknown_label_raises():
    result = SweepResult(
        values=np.zeros((2,)), dims=("supply",), coords={"supply": (3.3, 3.0)}
    )
    with pytest.raises(SweepError):
        result.select(supply=5.0)
    with pytest.raises(SweepError):
        result.select(temperature=25.0)
    assert result.select(supply=3.3 + 1e-14).values.shape == ()


def test_mismatched_coords_rejected():
    with pytest.raises(SweepError):
        SweepResult(
            values=np.zeros((2, 3)),
            dims=("supply", "temperature"),
            coords={"supply": (3.3, 3.0), "temperature": (0.0, 1.0)},
        )


# --------------------------------------------------------------------------- #
# the configuration axis: golden (C, S, T) equivalence pin
# --------------------------------------------------------------------------- #


class TestConfigurationAxisGolden:
    """The acceptance pin: the single (C, S, T) broadcast matches the
    retained per-configuration loop to <= 1e-9 relative on all of the
    paper's Fig. 3 configurations."""

    @pytest.fixture(scope="class")
    def bank(self):
        return ConfigurationBank(
            default_library(CMOS035), PAPER_FIG3_CONFIGURATIONS
        )

    @pytest.fixture(scope="class")
    def temps(self):
        return np.linspace(-50.0, 150.0, 41)

    @pytest.fixture(scope="class")
    def population(self):
        return sample_technology_array(CMOS035, 50, seed=20250727)

    def test_scalar_technology_matrix(self, bank, temps):
        assert relative_error(
            bank.period_tensor(temps), bank.period_tensor_loop(temps)
        ) <= RTOL

    def test_full_cross_product_tensor(self, bank, temps, population):
        tensor = bank.period_tensor(temps, technologies=population)
        loop = bank.period_tensor_loop(temps, technologies=population)
        assert tensor.shape == (len(PAPER_FIG3_CONFIGURATIONS), 50, temps.size)
        assert relative_error(tensor, loop) <= RTOL

    def test_loop_rows_match_scalar_oracle(self, bank, temps):
        # Anchors the loop itself to the pre-engine scalar path, so the
        # tensor pin above transitively reaches the original oracle.
        tensor = bank.period_tensor(temps)
        for row, ring in enumerate(bank.rings()):
            assert relative_error(
                tensor[row], ring.period_series_scalar(temps)
            ) <= RTOL

    def test_bank_structure(self, bank):
        assert len(bank) == len(PAPER_FIG3_CONFIGURATIONS)
        assert bank.labels == tuple(PAPER_FIG3_CONFIGURATIONS)
        assert bank.validity_mask().all()  # all Fig. 3 rings are 5-stage
        assert bank.cell_table().shape == (len(bank), 5)

    def test_padded_mixed_stage_counts(self):
        bank = ConfigurationBank(
            default_library(CMOS035), ["3INV", "5NAND2", "2INV+3NOR2"]
        )
        mask = bank.validity_mask()
        assert mask.shape == (3, 5)
        assert mask[0].sum() == 3 and mask[1].sum() == 5
        temps = np.linspace(-40.0, 120.0, 9)
        assert relative_error(
            bank.period_tensor(temps), bank.period_tensor_loop(temps)
        ) <= RTOL

    def test_duplicate_labels_rejected(self):
        from repro.oscillator import ConfigurationError

        with pytest.raises(ConfigurationError):
            ConfigurationBank(default_library(CMOS035), ["5INV", "5INV"])


# --------------------------------------------------------------------------- #
# the planner: lowering equivalences
# --------------------------------------------------------------------------- #


ring_cells = st.sampled_from(["INV", "NAND2", "NAND3", "NOR2", "NOR3"])

configurations = (
    st.integers(min_value=1, max_value=2)
    .map(lambda n: 2 * n + 1)
    .flatmap(lambda count: st.lists(ring_cells, min_size=count, max_size=count))
    .map(lambda stages: RingConfiguration(tuple(stages)))
)


@given(
    configs=st.lists(configurations, min_size=1, max_size=4, unique_by=lambda c: c.label()),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_sweep_configuration_axis_matches_per_config_loop(configs, seed):
    temps = np.linspace(-50.0, 150.0, 7)
    population = sample_technology_array(CMOS035, 3, seed=seed)
    library = default_library(CMOS035)
    result = (
        Sweep(library=library)
        .over(Axis.configuration(configs))
        .over(Axis.sample(population))
        .over(Axis.temperature(temps))
        .run()
    )
    assert result.dims == ("configuration", "sample", "temperature")
    for config in configs:
        ring = RingOscillator(library, config)
        assert relative_error(
            result.select(configuration=config.label()).values,
            ring.period_matrix_loop(population, temps),
        ) <= RTOL


def test_sweep_single_ring_is_bitwise_period_series(mixed_ring):
    temps = np.linspace(-50.0, 150.0, 21)
    result = Sweep(ring=mixed_ring).over(Axis.temperature(temps)).run()
    assert np.array_equal(result.values, mixed_ring.period_series(temps))
    assert result.coordinates("temperature") == tuple(temps)


def test_sweep_sample_axis_is_bitwise_period_matrix(mixed_ring):
    temps = np.linspace(-20.0, 120.0, 8)
    population = sample_technology_array(CMOS035, 5, seed=11)
    result = (
        Sweep(ring=mixed_ring)
        .over(Axis.sample(population))
        .over(Axis.temperature(temps))
        .run()
    )
    assert np.array_equal(result.values, mixed_ring.period_matrix(population, temps))


def test_supply_sample_cross_product_matches_manual_rebind(mixed_ring):
    temps = np.asarray([-25.0, 25.0, 100.0])
    population = sample_technology_array(CMOS035, 4, seed=2)
    supplies = (3.3, 3.6)
    result = (
        Sweep(ring=mixed_ring)
        .over(Axis.supply(supplies))
        .over(Axis.sample(population))
        .over(Axis.temperature(temps))
        .run()
    )
    assert result.dims == ("supply", "sample", "temperature")
    for supply in supplies:
        for index in range(len(population)):
            tech = population.technology_at(index).with_supply(supply)
            reference = mixed_ring.rebind(tech).period_series(temps)
            observed = result.select(supply=supply, sample=index).values
            assert relative_error(observed, reference) <= RTOL


def test_observables_match_analysis_layer(mixed_ring):
    temps = np.linspace(-50.0, 150.0, 9)
    periods = mixed_ring.period_series(temps)
    response = TemperatureResponse(mixed_ring.label(), temps, periods)
    base = Sweep(ring=mixed_ring).over(Axis.temperature(temps))
    errors = base.observe("nonlinearity_percent").run()
    assert np.allclose(
        errors.values,
        nonlinearity(response).error_percent,
        rtol=1e-12,
        atol=0.0,
    )
    transfer = base.observe("transfer_c").run()
    cal_error = base.observe("calibration_error_c").run()
    # The two-point-calibrated transfer curve passes exactly through the
    # endpoint temperatures, and its error is transfer minus truth.
    assert transfer.values[0] == pytest.approx(temps[0])
    assert transfer.values[-1] == pytest.approx(temps[-1])
    assert np.allclose(cal_error.values, transfer.values - temps, rtol=0, atol=1e-12)
    frequency = base.observe("frequency").run()
    assert np.allclose(frequency.values, 1.0 / periods, rtol=1e-15, atol=0.0)


def test_default_temperature_axis_is_implicit(mixed_ring):
    from repro.oscillator.period import default_temperature_grid

    result = Sweep(ring=mixed_ring).run()
    assert result.dims == ("temperature",)
    assert result.coordinates("temperature") == tuple(default_temperature_grid())


def test_observables_are_grid_order_invariant(mixed_ring):
    # The temperature axis documents ordering as presentation-only, so
    # the endpoint observables must anchor at the extreme temperatures,
    # not the grid's first/last positions.
    sorted_grid = np.asarray([-50.0, 25.0, 150.0])
    shuffled = np.asarray([25.0, 150.0, -50.0])
    base = Sweep(ring=mixed_ring)
    reference = (
        Sweep(ring=mixed_ring)
        .over(Axis.temperature(sorted_grid))
        .observe("nonlinearity_percent")
        .run()
    )
    shuffled_result = (
        base.over(Axis.temperature(shuffled)).observe("nonlinearity_percent").run()
    )
    for temp in sorted_grid:
        assert shuffled_result.select(temperature=temp).item() == pytest.approx(
            reference.select(temperature=temp).item(), rel=1e-12, abs=1e-15
        )


def test_supply_with_unstackable_samples_falls_back_to_loop():
    # Mixed technology nodes cannot stack (different geometry scalars);
    # the supply x sample cross product must fall back to the
    # per-sample loop instead of crashing.
    from repro.tech import CMOS025

    result = (
        Sweep(configuration="5INV")
        .over(Axis.supply([3.3, 3.0]))
        .over(Axis.sample([CMOS035, CMOS025]))
        .over(Axis.temperature([0.0, 50.0, 100.0]))
        .run()
    )
    assert result.shape == (2, 2, 3)
    # The fallback keeps the sweep's base ring (built in the default
    # technology) and rebinds it per sample, exactly like period_matrix.
    base_ring = RingOscillator(
        default_library(CMOS035), RingConfiguration.uniform("INV", 5)
    )
    reference = base_ring.rebind(CMOS025.with_supply(3.0)).period_series(
        np.asarray([0.0, 50.0, 100.0])
    )
    assert relative_error(
        result.select(supply=3.0, sample=1).values, reference
    ) <= RTOL


def test_invalid_axis_combinations_rejected(mixed_ring):
    with pytest.raises(SweepError):
        (
            Sweep(technology=CMOS035)
            .over(Axis.configuration(["5INV"]))
            .over(Axis.width_ratio([2.0]))
            .run()
        )
    with pytest.raises(SweepError):
        Sweep(ring=mixed_ring).over(Axis.width_ratio([2.0])).run()
    with pytest.raises(SweepError):
        # Accepting ring= here would silently drop the ring's tap load
        # and configuration in favour of the Sweep defaults.
        Sweep(ring=mixed_ring).over(Axis.configuration(["5INV"])).run()
    with pytest.raises(SweepError):
        Axis.configuration(["5INV", "5INV"])  # duplicate labels
    with pytest.raises(SweepError):
        Sweep(technology=CMOS035).run()  # no configuration anywhere
    sweep = Sweep(ring=mixed_ring).over(Axis.temperature([0.0, 50.0]))
    with pytest.raises(SweepError):
        sweep.over(Axis.temperature([25.0]))
    with pytest.raises(SweepError):
        sweep.observe("voltage")
    with pytest.raises(SweepError):
        Axis("process_corner", ("tt",))


# --------------------------------------------------------------------------- #
# the compat façade stays equivalent through the sweep lowering
# --------------------------------------------------------------------------- #


def test_batch_evaluator_period_series_adapts_to_sweep(mixed_ring):
    temps = np.linspace(-50.0, 150.0, 13)
    assert np.array_equal(
        BatchEvaluator().period_series(mixed_ring, temps),
        mixed_ring.period_series(temps),
    )
    assert np.array_equal(
        BatchEvaluator(vectorized=False).period_series(mixed_ring, temps),
        mixed_ring.period_series_scalar(temps),
    )


def test_batch_evaluator_period_matrix_adapts_to_sweep(mixed_ring):
    temps = np.linspace(-50.0, 150.0, 5)
    population = sample_technology_array(CMOS035, 3, seed=9)
    assert np.array_equal(
        BatchEvaluator().period_matrix(mixed_ring, population, temps),
        mixed_ring.period_matrix(population, temps),
    )
