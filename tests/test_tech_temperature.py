"""Unit tests for repro.tech.temperature (PVT physics)."""

import pytest

from repro.tech import CMOS035
from repro.tech.parameters import T_NOMINAL_K, TechnologyError
from repro.tech.temperature import (
    alpha_at,
    device_at,
    device_at_celsius,
    mobility_at,
    saturation_velocity_at,
    thermal_voltage,
    threshold_voltage_at,
)


NMOS = CMOS035.nmos
PMOS = CMOS035.pmos


class TestMobility:
    def test_equals_nominal_at_reference(self):
        assert mobility_at(NMOS, T_NOMINAL_K) == pytest.approx(NMOS.mobility)

    def test_decreases_with_temperature(self):
        cold = mobility_at(NMOS, 250.0)
        hot = mobility_at(NMOS, 400.0)
        assert cold > NMOS.mobility > hot

    def test_power_law_exponent(self):
        ratio = mobility_at(NMOS, 2.0 * T_NOMINAL_K) / NMOS.mobility
        assert ratio == pytest.approx(2.0 ** (-NMOS.mobility_temp_exponent), rel=1e-9)

    def test_rejects_nonpositive_temperature(self):
        with pytest.raises(TechnologyError):
            mobility_at(NMOS, 0.0)
        with pytest.raises(TechnologyError):
            mobility_at(NMOS, -10.0)


class TestThresholdVoltage:
    def test_equals_nominal_at_reference(self):
        assert threshold_voltage_at(NMOS, T_NOMINAL_K) == pytest.approx(NMOS.vth0)

    def test_decreases_with_temperature(self):
        assert threshold_voltage_at(NMOS, 400.0) < NMOS.vth0
        assert threshold_voltage_at(NMOS, 250.0) > NMOS.vth0

    def test_linear_slope_matches_coefficient(self):
        delta = threshold_voltage_at(NMOS, T_NOMINAL_K) - threshold_voltage_at(
            NMOS, T_NOMINAL_K + 100.0
        )
        assert delta == pytest.approx(100.0 * NMOS.vth_temp_coeff, rel=1e-9)

    def test_clamped_to_positive_floor(self):
        extreme = threshold_voltage_at(NMOS, 1000.0)
        assert extreme >= 0.05


class TestSaturationVelocityAndAlpha:
    def test_vsat_decreases_with_temperature(self):
        assert saturation_velocity_at(NMOS, 400.0) < NMOS.vsat_cm_per_s

    def test_vsat_never_collapses(self):
        assert saturation_velocity_at(NMOS, 5000.0) > 0.0

    def test_alpha_increases_with_temperature(self):
        assert alpha_at(NMOS, 400.0) >= alpha_at(NMOS, 250.0)

    def test_alpha_clamped_to_square_law(self):
        params = NMOS.scaled(alpha=1.95, alpha_temp_coeff=0.01)
        assert alpha_at(params, 500.0) == pytest.approx(2.0)


class TestThermalVoltage:
    def test_room_temperature_value(self):
        assert thermal_voltage(300.0) == pytest.approx(0.02585, rel=1e-3)

    def test_proportional_to_temperature(self):
        assert thermal_voltage(600.0) == pytest.approx(2.0 * thermal_voltage(300.0))


class TestDeviceSnapshot:
    def test_snapshot_consistent_with_scalar_functions(self):
        device = device_at(PMOS, 350.0)
        assert device.vth == pytest.approx(threshold_voltage_at(PMOS, 350.0))
        assert device.mobility == pytest.approx(mobility_at(PMOS, 350.0))
        assert device.alpha == pytest.approx(alpha_at(PMOS, 350.0))

    def test_celsius_wrapper(self):
        device = device_at_celsius(NMOS, 25.0)
        assert device.temperature_k == pytest.approx(298.15)
        assert device.temperature_c == pytest.approx(25.0)

    def test_transconductance_tracks_mobility(self):
        cold = device_at(NMOS, 250.0)
        hot = device_at(NMOS, 400.0)
        assert cold.process_transconductance > hot.process_transconductance

    def test_polarity_preserved(self):
        assert device_at(PMOS, 300.0).polarity == "pmos"


class TestDelayRelevantBehaviour:
    """The physics that makes the ring oscillator a temperature sensor."""

    def test_nmos_drive_factor_decreases_with_temperature(self):
        # The composite mu(T) * (Vdd - Vth(T))^alpha must decrease with
        # temperature at 3.3 V (mobility dominates) — this is why delay
        # rises and the sensor works.
        def drive(temp_k: float) -> float:
            device = device_at(NMOS, temp_k)
            return device.mobility * (CMOS035.vdd - device.vth) ** device.alpha

        assert drive(250.0) > drive(300.0) > drive(400.0)

    def test_pmos_drive_factor_decreases_with_temperature(self):
        def drive(temp_k: float) -> float:
            device = device_at(PMOS, temp_k)
            return device.mobility * (CMOS035.vdd - device.vth) ** device.alpha

        assert drive(250.0) > drive(300.0) > drive(400.0)
