"""Unit tests for the analytical delay and load models."""

import pytest

from repro.delay import (
    DelayModelOptions,
    DriveNetwork,
    StackModel,
    StageLoad,
    effective_saturation_current,
    gate_delay,
    input_capacitance,
    output_parasitic_capacitance,
    wire_capacitance,
)
from repro.tech import CMOS035, TechnologyError


class TestStackModel:
    def test_defaults_valid(self):
        model = StackModel()
        assert model.alpha_increment_per_level >= 0.0

    def test_rejects_negative_increment(self):
        with pytest.raises(TechnologyError):
            StackModel(alpha_increment_per_level=-0.1)

    def test_rejects_subunity_derating(self):
        with pytest.raises(TechnologyError):
            StackModel(series_derating=0.9)


class TestDriveNetwork:
    def test_rejects_unknown_polarity(self):
        with pytest.raises(TechnologyError):
            DriveNetwork(polarity="bjt", width_um=1.0)

    def test_rejects_zero_width(self):
        with pytest.raises(TechnologyError):
            DriveNetwork(polarity="nmos", width_um=0.0)

    def test_rejects_zero_stack(self):
        with pytest.raises(TechnologyError):
            DriveNetwork(polarity="nmos", width_um=1.0, stack_depth=0)


class TestEffectiveCurrent:
    def test_current_scales_with_width(self):
        narrow = effective_saturation_current(
            CMOS035, DriveNetwork("nmos", 1.0), 25.0
        )
        wide = effective_saturation_current(CMOS035, DriveNetwork("nmos", 2.0), 25.0)
        assert wide == pytest.approx(2.0 * narrow, rel=1e-9)

    def test_stacking_reduces_current(self):
        single = effective_saturation_current(CMOS035, DriveNetwork("nmos", 1.0, 1), 25.0)
        stacked = effective_saturation_current(CMOS035, DriveNetwork("nmos", 1.0, 2), 25.0)
        assert stacked < single
        assert stacked > single / 4.0

    def test_current_falls_with_temperature(self):
        cold = effective_saturation_current(CMOS035, DriveNetwork("nmos", 1.0), -50.0)
        hot = effective_saturation_current(CMOS035, DriveNetwork("nmos", 1.0), 150.0)
        assert cold > hot

    def test_pmos_weaker_than_nmos_at_equal_width(self):
        n_current = effective_saturation_current(CMOS035, DriveNetwork("nmos", 1.0), 25.0)
        p_current = effective_saturation_current(CMOS035, DriveNetwork("pmos", 1.0), 25.0)
        assert p_current < n_current

    def test_deep_stack_on_low_supply_can_fail(self):
        # At -50 C the PMOS threshold rises; with the body effect of a
        # 4-high stack it exceeds a 0.7 V supply and the model must refuse.
        low_vdd = CMOS035.with_supply(0.7)
        with pytest.raises(TechnologyError):
            effective_saturation_current(low_vdd, DriveNetwork("pmos", 1.0, 4), -50.0)


class TestGateDelay:
    def test_delay_proportional_to_load(self):
        network = DriveNetwork("nmos", 1.0)
        d1 = gate_delay(CMOS035, network, 10e-15, 25.0)
        d2 = gate_delay(CMOS035, network, 20e-15, 25.0)
        assert d2 == pytest.approx(2.0 * d1, rel=1e-9)

    def test_delay_increases_with_temperature(self):
        network = DriveNetwork("nmos", 1.0)
        assert gate_delay(CMOS035, network, 10e-15, 150.0) > gate_delay(
            CMOS035, network, 10e-15, -50.0
        )

    def test_delay_is_picoseconds_scale(self):
        network = DriveNetwork("nmos", 1.0)
        delay = gate_delay(CMOS035, network, 10e-15, 25.0)
        assert 1e-12 < delay < 1e-9

    def test_rejects_nonpositive_load(self):
        with pytest.raises(TechnologyError):
            gate_delay(CMOS035, DriveNetwork("nmos", 1.0), 0.0, 25.0)

    def test_custom_fit_factor_scales_delay(self):
        network = DriveNetwork("nmos", 1.0)
        base = gate_delay(CMOS035, network, 10e-15, 25.0)
        doubled = gate_delay(
            CMOS035, network, 10e-15, 25.0, DelayModelOptions(fit_factor=2 * 0.52)
        )
        assert doubled == pytest.approx(2.0 * base, rel=1e-9)

    def test_invalid_fit_factor_rejected(self):
        with pytest.raises(TechnologyError):
            DelayModelOptions(fit_factor=0.0)


class TestLoadModels:
    def test_input_capacitance_sums_both_gates(self):
        cin = input_capacitance(CMOS035, 1.0, 2.0)
        n_only = input_capacitance(CMOS035, 1.0, 2.0) - CMOS035.pmos.gate_cap_f_per_um * 2.0
        assert n_only == pytest.approx(CMOS035.nmos.gate_cap_f_per_um * 1.0)
        assert cin > 0.0

    def test_input_capacitance_rejects_bad_widths(self):
        with pytest.raises(TechnologyError):
            input_capacitance(CMOS035, 0.0, 1.0)

    def test_output_parasitic_counts_drains(self):
        one_each = output_parasitic_capacitance(CMOS035, 1.0, 2.0, 1, 1)
        nand_like = output_parasitic_capacitance(CMOS035, 1.0, 2.0, 1, 2)
        assert nand_like > one_each

    def test_output_parasitic_rejects_negative_counts(self):
        with pytest.raises(TechnologyError):
            output_parasitic_capacitance(CMOS035, 1.0, 2.0, -1, 1)

    def test_wire_capacitance_linear_in_length(self):
        assert wire_capacitance(CMOS035, 10.0) == pytest.approx(
            10.0 * CMOS035.wire_cap_f_per_um
        )
        with pytest.raises(TechnologyError):
            wire_capacitance(CMOS035, -1.0)

    def test_stage_load_total(self):
        load = StageLoad(next_stage_input_f=5e-15, self_parasitic_f=2e-15, wire_f=1e-15)
        assert load.total_f == pytest.approx(8e-15)
