"""Unit tests for the passive component specifications."""

import pytest

from repro.devices import CapacitorSpec, ResistorSpec
from repro.tech import TechnologyError


class TestResistorSpec:
    def test_nominal_value_at_reference(self):
        spec = ResistorSpec(nominal_ohm=1000.0, tc1_per_k=0.002)
        assert spec.value_at(spec.reference_temperature_k) == pytest.approx(1000.0)

    def test_positive_tempco_increases_resistance(self):
        spec = ResistorSpec(nominal_ohm=1000.0, tc1_per_k=0.002)
        assert spec.value_at(spec.reference_temperature_k + 50.0) == pytest.approx(1100.0)

    def test_conductance_is_reciprocal(self):
        spec = ResistorSpec(nominal_ohm=500.0)
        assert spec.conductance_at(300.0) == pytest.approx(1.0 / 500.0)

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(TechnologyError):
            ResistorSpec(nominal_ohm=0.0)

    def test_rejects_tempco_driving_negative(self):
        spec = ResistorSpec(nominal_ohm=100.0, tc1_per_k=-0.01)
        with pytest.raises(TechnologyError):
            spec.value_at(spec.reference_temperature_k + 200.0)


class TestCapacitorSpec:
    def test_nominal_value_at_reference(self):
        spec = CapacitorSpec(nominal_f=1e-12)
        assert spec.value_at(spec.reference_temperature_k) == pytest.approx(1e-12)

    def test_tempco_applied_linearly(self):
        spec = CapacitorSpec(nominal_f=1e-12, tc1_per_k=1e-4)
        assert spec.value_at(spec.reference_temperature_k + 100.0) == pytest.approx(1.01e-12)

    def test_rejects_nonpositive_capacitance(self):
        with pytest.raises(TechnologyError):
            CapacitorSpec(nominal_f=-1e-15)

    def test_rejects_tempco_driving_negative(self):
        spec = CapacitorSpec(nominal_f=1e-12, tc1_per_k=-0.02)
        with pytest.raises(TechnologyError):
            spec.value_at(spec.reference_temperature_k + 100.0)
