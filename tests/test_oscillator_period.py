"""Unit tests for temperature-response containers and sweeps."""

import numpy as np
import pytest

from repro.oscillator import (
    TemperatureResponse,
    analytical_response,
    default_temperature_grid,
    paper_temperature_grid,
    validate_temperature_grid,
)
from repro.tech import TechnologyError


class TestGrids:
    def test_default_grid_covers_paper_range(self):
        grid = default_temperature_grid()
        assert grid[0] == pytest.approx(-50.0)
        assert grid[-1] == pytest.approx(150.0)

    def test_paper_grid_nine_points(self):
        grid = paper_temperature_grid()
        assert grid.size == 9
        assert grid[0] == -50.0 and grid[-1] == 150.0

    def test_invalid_grid_parameters(self):
        with pytest.raises(TechnologyError):
            default_temperature_grid(points=1)
        with pytest.raises(TechnologyError):
            default_temperature_grid(t_min_c=100.0, t_max_c=0.0)


class TestTemperatureResponse:
    def make(self, periods=None):
        temps = np.array([-50.0, 0.0, 50.0, 100.0, 150.0])
        if periods is None:
            periods = 200e-12 + (temps + 50.0) * 0.5e-12
        return TemperatureResponse("test", temps, np.asarray(periods))

    def test_validation_rejects_mismatched_arrays(self):
        with pytest.raises(TechnologyError):
            TemperatureResponse("bad", np.array([0.0, 1.0, 2.0]), np.array([1.0, 2.0]))

    def test_validation_rejects_nonmonotonic_temperatures(self):
        with pytest.raises(TechnologyError):
            TemperatureResponse(
                "bad", np.array([0.0, 2.0, 1.0]), np.array([1e-12, 2e-12, 3e-12])
            )

    def test_validation_rejects_nonpositive_periods(self):
        with pytest.raises(TechnologyError):
            TemperatureResponse(
                "bad", np.array([0.0, 1.0, 2.0]), np.array([1e-12, 0.0, 3e-12])
            )

    def test_span_and_sensitivity(self):
        response = self.make()
        assert response.span_s() == pytest.approx(100e-12)
        assert response.mean_sensitivity() == pytest.approx(0.5e-12)

    def test_relative_sensitivity_size_independent(self):
        response = self.make()
        doubled = TemperatureResponse(
            "double", response.temperatures_c, 2.0 * response.periods_s
        )
        assert doubled.relative_sensitivity() == pytest.approx(
            response.relative_sensitivity(), rel=1e-9
        )

    def test_monotonicity_check(self):
        assert self.make().is_monotonic()
        wiggly = self.make(periods=[200e-12, 210e-12, 205e-12, 230e-12, 250e-12])
        assert not wiggly.is_monotonic()

    def test_period_at_interpolates_and_validates(self):
        response = self.make()
        assert response.period_at(25.0) == pytest.approx(237.5e-12)
        with pytest.raises(TechnologyError):
            response.period_at(200.0)

    def test_subsampled_preserves_values(self):
        response = self.make()
        coarse = response.subsampled([-50.0, 50.0, 150.0])
        assert coarse.temperatures_c.size == 3
        assert coarse.period_at(50.0) == pytest.approx(response.period_at(50.0))

    def test_frequencies_are_reciprocal(self):
        response = self.make()
        assert response.frequencies_hz[0] == pytest.approx(1.0 / response.periods_s[0])

    def test_subsampled_rejects_bad_grids_up_front(self):
        response = self.make()
        with pytest.raises(TechnologyError, match="at least three"):
            response.subsampled([-50.0, 150.0])
        with pytest.raises(TechnologyError, match="duplicate temperatures"):
            response.subsampled([-50.0, 50.0, 50.0, 150.0])
        with pytest.raises(TechnologyError, match="outside"):
            response.subsampled([-50.0, 50.0, 200.0])
        with pytest.raises(TechnologyError, match="NaN"):
            response.subsampled([-50.0, float("nan"), 150.0])
        with pytest.raises(TechnologyError, match="finite"):
            response.subsampled([-50.0, float("inf"), 150.0])


class TestValidateTemperatureGrid:
    def test_sorts_unordered_grids(self):
        grid = validate_temperature_grid([50.0, -50.0, 150.0])
        assert np.array_equal(grid, [-50.0, 50.0, 150.0])

    def test_error_messages_name_the_context(self):
        with pytest.raises(TechnologyError, match="simulated sweep"):
            validate_temperature_grid([0.0, 1.0], context="simulated sweep")

    def test_duplicates_are_rejected_not_deduplicated(self):
        """A duplicated point used to be silently collapsed (shrinking
        the grid below what the caller asked for) or to surface as a
        late 'strictly increasing' failure; it must fail fast instead."""
        with pytest.raises(TechnologyError, match=r"duplicate temperatures \[25\.0\]"):
            validate_temperature_grid([0.0, 25.0, 25.0, 100.0])

    def test_rejects_multidimensional_input(self):
        with pytest.raises(TechnologyError, match="one-dimensional"):
            validate_temperature_grid(np.zeros((2, 3)))


class TestSimulatedResponseValidation:
    def test_bad_grids_fail_before_any_simulation(self, inverter_ring):
        from repro.oscillator import simulated_response

        with pytest.raises(TechnologyError, match="at least three"):
            simulated_response(inverter_ring, [0.0, 100.0])
        with pytest.raises(TechnologyError, match="duplicate temperatures"):
            simulated_response(inverter_ring, [0.0, 50.0, 50.0])


class TestAnalyticalResponse:
    def test_uses_default_grid(self, inverter_ring):
        response = analytical_response(inverter_ring)
        assert response.temperatures_c.size == 41
        assert response.label == "5INV"

    def test_scalar_flag_uses_reference_path(self, inverter_ring, paper_temperatures):
        scalar = analytical_response(inverter_ring, paper_temperatures, scalar=True)
        vectorized = analytical_response(inverter_ring, paper_temperatures)
        assert np.allclose(scalar.periods_s, vectorized.periods_s, rtol=1e-9)

    def test_matches_ring_period(self, inverter_ring, paper_temperatures):
        response = analytical_response(inverter_ring, paper_temperatures)
        assert response.period_at(25.0) == pytest.approx(inverter_ring.period(25.0), rel=1e-9)

    def test_monotonic_over_paper_range(self, inverter_response, mixed_response):
        assert inverter_response.is_monotonic()
        assert mixed_response.is_monotonic()
