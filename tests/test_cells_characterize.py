"""Simulation-based cell characterisation: validates the analytical model.

These tests run the transistor-level MNA simulator, so they are the
slowest unit tests in the suite; they are kept to a handful of spot
checks.
"""

import pytest

from repro.cells import CellError, buffer_cell, inverter, measure_cell_delays, model_accuracy, nand_gate
from repro.tech import CMOS035

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def inverter_measurement():
    return measure_cell_delays(inverter(CMOS035), temperature_c=27.0, timestep_s=2e-12)


class TestSimulatedDelays:
    def test_simulated_delays_positive_and_picoseconds(self, inverter_measurement):
        sim = inverter_measurement.simulated
        assert 1e-12 < sim.tphl < 1e-9
        assert 1e-12 < sim.tplh < 1e-9

    def test_analytical_model_within_forty_percent(self, inverter_measurement):
        # The analytical alpha-power model is a first-order model; it must
        # track the transistor-level simulation to within tens of percent
        # for the default inverter at a fan-out-of-4-like load.
        assert model_accuracy(inverter_measurement) < 0.4

    def test_delay_grows_with_temperature_in_simulation(self):
        cold = measure_cell_delays(inverter(CMOS035), temperature_c=-40.0, timestep_s=2e-12)
        hot = measure_cell_delays(inverter(CMOS035), temperature_c=125.0, timestep_s=2e-12)
        assert hot.simulated.tphl > cold.simulated.tphl
        assert hot.simulated.tplh > cold.simulated.tplh

    def test_nand_simulation_slower_pulldown_than_inverter(self):
        load = 4.0 * inverter(CMOS035).input_capacitance()
        inv = measure_cell_delays(inverter(CMOS035), 27.0, load_f=load, timestep_s=2e-12)
        nand = measure_cell_delays(nand_gate(CMOS035, 2), 27.0, load_f=load, timestep_s=2e-12)
        assert nand.simulated.tphl > inv.simulated.tphl

    def test_buffer_rejected(self):
        with pytest.raises(CellError):
            measure_cell_delays(buffer_cell(CMOS035), 27.0)

    def test_nonpositive_load_rejected(self):
        with pytest.raises(CellError):
            measure_cell_delays(inverter(CMOS035), 27.0, load_f=0.0)
