"""Unit tests for repro.tech.scaling."""

import pytest

from repro.tech import CMOS035, ScalingRules, TechnologyError, power_density_scaling_factor, scale_technology


class TestScalingRules:
    def test_valid_rules(self):
        rules = ScalingRules(dimension_factor=2.0, voltage_factor=1.5)
        assert rules.dimension_factor == pytest.approx(2.0)

    def test_rejects_nonpositive_factors(self):
        with pytest.raises(TechnologyError):
            ScalingRules(dimension_factor=0.0, voltage_factor=1.0)
        with pytest.raises(TechnologyError):
            ScalingRules(dimension_factor=2.0, voltage_factor=-1.0)
        with pytest.raises(TechnologyError):
            ScalingRules(dimension_factor=2.0, voltage_factor=1.0, threshold_factor=0.0)

    def test_enforces_documented_ranges(self):
        # The docstring ranges are the contract: S > 1 (the rules only
        # shrink a node), U >= 1, threshold_factor >= 1.
        with pytest.raises(TechnologyError, match="dimension_factor"):
            ScalingRules(dimension_factor=1.0, voltage_factor=1.0)
        with pytest.raises(TechnologyError, match="dimension_factor"):
            ScalingRules(dimension_factor=0.5, voltage_factor=1.0)
        with pytest.raises(TechnologyError, match="voltage_factor"):
            ScalingRules(dimension_factor=2.0, voltage_factor=0.99)
        with pytest.raises(TechnologyError, match="threshold_factor"):
            ScalingRules(dimension_factor=2.0, voltage_factor=1.0, threshold_factor=0.9)
        # The boundary cases the ranges permit.
        ScalingRules(dimension_factor=1.0000001, voltage_factor=1.0)
        ScalingRules(dimension_factor=2.0, voltage_factor=1.0, threshold_factor=1.0)


class TestScaleTechnology:
    def test_dimensions_and_supply_scale(self):
        rules = ScalingRules(dimension_factor=2.0, voltage_factor=1.5, threshold_factor=1.2)
        scaled = scale_technology(CMOS035, rules, name="scaled_test")
        assert scaled.feature_size_um == pytest.approx(CMOS035.feature_size_um / 2.0)
        assert scaled.vdd == pytest.approx(CMOS035.vdd / 1.5)
        assert scaled.nmos.channel_length_um == pytest.approx(
            CMOS035.nmos.channel_length_um / 2.0
        )

    def test_oxide_capacitance_increases(self):
        rules = ScalingRules(dimension_factor=2.0, voltage_factor=1.5, threshold_factor=1.2)
        scaled = scale_technology(CMOS035, rules, name="scaled_cox")
        assert scaled.nmos.cox_f_per_um2 > CMOS035.nmos.cox_f_per_um2

    def test_rejects_scaling_below_threshold(self):
        rules = ScalingRules(dimension_factor=2.0, voltage_factor=8.0, threshold_factor=1.0)
        with pytest.raises(TechnologyError):
            scale_technology(CMOS035, rules, name="broken")

    def test_rejects_vth_below_model_floor_instead_of_clamping(self):
        # 0.55 V / 6 = 0.092 V — below the 0.1 V validity floor of the
        # device models.  The old behavior silently clamped to 0.1 V,
        # yielding a technology the rules never described.
        rules = ScalingRules(
            dimension_factor=2.0, voltage_factor=1.2, threshold_factor=6.0
        )
        with pytest.raises(TechnologyError, match="validity floor"):
            scale_technology(CMOS035, rules, name="clamped")

    def test_scaled_name_applied(self):
        rules = ScalingRules(dimension_factor=1.4, voltage_factor=1.3, threshold_factor=1.1)
        scaled = scale_technology(CMOS035, rules, name="cmos025_derived")
        assert scaled.name == "cmos025_derived"


class TestPowerDensity:
    def test_constant_field_scaling_is_neutral(self):
        rules = ScalingRules(dimension_factor=2.0, voltage_factor=2.0)
        assert power_density_scaling_factor(rules) == pytest.approx(1.0)

    def test_constant_voltage_scaling_heats_up(self):
        # The paper's motivation: real scaling keeps the supply high, so
        # power density (and junction temperature) rises with scaling.
        rules = ScalingRules(dimension_factor=2.0, voltage_factor=1.0)
        assert power_density_scaling_factor(rules) == pytest.approx(4.0)

    def test_partial_voltage_scaling_in_between(self):
        rules = ScalingRules(dimension_factor=2.0, voltage_factor=1.5)
        factor = power_density_scaling_factor(rules)
        assert 1.0 < factor < 4.0
