"""Unit tests for repro.tech.corners (process corners and Monte-Carlo)."""

import numpy as np
import pytest

from repro.tech import (
    CMOS035,
    STANDARD_CORNERS,
    CornerSpec,
    TechnologyError,
    VariationModel,
    apply_corner,
    corner_technologies,
    sample_technologies,
)
from repro.tech.corners import iter_corner_and_samples


class TestCorners:
    def test_standard_corner_set(self):
        assert set(STANDARD_CORNERS) == {"TT", "FF", "SS", "FS", "SF"}

    def test_tt_corner_is_identity(self):
        tt = apply_corner(CMOS035, STANDARD_CORNERS["TT"])
        assert tt.nmos.vth0 == pytest.approx(CMOS035.nmos.vth0)
        assert tt.pmos.mobility == pytest.approx(CMOS035.pmos.mobility)

    def test_ff_corner_is_faster(self):
        ff = apply_corner(CMOS035, STANDARD_CORNERS["FF"])
        assert ff.nmos.vth0 < CMOS035.nmos.vth0
        assert ff.nmos.mobility > CMOS035.nmos.mobility

    def test_ss_corner_is_slower(self):
        ss = apply_corner(CMOS035, STANDARD_CORNERS["SS"])
        assert ss.nmos.vth0 > CMOS035.nmos.vth0
        assert ss.pmos.mobility < CMOS035.pmos.mobility

    def test_skewed_corners_move_devices_oppositely(self):
        fs = apply_corner(CMOS035, STANDARD_CORNERS["FS"])
        assert fs.nmos.vth0 < CMOS035.nmos.vth0
        assert fs.pmos.vth0 > CMOS035.pmos.vth0

    def test_corner_name_appended_to_technology(self):
        ss = apply_corner(CMOS035, STANDARD_CORNERS["SS"])
        assert ss.name.endswith("_ss")

    def test_corner_technologies_selection(self):
        corners = corner_technologies(CMOS035, ["FF", "SS"])
        assert set(corners) == {"FF", "SS"}

    def test_unknown_corner_rejected(self):
        with pytest.raises(TechnologyError):
            corner_technologies(CMOS035, ["XX"])

    def test_extreme_shift_rejected(self):
        bad = CornerSpec("BAD", -1.0, 0.0, 1.0, 1.0)
        with pytest.raises(TechnologyError):
            apply_corner(CMOS035, bad)

    def test_describe_mentions_shifts(self):
        text = STANDARD_CORNERS["FF"].describe()
        assert "FF" in text and "mV" in text


class TestMonteCarlo:
    def test_sample_count_and_names(self):
        samples = sample_technologies(CMOS035, 5, seed=1)
        assert len(samples) == 5
        assert len({s.name for s in samples}) == 5

    def test_seed_reproducibility(self):
        a = sample_technologies(CMOS035, 4, seed=42)
        b = sample_technologies(CMOS035, 4, seed=42)
        for sample_a, sample_b in zip(a, b):
            assert sample_a.nmos.vth0 == pytest.approx(sample_b.nmos.vth0)
            assert sample_a.pmos.mobility == pytest.approx(sample_b.pmos.mobility)

    def test_different_seeds_differ(self):
        a = sample_technologies(CMOS035, 3, seed=1)[0]
        b = sample_technologies(CMOS035, 3, seed=2)[0]
        assert a.nmos.vth0 != pytest.approx(b.nmos.vth0, abs=1e-12)

    def test_variation_statistics_roughly_match_model(self):
        model = VariationModel(vth_sigma=0.02, mobility_sigma_rel=0.03)
        samples = sample_technologies(CMOS035, 200, model=model, seed=7)
        vths = np.asarray([s.nmos.vth0 for s in samples])
        assert np.std(vths) == pytest.approx(0.02, rel=0.35)
        assert np.mean(vths) == pytest.approx(CMOS035.nmos.vth0, abs=0.01)

    def test_zero_count_rejected(self):
        with pytest.raises(TechnologyError):
            sample_technologies(CMOS035, 0)

    def test_invalid_variation_model_rejected(self):
        with pytest.raises(TechnologyError):
            VariationModel(correlated_fraction=1.5)
        with pytest.raises(TechnologyError):
            VariationModel(vth_sigma=-0.1)

    def test_iter_corner_and_samples_counts(self):
        items = list(iter_corner_and_samples(CMOS035, monte_carlo_count=3, seed=3))
        # typical + 5 corners + 3 MC samples
        assert len(items) == 9
