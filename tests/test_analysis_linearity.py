"""Unit tests for the non-linearity metric (the paper's figure of merit)."""

import numpy as np
import pytest

from repro.analysis import fit_line, nonlinearity, temperature_error
from repro.oscillator import TemperatureResponse
from repro.tech import TechnologyError


def linear_response(slope=1e-12, offset=200e-12):
    temps = np.linspace(-50.0, 150.0, 21)
    return TemperatureResponse("linear", temps, offset + slope * (temps + 50.0))


def curved_response(curvature=1e-15):
    temps = np.linspace(-50.0, 150.0, 21)
    periods = 200e-12 + 1e-12 * (temps + 50.0) + curvature * (temps + 50.0) ** 2
    return TemperatureResponse("curved", temps, periods)


class TestFitLine:
    def test_endpoint_fit_passes_through_endpoints(self):
        response = curved_response()
        fit = fit_line(response, "endpoint")
        assert fit.evaluate(response.temperatures_c[:1])[0] == pytest.approx(
            response.periods_s[0]
        )
        assert fit.evaluate(response.temperatures_c[-1:])[0] == pytest.approx(
            response.periods_s[-1]
        )

    def test_best_fit_minimises_rms(self):
        response = curved_response()
        endpoint = nonlinearity(response, "endpoint").rms_error_percent
        best = nonlinearity(response, "best_fit").rms_error_percent
        assert best <= endpoint

    def test_unknown_method_rejected(self):
        with pytest.raises(TechnologyError):
            fit_line(linear_response(), "spline")

    def test_slope_recovered_for_linear_data(self):
        fit = fit_line(linear_response(slope=2e-12), "best_fit")
        assert fit.slope == pytest.approx(2e-12, rel=1e-9)


class TestNonlinearity:
    def test_zero_for_perfectly_linear_response(self):
        result = nonlinearity(linear_response())
        assert result.max_abs_error_percent < 1e-9

    def test_positive_for_curved_response(self):
        result = nonlinearity(curved_response())
        assert result.max_abs_error_percent > 0.1

    def test_error_normalised_to_full_scale(self):
        # Doubling every period doubles both residual and span, leaving
        # the percentage error unchanged.
        base = curved_response()
        scaled = TemperatureResponse("scaled", base.temperatures_c, 2.0 * base.periods_s)
        assert nonlinearity(scaled).max_abs_error_percent == pytest.approx(
            nonlinearity(base).max_abs_error_percent, rel=1e-9
        )

    def test_endpoint_errors_are_zero_at_range_ends(self):
        result = nonlinearity(curved_response(), "endpoint")
        assert result.error_percent[0] == pytest.approx(0.0, abs=1e-12)
        assert result.error_percent[-1] == pytest.approx(0.0, abs=1e-12)

    def test_error_at_interpolates(self):
        result = nonlinearity(curved_response())
        mid = result.error_at(50.0)
        assert result.error_percent.min() <= mid <= result.error_percent.max()

    def test_flat_response_rejected(self):
        temps = np.linspace(-50.0, 150.0, 11)
        flat = TemperatureResponse("flat", temps, np.full(11, 1e-10))
        with pytest.raises(TechnologyError):
            nonlinearity(flat)

    def test_rms_not_larger_than_max(self):
        result = nonlinearity(curved_response())
        assert result.rms_error_percent <= result.max_abs_error_percent


class TestTemperatureError:
    def test_zero_for_linear_response(self):
        errors = temperature_error(linear_response())
        assert np.max(np.abs(errors)) < 1e-6

    def test_magnitude_consistent_with_percent_error(self):
        response = curved_response()
        result = nonlinearity(response)
        # x % of full scale over a 200 K range corresponds to about 2x kelvin.
        expected = result.max_abs_error_percent / 100.0 * 200.0
        assert result.max_abs_temperature_error_c == pytest.approx(expected, rel=0.2)

    def test_paper_rings_have_subkelvin_equivalent_error(self, mixed_response):
        result = nonlinearity(mixed_response)
        assert result.max_abs_temperature_error_c < 1.0
