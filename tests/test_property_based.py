"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import nonlinearity, summarize
from repro.circuit import Waveform
from repro.core import LinearCalibration, PeriodCounter, ReadoutConfig, two_point_calibration
from repro.devices import DeviceSizing, MosfetModel
from repro.oscillator import RingConfiguration, TemperatureResponse
from repro.tech import CMOS035
from repro.thermal import PowerMap

# Hypothesis settings: the models are cheap, but keep the example count
# moderate so the whole suite stays fast.
DEFAULT_SETTINGS = dict(
    max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# --------------------------------------------------------------------------- #
# Ring configurations
# --------------------------------------------------------------------------- #

cell_names = st.sampled_from(["INV", "NAND2", "NAND3", "NOR2", "NOR3"])
odd_counts = st.integers(min_value=1, max_value=10).map(lambda n: 2 * n + 1)


@given(stages=st.lists(cell_names, min_size=3, max_size=21).filter(lambda s: len(s) % 2 == 1))
@settings(**DEFAULT_SETTINGS)
def test_configuration_label_round_trips(stages):
    config = RingConfiguration(tuple(stages))
    parsed = RingConfiguration.parse(config.label())
    assert parsed.stages == config.stages


@given(name=cell_names, count=odd_counts)
@settings(**DEFAULT_SETTINGS)
def test_uniform_configuration_counts(name, count):
    config = RingConfiguration.uniform(name, count)
    assert config.stage_count == count
    assert config.counts() == {name: count}
    assert config.is_uniform()


# --------------------------------------------------------------------------- #
# MOSFET model invariants
# --------------------------------------------------------------------------- #

@given(
    vgs=st.floats(min_value=0.0, max_value=3.3),
    vds=st.floats(min_value=0.0, max_value=3.3),
    width=st.floats(min_value=0.5, max_value=20.0),
    temp_c=st.floats(min_value=-50.0, max_value=150.0),
)
@settings(**DEFAULT_SETTINGS)
def test_mosfet_current_nonnegative_and_finite(vgs, vds, width, temp_c):
    model = MosfetModel(CMOS035.nmos, DeviceSizing(width), 273.15 + temp_c)
    current = model.ids(vgs, vds)
    assert np.isfinite(current)
    assert current >= 0.0


@given(
    vgs_low=st.floats(min_value=0.8, max_value=2.0),
    vgs_delta=st.floats(min_value=0.1, max_value=1.3),
    vds=st.floats(min_value=0.5, max_value=3.3),
)
@settings(**DEFAULT_SETTINGS)
def test_mosfet_current_monotone_in_gate_drive(vgs_low, vgs_delta, vds):
    model = MosfetModel(CMOS035.nmos, DeviceSizing(1.0), 300.0)
    assert model.ids(vgs_low + vgs_delta, vds) >= model.ids(vgs_low, vds)


# --------------------------------------------------------------------------- #
# Waveform invariants
# --------------------------------------------------------------------------- #

@given(
    frequency=st.floats(min_value=1e8, max_value=5e9),
    cycles=st.integers(min_value=4, max_value=12),
    amplitude=st.floats(min_value=0.5, max_value=3.0),
)
@settings(**DEFAULT_SETTINGS)
def test_waveform_period_recovers_generator_frequency(frequency, cycles, amplitude):
    times = np.linspace(0.0, cycles / frequency, cycles * 80)
    values = amplitude * (1.0 + np.sin(2 * np.pi * frequency * times))
    wave = Waveform(times, values)
    assert wave.period(threshold=amplitude) == pytest.approx(1.0 / frequency, rel=0.05)


@given(
    data=st.lists(st.floats(min_value=-5.0, max_value=5.0), min_size=2, max_size=200),
)
@settings(**DEFAULT_SETTINGS)
def test_waveform_extrema_bound_values(data):
    times = np.arange(len(data), dtype=float)
    wave = Waveform(times, np.asarray(data))
    assert wave.minimum() <= wave.maximum()
    assert wave.amplitude() == pytest.approx(wave.maximum() - wave.minimum())


# --------------------------------------------------------------------------- #
# Calibration and readout invariants
# --------------------------------------------------------------------------- #

@given(
    period_low=st.floats(min_value=50e-12, max_value=400e-12),
    span=st.floats(min_value=20e-12, max_value=400e-12),
    temp_low=st.floats(min_value=-60.0, max_value=20.0),
    temp_span=st.floats(min_value=50.0, max_value=220.0),
)
@settings(**DEFAULT_SETTINGS)
def test_two_point_calibration_exact_at_anchors(period_low, span, temp_low, temp_span):
    calibration = two_point_calibration(
        [period_low, period_low + span], [temp_low, temp_low + temp_span]
    )
    assert calibration.temperature(period_low) == pytest.approx(temp_low, abs=1e-6)
    assert calibration.temperature(period_low + span) == pytest.approx(
        temp_low + temp_span, abs=1e-6
    )


@given(
    slope=st.floats(min_value=1e11, max_value=5e12),
    offset=st.floats(min_value=-400.0, max_value=0.0),
    period=st.floats(min_value=50e-12, max_value=2e-9),
)
@settings(**DEFAULT_SETTINGS)
def test_linear_calibration_inverse_round_trip(slope, offset, period):
    calibration = LinearCalibration(slope_c_per_second=slope, offset_c=offset)
    assert calibration.period(calibration.temperature(period)) == pytest.approx(
        period, rel=1e-9
    )


@given(period=st.floats(min_value=100e-12, max_value=5e-9))
@settings(**DEFAULT_SETTINGS)
def test_counter_code_to_period_within_one_lsb(period):
    counter = PeriodCounter(ReadoutConfig(window_cycles=256))
    reading = counter.convert(period)
    if not reading.saturated and reading.code > 0:
        recovered = counter.code_to_period(reading.code)
        lsb = counter.config.window_s / reading.code - counter.config.window_s / (
            reading.code + 1
        )
        assert abs(recovered - period) <= lsb


# --------------------------------------------------------------------------- #
# Analysis invariants
# --------------------------------------------------------------------------- #

@given(
    slope=st.floats(min_value=0.1e-12, max_value=3e-12),
    offset=st.floats(min_value=100e-12, max_value=2e-9),
    scale=st.floats(min_value=0.5, max_value=20.0),
)
@settings(**DEFAULT_SETTINGS)
def test_nonlinearity_invariant_under_period_scaling(slope, offset, scale):
    temps = np.linspace(-50.0, 150.0, 15)
    periods = offset + slope * (temps + 50.0) + 0.002 * slope * (temps + 50.0) ** 2
    base = TemperatureResponse("base", temps, periods)
    scaled = TemperatureResponse("scaled", temps, periods * scale)
    assert nonlinearity(scaled).max_abs_error_percent == pytest.approx(
        nonlinearity(base).max_abs_error_percent, rel=1e-9
    )


@given(values=st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=100))
@settings(**DEFAULT_SETTINGS)
def test_summary_statistics_ordering(values):
    stats = summarize(values)
    assert stats.minimum <= stats.p05 <= stats.p50 <= stats.p95 <= stats.maximum
    assert stats.minimum <= stats.mean <= stats.maximum


# --------------------------------------------------------------------------- #
# Thermal substrate invariants
# --------------------------------------------------------------------------- #

@given(
    nx=st.integers(min_value=2, max_value=12),
    ny=st.integers(min_value=2, max_value=12),
    sources=st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=7.99),
            st.floats(min_value=0.01, max_value=7.99),
            st.floats(min_value=0.0, max_value=5.0),
        ),
        min_size=0,
        max_size=8,
    ),
)
@settings(**DEFAULT_SETTINGS)
def test_power_map_point_sources_conserve_total_power(nx, ny, sources):
    power = PowerMap.zeros(8.0, 8.0, nx, ny)
    for x, y, watts in sources:
        power.add_point_source(x, y, watts)
    assert power.total_power_w() == pytest.approx(sum(w for _, _, w in sources), rel=1e-9)
