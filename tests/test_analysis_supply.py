"""Unit tests for the supply-voltage cross-sensitivity analysis."""

import pytest

from repro.analysis import supply_sensitivity
from repro.oscillator import RingConfiguration
from repro.tech import CMOS035, TechnologyError


@pytest.fixture(scope="module")
def inverter_report():
    return supply_sensitivity(CMOS035, RingConfiguration.uniform("INV", 5))


class TestSupplySensitivity:
    def test_more_supply_makes_the_ring_faster(self, inverter_report):
        assert inverter_report.period_per_volt_s < 0.0

    def test_more_temperature_makes_the_ring_slower(self, inverter_report):
        assert inverter_report.period_per_kelvin_s > 0.0

    def test_cross_sensitivity_order_of_magnitude(self, inverter_report):
        # Tens of millikelvin of apparent error per millivolt of supply
        # change is the textbook figure for a 3.3 V ring sensor.
        assert 0.01 < inverter_report.kelvin_per_millivolt < 0.5

    def test_error_budget_inverse_of_sensitivity(self, inverter_report):
        budget_1c = inverter_report.supply_error_budget_mv(1.0)
        budget_2c = inverter_report.supply_error_budget_mv(2.0)
        assert budget_2c == pytest.approx(2.0 * budget_1c)

    def test_error_budget_requires_positive_budget(self, inverter_report):
        with pytest.raises(TechnologyError):
            inverter_report.supply_error_budget_mv(0.0)

    def test_invalid_deltas_rejected(self):
        with pytest.raises(TechnologyError):
            supply_sensitivity(
                CMOS035, RingConfiguration.uniform("INV", 5), supply_delta_v=0.0
            )

    def test_configuration_changes_cross_sensitivity(self):
        nand_heavy = supply_sensitivity(CMOS035, RingConfiguration.parse("5NAND2"))
        nor_heavy = supply_sensitivity(CMOS035, RingConfiguration.parse("5NOR2"))
        # The stacked-PMOS ring is more supply sensitive (less overdrive
        # headroom), so the mix choice is also a supply-rejection knob.
        assert nor_heavy.kelvin_per_millivolt > nand_heavy.kelvin_per_millivolt

    def test_label_records_configuration(self, inverter_report):
        assert inverter_report.label == "5INV"
