"""Unit tests for the StandardCell abstraction and topologies."""

import pytest

from repro.cells import CellError, CellTopology, GateDelays, inverter, nand_gate, nor_gate, buffer_cell
from repro.circuit import Circuit, solve_dc
from repro.tech import CMOS035, celsius_to_kelvin


class TestCellTopology:
    def test_inverter_topology(self):
        topo = CellTopology.inverter()
        assert topo.fan_in == 1
        assert topo.nmos_stack_depth == 1
        assert topo.inverting

    def test_nand_topology_stacks_nmos(self):
        topo = CellTopology.nand(3)
        assert topo.nmos_stack_depth == 3
        assert topo.pmos_stack_depth == 1
        assert topo.pmos_drains_on_output == 3

    def test_nor_topology_stacks_pmos(self):
        topo = CellTopology.nor(2)
        assert topo.pmos_stack_depth == 2
        assert topo.nmos_stack_depth == 1
        assert topo.nmos_drains_on_output == 2

    def test_buffer_is_noninverting_two_stage(self):
        topo = CellTopology.buffer()
        assert not topo.inverting
        assert topo.stages == 2

    def test_rejects_single_input_nand(self):
        with pytest.raises(CellError):
            CellTopology.nand(1)

    def test_rejects_unknown_kind(self):
        with pytest.raises(CellError):
            CellTopology("XOR", 2, 1, 1, 1, 1)


class TestGateDelays:
    def test_average_and_pair_sum(self):
        delays = GateDelays(tphl=40e-12, tplh=60e-12)
        assert delays.average == pytest.approx(50e-12)
        assert delays.pair_sum == pytest.approx(100e-12)

    def test_asymmetry_zero_for_balanced(self):
        assert GateDelays(50e-12, 50e-12).asymmetry == pytest.approx(0.0)


class TestStandardCellGeometry:
    def test_minimum_width_enforced(self):
        with pytest.raises(CellError):
            inverter(CMOS035, nmos_width_um=0.1)

    def test_input_capacitance_positive_and_fememto(self):
        cell = inverter(CMOS035)
        assert 1e-16 < cell.input_capacitance() < 1e-13

    def test_nand_parasitic_larger_than_inverter(self):
        inv = inverter(CMOS035)
        nand = nand_gate(CMOS035, 2)
        assert nand.output_parasitic_capacitance() > inv.output_parasitic_capacitance()

    def test_transistor_count(self):
        assert inverter(CMOS035).transistor_count() == 2
        assert nand_gate(CMOS035, 3).transistor_count() == 6
        assert buffer_cell(CMOS035).transistor_count() == 4

    def test_area_scales_with_fan_in(self):
        assert nand_gate(CMOS035, 3).area_um2() > nand_gate(CMOS035, 2).area_um2()

    def test_width_ratio_default(self):
        assert inverter(CMOS035).width_ratio == pytest.approx(2.0)


class TestStandardCellDelays:
    def test_delay_increases_with_temperature(self):
        cell = inverter(CMOS035)
        load = 4.0 * cell.input_capacitance()
        assert cell.delays(150.0, load).pair_sum > cell.delays(-50.0, load).pair_sum

    def test_delay_increases_with_load(self):
        cell = inverter(CMOS035)
        cin = cell.input_capacitance()
        assert cell.delays(25.0, 8 * cin).pair_sum > cell.delays(25.0, 2 * cin).pair_sum

    def test_nand_slower_than_inverter_on_fall(self):
        # NAND2 pull-down is a 2-high stack of the same width devices.
        inv = inverter(CMOS035)
        nand = nand_gate(CMOS035, 2)
        load = 10e-15
        assert nand.delays(25.0, load).tphl > inv.delays(25.0, load).tphl

    def test_nor_slower_than_inverter_on_rise(self):
        inv = inverter(CMOS035)
        nor = nor_gate(CMOS035, 2)
        load = 10e-15
        assert nor.delays(25.0, load).tplh > inv.delays(25.0, load).tplh

    def test_buffer_delay_larger_than_inverter(self):
        inv = inverter(CMOS035)
        buf = buffer_cell(CMOS035)
        load = 10e-15
        assert buf.delays(25.0, load).pair_sum > inv.delays(25.0, load).pair_sum

    def test_negative_load_rejected(self):
        with pytest.raises(CellError):
            inverter(CMOS035).delays(25.0, -1e-15)


class TestNetlistGeneration:
    @staticmethod
    def _dc_output(cell, input_level):
        vdd = CMOS035.vdd
        circuit = Circuit(f"dc_{cell.name}")
        circuit.add_voltage_source("vdd", "gnd", vdd, name="VDD")
        circuit.add_voltage_source("in", "gnd", input_level, name="VIN")
        cell.build_into(circuit, "in", "out", "vdd", celsius_to_kelvin(25.0), instance="dut")
        circuit.add_resistor("out", "gnd", 1e9, name="RLOAD")
        return solve_dc(circuit).voltage("out")

    def test_inverter_netlist_inverts(self):
        cell = inverter(CMOS035)
        assert self._dc_output(cell, 0.0) > 3.2
        assert self._dc_output(cell, 3.3) < 0.1

    def test_nand_used_as_inverter_inverts(self):
        cell = nand_gate(CMOS035, 2)
        assert self._dc_output(cell, 0.0) > 3.2
        assert self._dc_output(cell, 3.3) < 0.15

    def test_nor_used_as_inverter_inverts(self):
        cell = nor_gate(CMOS035, 2)
        assert self._dc_output(cell, 0.0) > 3.15
        assert self._dc_output(cell, 3.3) < 0.1

    def test_buffer_netlist_rejected(self):
        circuit = Circuit("buf")
        with pytest.raises(CellError):
            buffer_cell(CMOS035).build_into(circuit, "in", "out", "vdd", 300.0)

    def test_transistor_count_in_netlist(self):
        circuit = Circuit("count")
        circuit.add_voltage_source("vdd", "gnd", 3.3, name="VDD")
        nand_gate(CMOS035, 3).build_into(circuit, "in", "out", "vdd", 300.0, instance="u0")
        fets = [e for e in circuit.elements if e.__class__.__name__ == "Mosfet"]
        assert len(fets) == 6
