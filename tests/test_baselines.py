"""Unit tests for the baseline sensors (diode and FPGA-style ring)."""

import numpy as np
import pytest

from repro.analysis import nonlinearity
from repro.baselines import (
    DiodeSensorConfig,
    DiodeTemperatureSensor,
    FpgaRingConfig,
    fpga_ring_oscillator,
)
from repro.oscillator import analytical_response
from repro.tech import CMOS035, TechnologyError


class TestDiodeSensorConfig:
    def test_defaults_valid(self):
        config = DiodeSensorConfig()
        assert config.bias_current_high_a > config.bias_current_low_a

    def test_invalid_currents_rejected(self):
        with pytest.raises(TechnologyError):
            DiodeSensorConfig(bias_current_low_a=1e-5, bias_current_high_a=1e-6)

    def test_invalid_adc_rejected(self):
        with pytest.raises(TechnologyError):
            DiodeSensorConfig(adc_bits=2)
        with pytest.raises(TechnologyError):
            DiodeSensorConfig(adc_full_scale_v=0.0)


class TestDiodeSensor:
    def test_ptat_voltage_increases_with_temperature(self):
        sensor = DiodeTemperatureSensor()
        assert sensor.ptat_voltage(150.0) > sensor.ptat_voltage(-50.0) > 0.0

    def test_adc_code_monotonic_and_in_range(self):
        sensor = DiodeTemperatureSensor()
        codes = [sensor.adc_code(t) for t in (-50.0, 0.0, 50.0, 100.0, 150.0)]
        assert codes == sorted(codes)
        assert all(0 <= code < 1024 for code in codes)

    def test_accuracy_within_a_few_kelvin(self):
        sensor = DiodeTemperatureSensor()
        temps = np.linspace(-50.0, 150.0, 21)
        assert sensor.worst_case_error_c(temps) < 6.0

    def test_error_dominated_by_analog_imperfections(self):
        ideal = DiodeTemperatureSensor(
            DiodeSensorConfig(gain_error=0.0, offset_error_v=0.0, adc_bits=14)
        )
        real = DiodeTemperatureSensor()
        temps = np.linspace(-50.0, 150.0, 11)
        assert ideal.worst_case_error_c(temps) < real.worst_case_error_c(temps)

    def test_requires_analog_design_flag(self):
        assert DiodeTemperatureSensor.requires_analog_design is True

    def test_reading_error_property(self):
        reading = DiodeTemperatureSensor().measure(25.0)
        assert reading.error_c == pytest.approx(
            reading.temperature_estimate_c - 25.0
        )


class TestFpgaRing:
    def test_default_config_valid(self):
        config = FpgaRingConfig()
        assert config.stage_count % 2 == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(TechnologyError):
            FpgaRingConfig(stage_count=4)
        with pytest.raises(TechnologyError):
            FpgaRingConfig(lut_input_cap_multiplier=0.5)
        with pytest.raises(TechnologyError):
            FpgaRingConfig(routing_wire_length_um=-1.0)

    def test_much_slower_than_standard_cell_ring(self, inverter_ring):
        # Heavier routing load and more stages make the FPGA-style ring
        # substantially slower per stage than the abutted standard-cell ring.
        fpga = fpga_ring_oscillator(CMOS035)
        per_stage_fpga = fpga.period(25.0) / fpga.stage_count
        per_stage_std = inverter_ring.period(25.0) / inverter_ring.stage_count
        assert per_stage_fpga > 1.4 * per_stage_std
        assert fpga.period(25.0) > 2.0 * inverter_ring.period(25.0)

    def test_still_monotonic_in_temperature(self):
        fpga = fpga_ring_oscillator(CMOS035)
        response = analytical_response(fpga, np.linspace(-50.0, 150.0, 9))
        assert response.is_monotonic()

    def test_linearity_not_better_than_optimised_mix(self, mixed_response):
        fpga = fpga_ring_oscillator(CMOS035)
        fpga_nl = nonlinearity(
            analytical_response(fpga, np.linspace(-50.0, 150.0, 9))
        ).max_abs_error_percent
        mix_nl = nonlinearity(mixed_response).max_abs_error_percent
        assert fpga_nl > mix_nl

    def test_area_larger_due_to_lut_multiplier(self, inverter_ring):
        fpga = fpga_ring_oscillator(CMOS035)
        assert fpga.area_um2() > inverter_ring.area_um2()
