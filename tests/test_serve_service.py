"""End-to-end contracts of the sweep service (repro.serve).

Each test runs a real :class:`~repro.serve.server.SweepServer` on an
ephemeral port (in-process, daemon thread) and drives it with the
blocking :class:`~repro.serve.client.ServeClient` — the same transport
production trafic uses, no mocked sockets.  The contracts:

* a served result is **byte-identical** (post ``to_dict``) to the same
  sweep evaluated locally;
* a repeat request is answered from the cache with **zero** new engine
  evaluations (asserted through the server's evaluation counter);
* concurrent compatible point queries coalesce into **one** broadcast
  evaluation, each answer bitwise equal to its solo evaluation;
* the result cache evicts least-recently-used entries under a small
  byte budget;
* malformed or version-foreign payloads are rejected with structured
  error codes, and the connection survives the rejection;
* oversized results stream as tiles and reassemble equal;
* a ``shutdown`` op stops the server cleanly.
"""

import json
import socket
import threading

import numpy as np
import pytest

from repro.engine import Axis, Sweep
from repro.serve import ServeClient, ServeError, canonical_key, start_server_thread
from repro.serve.protocol import (
    E_BAD_JSON,
    E_BAD_REQUEST,
    E_BAD_SPEC,
    E_TECH_MISMATCH,
    E_UNKNOWN_OP,
    E_VERSION,
)
from repro.tech import CMOS035, register_technology

TEMPS = [-40.0, 25.0, 125.0]


def small_sweep(observable="period"):
    return (
        Sweep(technology=CMOS035, configuration="5INV")
        .over(Axis.temperature(TEMPS))
        .observe(observable)
    )


def base_spec(observable="period"):
    return (
        Sweep(technology=CMOS035, configuration="5INV")
        .observe(observable)
        .to_dict()
    )


@pytest.fixture()
def server():
    handle = start_server_thread(batch_window_ms=1.0)
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    with ServeClient("127.0.0.1", server.port) as remote:
        yield remote


# --------------------------------------------------------------------------- #
# round trip + cache
# --------------------------------------------------------------------------- #


def test_served_result_is_byte_identical_to_local(client):
    sweep = small_sweep()
    local = sweep.run().to_dict()
    served = client.sweep_payload(sweep)
    # Through a JSON round trip (as any remote caller sees it), the
    # payloads are equal — same dims, coords, dtype and exact values.
    assert json.loads(json.dumps(served)) == json.loads(json.dumps(local))
    assert served == local


def test_repeat_request_hits_cache_with_zero_evaluations(server, client):
    sweep = small_sweep()
    first = client.sweep_payload(sweep)
    evaluations = server.server.evaluations
    assert evaluations == 1
    again = client.sweep_payload(sweep)
    assert again == first
    assert server.server.evaluations == evaluations  # zero new evaluations
    stats = client.stats()
    assert stats["cache"]["hits"] >= 1
    assert stats["cache"]["entries"] >= 1


def test_respelled_request_still_hits_cache(server, client):
    payload = small_sweep().to_dict()
    client.sweep_payload(payload)
    respelled = json.loads(json.dumps(payload))
    for axis in respelled["axes"]:
        if axis["name"] == "temperature":
            axis["coordinates"] = [-40, 25, 125]  # ints, same grid
    del respelled["base"]["tap_stage"]  # defaults omitted, same spec
    client.sweep_payload(respelled)
    assert server.server.evaluations == 1
    assert canonical_key(respelled) == canonical_key(payload)


def test_concurrent_identical_sweeps_share_one_evaluation(server):
    spec = small_sweep("power").to_dict()
    results = [None] * 4

    def worker(slot):
        with ServeClient("127.0.0.1", server.port) as remote:
            results[slot] = remote.sweep_payload(spec)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(result == results[0] for result in results)
    assert server.server.evaluations == 1  # single-flight, not four passes


# --------------------------------------------------------------------------- #
# micro-batched point queries
# --------------------------------------------------------------------------- #


def test_concurrent_points_coalesce_into_one_evaluation():
    handle = start_server_thread(batch_window_ms=500.0)
    try:
        spec = base_spec()
        temps = [float(t) for t in np.linspace(-40.0, 125.0, 8)]
        results = [None] * len(temps)
        barrier = threading.Barrier(len(temps))

        def worker(slot):
            with ServeClient("127.0.0.1", handle.port) as remote:
                barrier.wait()
                results[slot] = remote.point(spec, temps[slot])

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(len(temps))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert handle.server.evaluations == 1
        assert handle.server.batcher.batches == 1
        assert handle.server.batcher.largest_batch == len(temps)

        local = (
            Sweep(technology=CMOS035, configuration="5INV")
            .over(Axis.temperature(temps))
            .run()
        )
        for temperature, result in zip(temps, results):
            assert result.dims == ("temperature",)
            assert result.item() == local.select(temperature=temperature).item()
    finally:
        handle.stop()


def test_point_slice_equals_solo_point_evaluation(client):
    temperature = 85.0
    served = client.point_payload(base_spec(), temperature)
    solo = (
        Sweep(technology=CMOS035, configuration="5INV")
        .over(Axis.temperature([temperature]))
        .run()
        .to_dict()
    )
    assert served == solo


def test_repeated_point_is_served_from_cache(server, client):
    client.point_payload(base_spec(), 25.0)
    evaluations = server.server.evaluations
    client.point_payload(base_spec(), 25.0)
    assert server.server.evaluations == evaluations


def test_point_rejects_temperature_axis_and_endpoint_observables(client):
    carrying_axis = small_sweep().to_dict()
    with pytest.raises(ServeError, match="temperature axis") as caught:
        client.point_payload(carrying_axis, 25.0)
    assert caught.value.code == E_BAD_REQUEST

    with pytest.raises(ServeError, match="couples every temperature") as caught:
        client.point_payload(base_spec("calibration_error_c"), 25.0)
    assert caught.value.code == E_BAD_REQUEST

    with pytest.raises(ServeError, match="temperature_c") as caught:
        client._request({"op": "point", "spec": base_spec()})
    assert caught.value.code == E_BAD_REQUEST


# --------------------------------------------------------------------------- #
# cache eviction
# --------------------------------------------------------------------------- #


def test_lru_eviction_under_small_byte_budget():
    probe = small_sweep().run().to_dict()
    payload_bytes = len(json.dumps(probe, separators=(",", ":")).encode())
    # Room for roughly one result at a time: the second distinct sweep
    # must push the first out.
    handle = start_server_thread(cache_bytes=payload_bytes + 16)
    try:
        with ServeClient("127.0.0.1", handle.port) as remote:
            remote.sweep_payload(small_sweep("period"))
            remote.sweep_payload(small_sweep("power"))
            stats = remote.stats()
            assert stats["cache"]["evictions"] >= 1
            assert stats["cache"]["bytes"] <= payload_bytes + 16
            # The evicted sweep re-evaluates on the next request.
            before = handle.server.evaluations
            remote.sweep_payload(small_sweep("period"))
            assert handle.server.evaluations == before + 1
    finally:
        handle.stop()


# --------------------------------------------------------------------------- #
# protocol errors
# --------------------------------------------------------------------------- #


def test_malformed_and_invalid_requests_return_structured_errors(server, client):
    # Raw malformed JSON line, spoken directly over the socket.
    with socket.create_connection(("127.0.0.1", server.port), timeout=10) as raw:
        stream = raw.makefile("rwb")
        stream.write(b"this is not json\n")
        stream.flush()
        response = json.loads(stream.readline())
        assert response["ok"] is False
        assert response["error"]["code"] == E_BAD_JSON

        # The connection survives the rejection.
        stream.write(b'{"op":"ping"}\n')
        stream.flush()
        assert json.loads(stream.readline())["ok"] is True

    with pytest.raises(ServeError) as caught:
        client._request({"op": "transmogrify"})
    assert caught.value.code == E_UNKNOWN_OP

    with pytest.raises(ServeError) as caught:
        client._request({"no": "op"})
    assert caught.value.code == E_BAD_REQUEST

    with pytest.raises(ServeError) as caught:
        client.sweep_payload({"version": 99, "observable": "period"})
    assert caught.value.code == E_VERSION

    bad_spec = small_sweep().to_dict()
    bad_spec["observable"] = "resistance"
    with pytest.raises(ServeError) as caught:
        client.sweep_payload(bad_spec)
    assert caught.value.code == E_BAD_SPEC

    # After all the rejections the connection still answers.
    assert client.ping()["ok"] is True


def test_disagreeing_registries_fail_with_tech_mismatch(server, client):
    # A client whose registry binds "cmos035" to *different physics*
    # serializes the same name under a different digest.  Simulate it by
    # re-registering the name, serializing, then restoring the original
    # binding before the server (same process, same registry) reads the
    # spec: the digests disagree, and the server must refuse rather
    # than silently evaluate ITS idea of cmos035.
    variant = CMOS035.with_supply(3.0)
    register_technology(variant, overwrite=True)
    try:
        foreign = (
            Sweep(technology=variant, configuration="5INV")
            .over(Axis.temperature(TEMPS))
            .to_dict()
        )
    finally:
        register_technology(CMOS035, overwrite=True)
    reference = foreign["base"]["technology"]
    assert reference["name"] == "cmos035"
    assert "parameters" not in reference  # a bare name+digest reference

    with pytest.raises(ServeError, match="disagree") as caught:
        client.sweep_payload(foreign)
    assert caught.value.code == E_TECH_MISMATCH
    assert server.server.evaluations == 0  # refused before evaluation

    # The connection survives, and the honest spec still evaluates.
    assert client.ping()["ok"] is True
    assert client.sweep_payload(small_sweep()) == small_sweep().run().to_dict()


# --------------------------------------------------------------------------- #
# tile streaming
# --------------------------------------------------------------------------- #


def test_streamed_result_reassembles_byte_identical():
    sweep = (
        Sweep(technology=CMOS035, configuration="5INV")
        .over(Axis.supply([3.0, 3.3]))
        .over(Axis.temperature([float(t) for t in np.linspace(-40.0, 125.0, 30)]))
    )
    local = sweep.run().to_dict()
    handle = start_server_thread(stream_threshold_bytes=256)
    try:
        with ServeClient("127.0.0.1", handle.port) as remote:
            served = remote.sweep_payload(sweep)
            assert served == local
            # And the stream really was a stream: the payload is far
            # larger than the threshold.
            size = len(json.dumps(local, separators=(",", ":")).encode())
            assert size > 256
    finally:
        handle.stop()


# --------------------------------------------------------------------------- #
# lifecycle
# --------------------------------------------------------------------------- #


def test_shutdown_op_stops_the_server_cleanly():
    handle = start_server_thread()
    with ServeClient("127.0.0.1", handle.port) as remote:
        assert remote.ping()["version"] == Sweep.SCHEMA_VERSION
        remote.shutdown()
    handle.thread.join(timeout=10)
    assert not handle.thread.is_alive()
    # The port is released: a fresh connection is refused.
    with pytest.raises(OSError):
        socket.create_connection(("127.0.0.1", handle.port), timeout=2)
