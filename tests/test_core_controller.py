"""Unit tests for the measurement controller FSM."""

import pytest

from repro.core import ControllerConfig, ControllerState, MeasurementController, ReadoutConfig
from repro.tech import TechnologyError


def make_controller(window_cycles=16, settle=4, auto_disable=True):
    return MeasurementController(
        ReadoutConfig(window_cycles=window_cycles),
        ControllerConfig(settle_cycles=settle, auto_disable=auto_disable),
    )


class TestConfig:
    def test_invalid_config_rejected(self):
        with pytest.raises(TechnologyError):
            ControllerConfig(settle_cycles=-1)
        with pytest.raises(TechnologyError):
            ControllerConfig(done_cycles=0)


class TestStateSequence:
    def test_starts_idle_and_disabled(self):
        controller = make_controller()
        assert controller.state is ControllerState.IDLE
        assert not controller.busy
        assert not controller.oscillator_enabled

    def test_idle_without_request_stays_idle(self):
        controller = make_controller()
        for _ in range(5):
            status = controller.step()
        assert status.state is ControllerState.IDLE

    def test_full_measurement_sequence(self):
        controller = make_controller(window_cycles=8, settle=2)
        controller.request_measurement()
        states = []
        for _ in range(20):
            states.append(controller.step().state)
        assert ControllerState.SETTLE in states
        assert ControllerState.MEASURE in states
        assert ControllerState.DONE in states
        assert controller.measurements_completed == 1

    def test_busy_flag_during_measurement(self):
        controller = make_controller(window_cycles=8, settle=2)
        controller.request_measurement()
        controller.step()  # leaves IDLE
        assert controller.busy
        assert controller.oscillator_enabled

    def test_data_valid_pulses_in_done(self):
        controller = make_controller(window_cycles=4, settle=1)
        controller.request_measurement()
        seen_valid = 0
        for _ in range(15):
            if controller.step().data_valid:
                seen_valid += 1
        assert seen_valid >= 1

    def test_zero_settle_skips_settle_state(self):
        controller = make_controller(window_cycles=4, settle=0)
        controller.request_measurement()
        first = controller.step()
        assert first.state is ControllerState.MEASURE

    def test_reset_returns_to_idle(self):
        controller = make_controller()
        controller.request_measurement()
        controller.step()
        controller.reset()
        assert controller.state is ControllerState.IDLE
        assert not controller.busy


class TestSelfHeatingBehaviour:
    def test_auto_disable_turns_oscillator_off_after_measurement(self):
        controller = make_controller(window_cycles=4, settle=1, auto_disable=True)
        controller.run_measurement()
        assert not controller.oscillator_enabled

    def test_free_running_mode_keeps_oscillator_on(self):
        controller = make_controller(window_cycles=4, settle=1, auto_disable=False)
        assert controller.oscillator_enabled
        controller.run_measurement()
        assert controller.oscillator_enabled

    def test_duty_cycle_accounts_only_enabled_cycles(self):
        controller = make_controller(window_cycles=8, settle=2, auto_disable=True)
        cycles = controller.run_measurement()
        # Let it idle for as long again.
        for _ in range(cycles):
            controller.step()
        duty = controller.duty_cycle(2 * cycles)
        assert 0.3 < duty < 0.7

    def test_duty_cycle_requires_positive_total(self):
        with pytest.raises(TechnologyError):
            make_controller().duty_cycle(0)

    def test_run_measurement_reports_cycle_count(self):
        controller = make_controller(window_cycles=8, settle=2)
        cycles = controller.run_measurement()
        # settle + window + done, plus the idle hand-off cycle.
        assert 10 <= cycles <= 14
