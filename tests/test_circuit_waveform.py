"""Unit tests for waveform post-processing."""

import numpy as np
import pytest

from repro.circuit import SimulationError, Waveform, propagation_delay


def square_wave(period=1e-9, cycles=5, samples_per_cycle=100, low=0.0, high=3.3):
    times = np.linspace(0.0, cycles * period, cycles * samples_per_cycle, endpoint=False)
    values = np.where((times % period) < period / 2, high, low)
    return Waveform(times, values, name="square")


def sine_wave(frequency=1e9, cycles=8, samples_per_cycle=64, amplitude=1.0, offset=1.0):
    duration = cycles / frequency
    times = np.linspace(0.0, duration, cycles * samples_per_cycle)
    values = offset + amplitude * np.sin(2 * np.pi * frequency * times)
    return Waveform(times, values, name="sine")


class TestConstruction:
    def test_rejects_mismatched_arrays(self):
        with pytest.raises(SimulationError):
            Waveform(np.array([0.0, 1.0]), np.array([0.0]))

    def test_rejects_single_sample(self):
        with pytest.raises(SimulationError):
            Waveform(np.array([0.0]), np.array([1.0]))

    def test_rejects_nonmonotonic_time(self):
        with pytest.raises(SimulationError):
            Waveform(np.array([0.0, 2.0, 1.0]), np.array([0.0, 1.0, 2.0]))

    def test_basic_statistics(self):
        wave = sine_wave()
        assert wave.minimum() == pytest.approx(0.0, abs=1e-2)
        assert wave.maximum() == pytest.approx(2.0, abs=1e-2)
        assert wave.amplitude() == pytest.approx(2.0, abs=2e-2)


class TestInterpolationAndWindow:
    def test_value_at_interpolates(self):
        wave = Waveform(np.array([0.0, 1.0]), np.array([0.0, 2.0]))
        assert wave.value_at(0.5) == pytest.approx(1.0)

    def test_value_at_outside_range_raises(self):
        wave = Waveform(np.array([0.0, 1.0]), np.array([0.0, 2.0]))
        with pytest.raises(SimulationError):
            wave.value_at(2.0)

    def test_window_extracts_subrange(self):
        wave = sine_wave()
        sub = wave.window(1e-9, 3e-9)
        assert sub.times[0] >= 1e-9
        assert sub.times[-1] <= 3e-9

    def test_window_requires_valid_bounds(self):
        with pytest.raises(SimulationError):
            sine_wave().window(2e-9, 1e-9)

    def test_resampled_preserves_endpoints(self):
        wave = sine_wave()
        resampled = wave.resampled(32)
        assert resampled.sample_count == 32
        assert resampled.times[0] == pytest.approx(wave.times[0])
        assert resampled.times[-1] == pytest.approx(wave.times[-1])


class TestCrossingsAndPeriod:
    def test_rising_crossings_count(self):
        wave = sine_wave(cycles=8)
        crossings = wave.crossings(1.0, "rising")
        assert 7 <= crossings.size <= 8

    def test_period_of_sine(self):
        wave = sine_wave(frequency=1e9, cycles=10)
        assert wave.period(threshold=1.0) == pytest.approx(1e-9, rel=1e-2)

    def test_frequency_inverse_of_period(self):
        wave = sine_wave(frequency=2e9, cycles=10)
        assert wave.frequency(threshold=1.0) == pytest.approx(2e9, rel=1e-2)

    def test_square_wave_duty_cycle(self):
        wave = square_wave()
        assert wave.duty_cycle() == pytest.approx(0.5, abs=0.05)

    def test_period_requires_enough_cycles(self):
        wave = sine_wave(cycles=2)
        with pytest.raises(SimulationError):
            wave.period(threshold=1.0, skip_cycles=3)

    def test_jitter_of_clean_sine_is_small(self):
        wave = sine_wave(frequency=1e9, cycles=12, samples_per_cycle=256)
        assert wave.period_jitter(threshold=1.0) < 0.02e-9

    def test_is_oscillating_detects_dc(self):
        flat = Waveform(np.linspace(0, 1e-9, 100), np.full(100, 1.65))
        assert not flat.is_oscillating(supply=3.3)
        assert square_wave().is_oscillating(supply=3.3)

    def test_unknown_direction_rejected(self):
        with pytest.raises(SimulationError):
            sine_wave().crossings(1.0, "sideways")


class TestPropagationDelay:
    def test_delay_between_shifted_edges(self):
        times = np.linspace(0, 1e-9, 1001)
        vdd = 3.3
        input_values = np.where(times > 0.2e-9, vdd, 0.0)
        output_values = np.where(times > 0.3e-9, 0.0, vdd)
        delay = propagation_delay(
            Waveform(times, input_values), Waveform(times, output_values), vdd,
            edge="falling_output",
        )
        assert delay == pytest.approx(0.1e-9, abs=2e-12)

    def test_missing_transition_raises(self):
        times = np.linspace(0, 1e-9, 100)
        constant = Waveform(times, np.zeros(100))
        step = Waveform(times, np.where(times > 0.5e-9, 3.3, 0.0))
        with pytest.raises(SimulationError):
            propagation_delay(constant, step, 3.3)

    def test_unknown_edge_selector_rejected(self):
        wave = square_wave()
        with pytest.raises(SimulationError):
            propagation_delay(wave, wave, 3.3, edge="diagonal")
