"""Unit tests for the DC operating-point solver."""

import pytest

from repro.circuit import Circuit, DCOptions, SimulationError, solve_dc
from repro.devices import DeviceSizing, MosfetModel
from repro.tech import CMOS035


def build_divider(r_top=1e3, r_bottom=3e3, vdd=3.3):
    circuit = Circuit("divider")
    circuit.add_voltage_source("vdd", "gnd", vdd, name="VDD")
    circuit.add_resistor("vdd", "mid", r_top, name="RT")
    circuit.add_resistor("mid", "gnd", r_bottom, name="RB")
    return circuit


def build_inverter(vin, vdd=3.3, temp_k=300.15):
    circuit = Circuit("inverter_dc")
    circuit.add_voltage_source("vdd", "gnd", vdd, name="VDD")
    circuit.add_voltage_source("in", "gnd", vin, name="VIN")
    nmos = MosfetModel(CMOS035.nmos, DeviceSizing(1.05), temp_k)
    pmos = MosfetModel(CMOS035.pmos, DeviceSizing(2.1), temp_k)
    circuit.add_mosfet("out", "in", "gnd", nmos, name="MN")
    circuit.add_mosfet("out", "in", "vdd", pmos, name="MP")
    return circuit


class TestResistiveCircuits:
    def test_voltage_divider(self):
        result = solve_dc(build_divider())
        assert result.voltage("mid") == pytest.approx(3.3 * 3.0 / 4.0, rel=1e-6)

    def test_supply_current_through_divider(self):
        result = solve_dc(build_divider(r_top=1e3, r_bottom=1e3))
        # Source current flows out of the positive terminal into the divider.
        assert abs(result.supply_current("VDD")) == pytest.approx(3.3 / 2e3, rel=1e-6)

    def test_ground_reads_zero(self):
        result = solve_dc(build_divider())
        assert result.voltage("gnd") == 0.0

    def test_unknown_node_raises(self):
        result = solve_dc(build_divider())
        with pytest.raises(SimulationError):
            result.voltage("does_not_exist")

    def test_current_source_into_resistor(self):
        circuit = Circuit("isrc")
        circuit.add_current_source("gnd", "a", 1e-3, name="I1")
        circuit.add_resistor("a", "gnd", 2e3, name="R1")
        result = solve_dc(circuit)
        assert result.voltage("a") == pytest.approx(2.0, rel=1e-6)


class TestInverterTransferCurve:
    def test_output_high_for_low_input(self):
        result = solve_dc(build_inverter(0.0))
        assert result.voltage("out") > 3.2

    def test_output_low_for_high_input(self):
        result = solve_dc(build_inverter(3.3))
        assert result.voltage("out") < 0.1

    def test_switching_region_near_midpoint(self):
        low = solve_dc(build_inverter(1.2)).voltage("out")
        high = solve_dc(build_inverter(2.1)).voltage("out")
        assert low > high  # transfer curve is monotonically falling

    def test_converges_and_reports_iterations(self):
        result = solve_dc(build_inverter(1.65))
        assert result.converged
        assert result.iterations > 0


class TestOptions:
    def test_invalid_options_rejected(self):
        with pytest.raises(SimulationError):
            DCOptions(max_iterations=0)
        with pytest.raises(SimulationError):
            DCOptions(tolerance_v=0.0)
        with pytest.raises(SimulationError):
            DCOptions(source_steps=0)

    def test_source_stepping_reaches_same_answer(self):
        plain = solve_dc(build_divider())
        stepped = solve_dc(build_divider(), DCOptions(source_steps=5))
        assert stepped.voltage("mid") == pytest.approx(plain.voltage("mid"), rel=1e-6)
