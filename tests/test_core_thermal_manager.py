"""Unit tests for the dynamic-thermal-management closed loop."""

import numpy as np
import pytest

from repro.core import (
    DtmResult,
    DtmTracePoint,
    DynamicThermalManager,
    PerformanceState,
    ThrottlingPolicy,
)
from repro.oscillator import RingConfiguration
from repro.tech import CMOS035, TechnologyError
from repro.thermal import Floorplan, TemperatureMap

# Managers come from the shared dtm_manager_factory fixture in
# conftest.py (the policy-bank suite builds the same ones).


class TestPolicyValidation:
    def test_valid_default_policy(self):
        policy = ThrottlingPolicy()
        assert len(policy.states) == 3

    def test_hysteresis_required(self):
        with pytest.raises(TechnologyError):
            ThrottlingPolicy(throttle_threshold_c=100.0, release_threshold_c=100.0)

    def test_emergency_above_throttle(self):
        with pytest.raises(TechnologyError):
            ThrottlingPolicy(throttle_threshold_c=110.0, emergency_threshold_c=105.0)

    def test_states_must_be_ordered(self):
        with pytest.raises(TechnologyError):
            ThrottlingPolicy(
                states=(
                    PerformanceState("slow", 0.5, 0.5),
                    PerformanceState("fast", 1.0, 1.0),
                )
            )

    def test_invalid_performance_state(self):
        with pytest.raises(TechnologyError):
            PerformanceState("bad", power_scale=2.0, performance=1.0)


class TestPolicyStepLogic:
    def test_hot_reading_steps_down(self):
        policy = ThrottlingPolicy()
        assert policy.next_state_index(0, 112.0) == 1
        assert policy.next_state_index(1, 112.0) == 2

    def test_emergency_jumps_to_last_state(self):
        policy = ThrottlingPolicy()
        assert policy.next_state_index(0, 130.0) == len(policy.states) - 1

    def test_cool_reading_steps_back_up(self):
        policy = ThrottlingPolicy()
        assert policy.next_state_index(2, 80.0) == 1
        assert policy.next_state_index(0, 80.0) == 0

    def test_hysteresis_band_holds_state(self):
        policy = ThrottlingPolicy()
        assert policy.next_state_index(1, 100.0) == 1


def make_result(state_names, limit_c=115.0, interval_s=0.02):
    """A synthetic DtmResult visiting the named states in order."""
    states = {
        "full-speed": (12.0, 1.0),
        "throttled": (7.2, 0.6),
        "emergency": (3.0, 0.2),
    }
    trace = tuple(
        DtmTracePoint(
            time_s=(index + 1) * interval_s,
            state_name=name,
            power_w=states[name][0],
            true_peak_c=100.0 + 5.0 * index,
            hottest_reading_c=100.0 + 5.0 * index,
            performance=states[name][1],
        )
        for index, name in enumerate(state_names)
    )
    final = TemperatureMap(8.0, 8.0, np.full((4, 4), 100.0))
    return DtmResult(trace=trace, limit_c=limit_c, final_map=final)


class TestDtmResultMetrics:
    def test_throttle_events_counts_only_downward_transitions(self):
        result = make_result(
            [
                "full-speed",
                "throttled",      # 1st downward transition
                "full-speed",
                "throttled",      # 2nd
                "emergency",      # 3rd
                "emergency",
                "full-speed",
            ]
        )
        assert result.throttle_events() == 3

    def test_no_events_when_never_throttled(self):
        assert make_result(["full-speed"] * 4).throttle_events() == 0

    def test_emergency_jump_is_one_event(self):
        assert make_result(["full-speed", "emergency"]).throttle_events() == 1

    def test_state_occupancy_fractions(self):
        result = make_result(
            ["full-speed", "throttled", "throttled", "full-speed"]
        )
        occupancy = result.state_occupancy()
        assert occupancy == {"full-speed": 0.5, "throttled": 0.5}
        assert sum(occupancy.values()) == pytest.approx(1.0)

    def test_state_occupancy_preserves_first_seen_order(self):
        result = make_result(["throttled", "full-speed", "throttled"])
        assert list(result.state_occupancy()) == ["throttled", "full-speed"]

    def test_average_performance(self):
        result = make_result(["full-speed", "throttled", "emergency"])
        assert result.average_performance() == pytest.approx((1.0 + 0.6 + 0.2) / 3.0)


class TestClosedLoop:
    @pytest.fixture(scope="class")
    def managed_run(self, dtm_manager_factory):
        manager = dtm_manager_factory()
        return manager.run(
            duration_s=0.6, control_interval_s=0.03, limit_c=115.0, workload_scale=1.6
        )

    def test_trace_covers_duration(self, managed_run):
        assert managed_run.trace[-1].time_s == pytest.approx(0.6, abs=0.03)
        assert len(managed_run.trace) == 20

    def test_throttling_engages_under_overload(self, managed_run):
        states = {point.state_name for point in managed_run.trace}
        assert "throttled" in states or "emergency" in states
        assert managed_run.throttle_events() >= 1

    def test_managed_die_cooler_than_unmanaged(self, managed_run, dtm_manager_factory):
        unmanaged_policy = ThrottlingPolicy(
            throttle_threshold_c=1000.0,
            release_threshold_c=900.0,
            emergency_threshold_c=1100.0,
        )
        unmanaged = dtm_manager_factory(policy=unmanaged_policy).run(
            duration_s=0.6, control_interval_s=0.03, limit_c=115.0, workload_scale=1.6
        )
        assert managed_run.peak_temperature_c() < unmanaged.peak_temperature_c()

    def test_performance_metrics_consistent(self, managed_run):
        assert 0.0 < managed_run.average_performance() <= 1.0
        occupancy = managed_run.state_occupancy()
        assert sum(occupancy.values()) == pytest.approx(1.0)

    def test_policy_override_runs_same_manager_unmanaged(self, managed_run, dtm_manager_factory):
        unmanaged = dtm_manager_factory().run(
            duration_s=0.6,
            control_interval_s=0.03,
            limit_c=115.0,
            workload_scale=1.6,
            policy=ThrottlingPolicy(
                throttle_threshold_c=10_000.0,
                release_threshold_c=9_000.0,
                emergency_threshold_c=11_000.0,
            ),
        )
        assert {point.state_name for point in unmanaged.trace} == {"full-speed"}
        assert unmanaged.peak_temperature_c() > managed_run.peak_temperature_c()

    def test_invalid_run_arguments_rejected(self, dtm_manager_factory):
        manager = dtm_manager_factory()
        with pytest.raises(TechnologyError):
            manager.run(duration_s=0.0)
        with pytest.raises(TechnologyError):
            manager.run(duration_s=0.1, control_interval_s=0.2)
        with pytest.raises(TechnologyError):
            manager.run(duration_s=0.1, control_interval_s=0.01, workload_scale=-1.0)

    def test_requires_floorplan_with_sensor_sites(self):
        with pytest.raises(TechnologyError):
            DynamicThermalManager(
                CMOS035,
                Floorplan.example_processor(),
                RingConfiguration.uniform("INV", 5),
            )
