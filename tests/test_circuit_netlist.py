"""Unit tests for the circuit/netlist container."""

import pytest

from repro.circuit import Circuit, SimulationError
from repro.devices import DeviceSizing, MosfetModel
from repro.tech import CMOS035


def nmos_model():
    return MosfetModel(CMOS035.nmos, DeviceSizing(1.0), 300.0)


class TestNodes:
    def test_ground_aliases_map_to_ground(self):
        circuit = Circuit()
        for alias in ("0", "gnd", "GND", "vss", "ground"):
            assert circuit.node(alias) == -1

    def test_nodes_get_sequential_indices(self):
        circuit = Circuit()
        assert circuit.node("a") == 0
        assert circuit.node("b") == 1
        assert circuit.node("a") == 0  # repeated lookup is stable

    def test_node_names_case_insensitive(self):
        circuit = Circuit()
        circuit.node("VDD")
        assert circuit.has_node("vdd")
        assert circuit.index_of("Vdd") == 0

    def test_index_of_unknown_node_raises(self):
        circuit = Circuit()
        with pytest.raises(SimulationError):
            circuit.index_of("nowhere")

    def test_node_count_excludes_ground(self):
        circuit = Circuit()
        circuit.add_resistor("a", "gnd", 100.0)
        assert circuit.node_count == 1


class TestElementConstruction:
    def test_add_resistor_registers_nodes(self):
        circuit = Circuit()
        circuit.add_resistor("in", "out", 1e3)
        assert circuit.has_node("in") and circuit.has_node("out")
        assert len(circuit.elements) == 1

    def test_add_capacitor_and_sources(self):
        circuit = Circuit()
        circuit.add_capacitor("a", "gnd", 1e-15)
        circuit.add_voltage_source("vdd", "gnd", 3.3)
        circuit.add_current_source("vdd", "a", 1e-6)
        circuit.add_pulse_source("in", "gnd", 0.0, 3.3)
        assert len(circuit.elements) == 4

    def test_add_mosfet_uses_model_polarity(self):
        circuit = Circuit()
        fet = circuit.add_mosfet("d", "g", "s", nmos_model())
        assert not fet.is_pmos

    def test_system_size_counts_branches(self):
        circuit = Circuit()
        circuit.add_voltage_source("vdd", "gnd", 3.3)
        circuit.add_pulse_source("in", "gnd", 0.0, 3.3)
        circuit.add_resistor("vdd", "out", 1e3)
        # nodes: vdd, in, out (3) + 2 source branches
        assert circuit.system_size() == 5

    def test_auto_names_are_unique(self):
        circuit = Circuit()
        r1 = circuit.add_resistor("a", "b", 10.0)
        r2 = circuit.add_resistor("b", "c", 10.0)
        assert r1.name != r2.name


class TestInitialConditions:
    def test_set_and_store(self):
        circuit = Circuit()
        circuit.set_initial_condition("x", 1.5)
        assert circuit.initial_conditions["x"] == pytest.approx(1.5)

    def test_bulk_set(self):
        circuit = Circuit()
        circuit.set_initial_conditions({"a": 0.0, "b": 3.3})
        assert len(circuit.initial_conditions) == 2

    def test_cannot_pin_ground(self):
        circuit = Circuit()
        with pytest.raises(SimulationError):
            circuit.set_initial_condition("gnd", 1.0)


class TestValidation:
    def test_empty_circuit_rejected(self):
        with pytest.raises(SimulationError):
            Circuit().validate()

    def test_floating_circuit_rejected(self):
        circuit = Circuit()
        circuit.add_resistor("a", "b", 100.0)
        with pytest.raises(SimulationError):
            circuit.validate()

    def test_duplicate_names_rejected(self):
        circuit = Circuit()
        circuit.add_resistor("a", "gnd", 100.0, name="R1")
        circuit.add_resistor("b", "gnd", 100.0, name="R1")
        with pytest.raises(SimulationError):
            circuit.validate()

    def test_grounded_circuit_passes(self):
        circuit = Circuit()
        circuit.add_voltage_source("vdd", "gnd", 3.3)
        circuit.add_resistor("vdd", "out", 1e3)
        circuit.add_resistor("out", "gnd", 1e3)
        circuit.validate()
