"""Sweep-spec serialization and content addressing (repro.serve.spec).

Three contracts:

* **lossless round trip** — ``Sweep.from_dict(sweep.to_dict())``
  evaluates bit-identically to the original sweep, through JSON, for
  every serializable axis kind;
* **canonical key** — semantically identical specs (axes declared in
  any order, coordinates in any numeric dtype, defaults spelled or
  omitted) collide on one SHA-256 key, semantically different specs do
  not, and the key of a representative spec is pinned to a committed
  golden hash (a canonicalization drift silently splits the service's
  cache, so it must show up here as a failing test);
* **structured rejection** — live-object bases and axes, unknown
  payloads, and foreign schema versions raise ``SweepError`` with a
  message saying why, instead of serializing something lossy.
"""

import json

import numpy as np
import pytest

from repro.engine import Axis, Sweep, SweepError
from repro.serve import canonical_key, canonical_spec, encode_canonical
from repro.tech import CMOS035, get_technology_digest, sample_technology_array

#: The committed golden pin: the canonical key of GOLDEN_SWEEP below.
#: If an intentional serialization change moves this hash, bump
#: ``Sweep.SCHEMA_VERSION`` and re-pin — never re-pin alone, because a
#: silent key change orphans every cached result in deployed services.
#: (Re-pinned with the v1 -> v2 bump: technology references became
#: content-addressed ``{name, digest}`` objects.)
GOLDEN_KEY = "73a912cb64d994c3021f7cc345d33d13d4d4fb4478c6f852edc266373ff845d6"


def golden_sweep():
    return (
        Sweep(technology=CMOS035)
        .over(Axis.configuration(["5INV", "2INV+3NAND2"]))
        .over(Axis.supply([3.0, 3.3]))
        .over(Axis.temperature([-40.0, 25.0, 125.0]))
        .observe("period")
    )


def sweep_variants():
    temps = [-40.0, 25.0, 125.0]
    population = sample_technology_array(CMOS035, 7, seed=5)
    return {
        "temperature-only": (
            Sweep(technology=CMOS035, configuration="5INV")
            .over(Axis.temperature(temps))
        ),
        "configuration-grid": golden_sweep(),
        "monte-carlo": (
            Sweep(technology=CMOS035, configuration="2INV+3NAND2")
            .over(Axis.sample(population))
            .over(Axis.temperature(temps))
            .observe("code")
        ),
        "sizing": (
            Sweep(technology=CMOS035)
            .over(Axis.width_ratio([1.5, 2.5, 3.5], nmos_width_um=1.05, stage_count=5))
            .over(Axis.temperature(temps))
        ),
        "endpoint-observable": (
            Sweep(technology=CMOS035, configuration="5INV")
            .over(Axis.temperature(temps))
            .observe("calibration_error_c")
        ),
    }


# --------------------------------------------------------------------------- #
# round trips
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("name", sorted(sweep_variants()))
def test_round_trip_runs_bit_identical(name):
    sweep = sweep_variants()[name]
    payload = sweep.to_dict()
    rebuilt = Sweep.from_dict(json.loads(json.dumps(payload)))
    original = sweep.run()
    again = rebuilt.run()
    assert again.dims == original.dims
    assert again.coords == original.coords
    assert again.values.dtype == original.values.dtype
    assert np.array_equal(again.values, original.values)


@pytest.mark.parametrize("name", sorted(sweep_variants()))
def test_serialization_is_idempotent(name):
    payload = sweep_variants()[name].to_dict()
    assert Sweep.from_dict(payload).to_dict() == payload


def test_payload_is_json_clean():
    payload = golden_sweep().to_dict()
    encoded = json.dumps(payload, sort_keys=True, allow_nan=False)
    assert json.loads(encoded) == json.loads(json.dumps(payload))


# --------------------------------------------------------------------------- #
# canonical key
# --------------------------------------------------------------------------- #


def test_golden_key_pin():
    assert canonical_key(golden_sweep()) == GOLDEN_KEY


def test_key_ignores_axis_declaration_order():
    forward = golden_sweep()
    reversed_axes = (
        Sweep(technology=CMOS035)
        .over(Axis.temperature([-40.0, 25.0, 125.0]))
        .over(Axis.supply([3.0, 3.3]))
        .over(Axis.configuration(["5INV", "2INV+3NAND2"]))
        .observe("period")
    )
    assert canonical_key(reversed_axes) == canonical_key(forward)


def test_key_ignores_numeric_dtype_and_json_spelling():
    payload = golden_sweep().to_dict()
    respelled = json.loads(json.dumps(payload))
    for axis in respelled["axes"]:
        if axis["name"] == "temperature":
            axis["coordinates"] = [-40, 25, 125]  # ints, not floats
        if axis["name"] == "supply":
            axis["coordinates"] = [
                np.float64(3.0), np.float64(3.3)
            ]  # numpy scalars survive canonicalization too
    assert canonical_key(respelled) == GOLDEN_KEY


def test_key_ignores_omitted_defaults():
    payload = golden_sweep().to_dict()
    del payload["base"]["tap_stage"]
    del payload["base"]["wire_length_um"]
    assert canonical_key(payload) == GOLDEN_KEY


def test_key_separates_semantic_differences():
    keys = {
        canonical_key(sweep) for sweep in sweep_variants().values()
    }
    assert len(keys) == len(sweep_variants())
    shifted = (
        Sweep(technology=CMOS035)
        .over(Axis.configuration(["5INV", "2INV+3NAND2"]))
        .over(Axis.supply([3.0, 3.3]))
        .over(Axis.temperature([-40.0, 25.0, 120.0]))  # one point moved
        .observe("period")
    )
    assert canonical_key(shifted) != GOLDEN_KEY


def test_canonical_spec_validates():
    with pytest.raises(SweepError, match="takes a Sweep or a serialized"):
        canonical_spec(42)
    with pytest.raises(SweepError, match="missing"):
        canonical_spec({"version": 1})


def test_encode_canonical_rejects_non_json():
    with pytest.raises(SweepError, match="not JSON-serializable"):
        encode_canonical({"values": float("nan")})


# --------------------------------------------------------------------------- #
# structured rejections
# --------------------------------------------------------------------------- #


def test_live_ring_base_does_not_serialize(mixed_ring):
    with pytest.raises(SweepError, match="ring= base"):
        Sweep(ring=mixed_ring).to_dict()


def test_live_library_base_does_not_serialize(library):
    with pytest.raises(SweepError, match="library= base"):
        Sweep(library=library).to_dict()


def test_site_axis_does_not_serialize(sensor_bank_factory):
    axis = Axis.site(sensor_bank_factory(2))
    with pytest.raises(SweepError, match="no serialized form"):
        axis.to_dict()


def test_version_mismatch_is_rejected():
    payload = golden_sweep().to_dict()
    payload["version"] = 99
    with pytest.raises(SweepError, match="version 99"):
        Sweep.from_dict(payload)


def test_unknown_axis_is_rejected():
    payload = golden_sweep().to_dict()
    payload["axes"].append({"name": "frequency", "coordinates": [1.0]})
    with pytest.raises(SweepError, match="frequency"):
        Sweep.from_dict(payload)


def test_unregistered_technology_inlines_its_bundle():
    # Same name as the registered process, different parameters: a name
    # round trip would silently evaluate the wrong technology, so an
    # unregistered node travels as its full inline parameter bundle —
    # and keys differently from the registered node of the same name.
    lowered = CMOS035.with_supply(2.9)
    sweep = Sweep(technology=lowered, configuration="5INV").over(
        Axis.temperature([25.0])
    )
    payload = sweep.to_dict()
    reference = payload["base"]["technology"]
    assert reference["name"] == "cmos035"
    assert "parameters" in reference  # inline, not a bare name reference
    assert reference["digest"] != get_technology_digest("cmos035")
    rebuilt = Sweep.from_dict(json.loads(json.dumps(payload)))
    assert np.array_equal(rebuilt.run().values, sweep.run().values)
    registered = Sweep(technology=CMOS035, configuration="5INV").over(
        Axis.temperature([25.0])
    )
    assert canonical_key(sweep) != canonical_key(registered)
