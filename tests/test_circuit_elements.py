"""Unit tests for individual element stamps and the pulse source."""

import numpy as np
import pytest

from repro.circuit import (
    Capacitor,
    PulseVoltageSource,
    Resistor,
    SimulationError,
    StampContext,
    VoltageSource,
)
from repro.circuit.elements import Mosfet
from repro.devices import DeviceSizing, MosfetModel
from repro.tech import CMOS035


def context(voltages, previous=None, timestep=None, time=0.0):
    return StampContext(
        voltages=np.asarray(voltages, dtype=float),
        previous_voltages=None if previous is None else np.asarray(previous, dtype=float),
        timestep=timestep,
        time=time,
    )


class TestResistorStamp:
    def test_conductance_stamped_symmetrically(self):
        element = Resistor(name="R", node_a=0, node_b=1, ohms=100.0)
        matrix = np.zeros((2, 2))
        rhs = np.zeros(2)
        element.stamp(matrix, rhs, context([0.0, 0.0]))
        g = 1.0 / 100.0
        assert matrix[0, 0] == pytest.approx(g)
        assert matrix[1, 1] == pytest.approx(g)
        assert matrix[0, 1] == pytest.approx(-g)
        assert matrix[1, 0] == pytest.approx(-g)

    def test_ground_connection_skips_rows(self):
        element = Resistor(name="R", node_a=0, node_b=-1, ohms=50.0)
        matrix = np.zeros((1, 1))
        rhs = np.zeros(1)
        element.stamp(matrix, rhs, context([0.0]))
        assert matrix[0, 0] == pytest.approx(1.0 / 50.0)

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(SimulationError):
            Resistor(name="R", node_a=0, node_b=1, ohms=0.0)


class TestCapacitorStamp:
    def test_no_contribution_in_dc(self):
        element = Capacitor(name="C", node_a=0, node_b=-1, farads=1e-12)
        matrix = np.zeros((1, 1))
        rhs = np.zeros(1)
        element.stamp(matrix, rhs, context([1.0]))
        assert matrix[0, 0] == 0.0
        assert rhs[0] == 0.0

    def test_companion_model_in_transient(self):
        element = Capacitor(name="C", node_a=0, node_b=-1, farads=1e-12)
        matrix = np.zeros((1, 1))
        rhs = np.zeros(1)
        element.stamp(matrix, rhs, context([1.0], previous=[0.5], timestep=1e-12))
        geq = 1e-12 / 1e-12
        assert matrix[0, 0] == pytest.approx(geq)
        assert rhs[0] == pytest.approx(geq * 0.5)

    def test_rejects_nonpositive_capacitance(self):
        with pytest.raises(SimulationError):
            Capacitor(name="C", node_a=0, node_b=1, farads=0.0)


class TestVoltageSourceStamp:
    def test_requires_branch_index(self):
        element = VoltageSource(name="V", node_a=0, node_b=-1, voltage=1.0)
        with pytest.raises(SimulationError):
            element.stamp(np.zeros((2, 2)), np.zeros(2), context([0.0]))

    def test_branch_equation_pins_voltage(self):
        element = VoltageSource(name="V", node_a=0, node_b=-1, voltage=2.5)
        matrix = np.zeros((2, 2))
        rhs = np.zeros(2)
        element.stamp(matrix, rhs, context([0.0]), branch_index=1)
        assert matrix[0, 1] == pytest.approx(1.0)
        assert matrix[1, 0] == pytest.approx(1.0)
        assert rhs[1] == pytest.approx(2.5)


class TestPulseSource:
    def make_pulse(self):
        return PulseVoltageSource(
            name="VP",
            node_a=0,
            node_b=-1,
            initial_v=0.0,
            pulsed_v=3.3,
            delay=1e-9,
            rise=0.1e-9,
            fall=0.1e-9,
            width=1e-9,
            period=3e-9,
        )

    def test_value_before_delay(self):
        assert self.make_pulse().value_at(0.5e-9) == pytest.approx(0.0)

    def test_value_during_rise_is_interpolated(self):
        assert self.make_pulse().value_at(1.05e-9) == pytest.approx(1.65, abs=0.01)

    def test_value_at_plateau(self):
        assert self.make_pulse().value_at(1.5e-9) == pytest.approx(3.3)

    def test_value_during_fall(self):
        assert self.make_pulse().value_at(2.15e-9) == pytest.approx(1.65, abs=0.01)

    def test_periodic_repetition(self):
        pulse = self.make_pulse()
        assert pulse.value_at(1.5e-9) == pytest.approx(pulse.value_at(1.5e-9 + 3e-9))

    def test_stamp_uses_context_time(self):
        pulse = self.make_pulse()
        matrix = np.zeros((2, 2))
        rhs = np.zeros(2)
        pulse.stamp(matrix, rhs, context([0.0], time=1.5e-9), branch_index=1)
        assert rhs[1] == pytest.approx(3.3)


class TestMosfetStamp:
    def test_requires_model(self):
        with pytest.raises(SimulationError):
            Mosfet(name="M", drain=0, gate=1, source=-1, model=None)

    def test_nmos_drain_current_sign(self):
        model = MosfetModel(CMOS035.nmos, DeviceSizing(1.0), 300.0)
        fet = Mosfet(name="MN", drain=0, gate=1, source=-1, model=model)
        ctx = context([3.3, 3.3])
        assert fet.drain_current(ctx) > 0.0

    def test_pmos_drain_current_sign(self):
        model = MosfetModel(CMOS035.pmos, DeviceSizing(2.0), 300.0)
        # Source tied to node 0 (at VDD), drain at node 1, gate grounded -> on.
        fet = Mosfet(name="MP", drain=1, gate=-1, source=0, model=model)
        ctx = context([3.3, 0.0])
        assert fet.drain_current(ctx) < 0.0

    def test_stamp_produces_finite_matrix(self):
        model = MosfetModel(CMOS035.nmos, DeviceSizing(1.0), 300.0)
        fet = Mosfet(name="MN", drain=0, gate=1, source=-1, model=model)
        matrix = np.zeros((2, 2))
        rhs = np.zeros(2)
        fet.stamp(matrix, rhs, context([1.0, 2.0]))
        assert np.all(np.isfinite(matrix))
        assert np.all(np.isfinite(rhs))
        assert matrix[0, 0] > 0.0
