"""Unit tests for the ring-oscillator model (analytical path)."""

import pytest

from repro.cells import CellLibrary, buffer_cell, default_library, inverter
from repro.oscillator import ConfigurationError, RingConfiguration, RingOscillator
from repro.tech import CMOS035


class TestConstruction:
    def test_resolves_cells_from_library(self, library):
        ring = RingOscillator(library, RingConfiguration.parse("2INV+3NAND2"))
        kinds = [cell.topology.kind for cell in ring.cells()]
        assert kinds == ["INV", "INV", "NAND", "NAND", "NAND"]

    def test_rejects_noninverting_stage(self, library):
        with pytest.raises(ConfigurationError):
            RingOscillator(library, RingConfiguration(("INV", "BUF", "INV")))

    def test_rejects_unknown_cell(self, library):
        from repro.cells import CellError

        with pytest.raises(CellError):
            RingOscillator(library, RingConfiguration(("INV", "XOR2", "INV")))

    def test_tap_stage_bounds_checked(self, library):
        with pytest.raises(ConfigurationError):
            RingOscillator(
                library, RingConfiguration.uniform("INV", 5), tap_stage=7
            )

    def test_transistor_count_and_area(self, inverter_ring, mixed_ring):
        assert inverter_ring.transistor_count() == 10
        assert mixed_ring.transistor_count() == 2 * 2 + 3 * 4
        assert mixed_ring.area_um2() > inverter_ring.area_um2()

    def test_label_matches_configuration(self, mixed_ring):
        assert mixed_ring.label() == "2INV+3NAND2"


class TestStageLoads:
    def test_each_stage_loaded_by_next_input(self, inverter_ring):
        stages = inverter_ring.stages()
        cin = inverter_ring.cells()[0].input_capacitance()
        for stage in stages:
            assert stage.load_f > cin  # input cap plus wire

    def test_tap_stage_sees_extra_load(self, library):
        plain = RingOscillator(library, RingConfiguration.uniform("INV", 5))
        tapped = RingOscillator(
            library,
            RingConfiguration.uniform("INV", 5),
            external_load_f=10e-15,
            tap_stage=2,
        )
        assert tapped.stages()[2].load_f == pytest.approx(
            plain.stages()[2].load_f + 10e-15
        )
        assert tapped.period(25.0) > plain.period(25.0)

    def test_external_load_without_tap_stage_is_not_dropped(self, library):
        """A non-zero external load must slow the ring even when no
        explicit tap stage is given (it defaults to the last stage)."""
        plain = RingOscillator(library, RingConfiguration.uniform("INV", 5))
        tapped = RingOscillator(
            library, RingConfiguration.uniform("INV", 5), external_load_f=10e-15
        )
        assert tapped.effective_tap_stage() == 4
        assert tapped.stages()[4].load_f == pytest.approx(
            plain.stages()[4].load_f + 10e-15
        )
        assert tapped.period(25.0) > plain.period(25.0)
        # The default is only engaged when there is a load to carry.
        assert plain.effective_tap_stage() is None

    def test_explicit_tap_stage_wins_over_default(self, library):
        tapped = RingOscillator(
            library,
            RingConfiguration.uniform("INV", 5),
            external_load_f=10e-15,
            tap_stage=1,
        )
        assert tapped.effective_tap_stage() == 1
        loads = [stage.load_f for stage in tapped.stages()]
        assert loads[1] == pytest.approx(max(loads))


class TestPeriod:
    def test_period_positive_and_subnanosecond(self, inverter_ring):
        period = inverter_ring.period(25.0)
        assert 50e-12 < period < 1e-9

    def test_period_increases_with_temperature(self, inverter_ring):
        assert inverter_ring.period(150.0) > inverter_ring.period(25.0) > inverter_ring.period(-50.0)

    def test_frequency_is_reciprocal(self, inverter_ring):
        assert inverter_ring.frequency(25.0) == pytest.approx(1.0 / inverter_ring.period(25.0))

    def test_period_series_matches_scalar(self, inverter_ring):
        series = inverter_ring.period_series([0.0, 50.0])
        assert series[0] == pytest.approx(inverter_ring.period(0.0))
        assert series[1] == pytest.approx(inverter_ring.period(50.0))

    def test_sensitivity_positive(self, inverter_ring):
        assert inverter_ring.sensitivity(25.0) > 0.0

    def test_more_stages_longer_period(self, library):
        five = RingOscillator(library, RingConfiguration.uniform("INV", 5)).period(25.0)
        nine = RingOscillator(library, RingConfiguration.uniform("INV", 9)).period(25.0)
        assert nine > five
        # Period should scale close to proportionally with stage count.
        assert nine / five == pytest.approx(9.0 / 5.0, rel=0.05)

    def test_nand_ring_slower_than_inverter_ring(self, library, inverter_ring):
        nand_ring = RingOscillator(library, RingConfiguration.uniform("NAND2", 5))
        assert nand_ring.period(25.0) > inverter_ring.period(25.0)

    def test_dynamic_power_milliwatt_scale(self, inverter_ring):
        power = inverter_ring.dynamic_power(25.0)
        assert 1e-5 < power < 1e-2

    def test_dynamic_power_decreases_with_temperature(self, inverter_ring):
        # Slower oscillation at high temperature means less switching power.
        assert inverter_ring.dynamic_power(150.0) < inverter_ring.dynamic_power(-50.0)


class TestCircuitGeneration:
    def test_netlist_element_counts(self, inverter_ring):
        circuit = inverter_ring.build_circuit(25.0)
        fets = [e for e in circuit.elements if e.__class__.__name__ == "Mosfet"]
        caps = [e for e in circuit.elements if e.__class__.__name__ == "Capacitor"]
        assert len(fets) == 10
        assert len(caps) == 5

    def test_initial_conditions_installed(self, inverter_ring):
        circuit = inverter_ring.build_circuit(25.0)
        assert len(circuit.initial_conditions) == 6  # 5 stages + vdd

    def test_stage_node_names(self, inverter_ring):
        assert inverter_ring.stage_node(0) == "s0"
        with pytest.raises(ConfigurationError):
            inverter_ring.stage_node(11)

    def test_simulate_requires_more_than_one_cycle(self, inverter_ring):
        with pytest.raises(ConfigurationError):
            inverter_ring.simulate(25.0, cycles=0.5)
