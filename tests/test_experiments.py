"""Unit tests for the experiment entry points (structure, not paper claims).

These verify that each experiment runs, returns a well-formed result and
renders a report; the *paper claims* the experiments quantify are
asserted separately in test_integration_paper_claims.py.
"""

import numpy as np
import pytest

from repro.experiments import (
    default_registry,
    run_all,
    run_baseline_comparison,
    run_calibration_study,
    run_fig2,
    run_fig3,
    run_selfheating_study,
    run_smart_unit,
    run_stage_count,
)
from repro.tech import CMOS035

TEMPS = [-50.0, 0.0, 50.0, 100.0, 150.0]


class TestFig2Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2(CMOS035, temperatures_c=TEMPS)

    def test_all_ratios_have_curves(self, result):
        curves = result.error_curves_percent()
        assert set(curves) == {1.75, 2.25, 3.0, 4.0}
        for errors in curves.values():
            assert errors.shape == (5,)

    def test_table_contains_every_ratio(self, result):
        table = result.format_table()
        for ratio in (1.75, 2.25, 3.0, 4.0):
            assert f"{ratio:5.2f}" in table

    def test_best_ratio_reported(self, result):
        assert result.best_ratio() in (1.75, 2.25, 3.0, 4.0)
        assert result.best_max_error_percent() >= 0.0


class TestFig3Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(CMOS035, temperatures_c=TEMPS, run_search=False)

    def test_paper_configurations_evaluated(self, result):
        assert set(result.candidates) == {
            "5INV",
            "3INV+2NAND3",
            "3NAND3+2NOR2",
            "2INV+3NAND2",
            "5NAND2",
            "2INV+3NOR2",
        }

    def test_inverter_reference_found(self, result):
        assert result.inverter_reference().label == "5INV"

    def test_table_lists_every_configuration(self, result):
        table = result.format_table()
        for label in result.candidates:
            assert label in table

    def test_best_configuration_consistent(self, result):
        best = result.best_paper_configuration()
        assert best.max_abs_error_percent == min(
            c.max_abs_error_percent for c in result.candidates.values()
        )


class TestStageCountExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_stage_count(CMOS035, temperatures_c=TEMPS)

    def test_paper_stage_counts(self, result):
        assert [p.stage_count for p in result.points] == [5, 9, 21]

    def test_periods_scale_with_stage_count(self, result):
        assert result.period_scaling_error() < 0.05

    def test_table_renders(self, result):
        assert "stages" in result.format_table()


class TestSmartUnitExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_smart_unit(CMOS035, temperatures_c=TEMPS, sensor_grid=2)

    def test_transfer_monotonic(self, result):
        assert result.transfer.is_monotonic()

    def test_power_saving_reported(self, result):
        assert result.power_saving_factor() > 10.0

    def test_summary_contains_key_lines(self, result):
        text = result.format_summary()
        assert "conversion time" in text
        assert "worst calibrated error" in text

    def test_mapping_sensor_count(self, result):
        assert result.sensor_count == 4
        assert len(result.mapping_report.site_estimates_c) == 4


class TestBaselineAndAblationExperiments:
    def test_baseline_comparison_rows(self):
        result = run_baseline_comparison(CMOS035, temperatures_c=TEMPS)
        names = [entry.name for entry in result.entries]
        assert "proposed cell-mix ring" in names
        assert "diode delta-VBE sensor" in names
        assert "FPGA-style ring [5]" in names
        assert "inverter-only ring" in names
        assert "worst err" in result.format_table()

    def test_selfheating_study_monotone_in_duty(self):
        result = run_selfheating_study(
            CMOS035, duty_cycles=(1.0, 0.1, 0.01), grid_resolution=12
        )
        rises = [r.temperature_rise_c for r in result.reports]
        assert rises == sorted(rises, reverse=True)
        assert result.improvement_factor() > 10.0

    def test_calibration_study_scheme_ordering(self):
        result = run_calibration_study(
            CMOS035, monte_carlo_samples=4, temperatures_c=TEMPS, seed=5
        )
        assert result.worst_by_scheme["two-point"] < result.worst_by_scheme["one-point"]
        assert result.worst_by_scheme["one-point"] < result.worst_by_scheme["design"]
        assert "two-point" in result.format_table()


class TestRunner:
    def test_registry_contains_all_experiments(self):
        registry = default_registry()
        assert set(registry.names()) == {
            "FIG1",
            "FIG2",
            "FIG3",
            "STAGES",
            "SMART",
            "BASE",
            "ABL-SELFHEAT",
            "ABL-CAL",
            "EXT-SUPPLY",
            "EXT-SCALING",
            "EXT-DTM",
            "EXT-DTMSWEEP",
            "EXT-THERMALMAP",
            "EXT-THERMALRES",
            "EXT-PLACEMENT",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            default_registry().run("FIG9", CMOS035)

    def test_run_all_selected_subset(self):
        report = run_all(CMOS035, only=["STAGES"])
        assert "STAGES" in report
        assert "FIG2" not in report.split("=" * 78)[-1]
