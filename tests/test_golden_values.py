"""Golden-value regression tests for the paper-facing numbers.

The equivalence harness proves the vectorized engine matches the scalar
oracle *today*; these tests pin the absolute numbers the reproduction
reports — the Fig. 2 / Fig. 3 sweep outputs and the Monte-Carlo
spread/linearity summaries at a fixed seed — so a future refactor of
either path cannot silently drift the reproduction.  Tolerances are
loose enough to absorb last-ULP libm differences between platforms but
far tighter than any modelling change could hide under.
"""

import numpy as np
import pytest

from repro.engine import BatchEvaluator
from repro.experiments import run_fig2, run_fig3
from repro.oscillator import RingConfiguration, RingOscillator
from repro.cells import default_library
from repro.tech import CMOS035

#: Deterministic closed-form outputs: pinned to 1e-9 relative.
RTOL = 1e-9
#: Outputs of iterative optimisation / percent-of-span normalisation.
RTOL_LOOSE = 1e-6


class TestRingGolden:
    def test_inverter_ring_periods(self, inverter_ring):
        assert inverter_ring.period(25.0) == pytest.approx(2.0736549571147523e-10, rel=RTOL)
        series = inverter_ring.period_series(
            np.asarray([-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0])
        )
        assert series[0] == pytest.approx(1.4898449906930195e-10, rel=RTOL)
        assert series[-1] == pytest.approx(3.0250198858616756e-10, rel=RTOL)


class TestFig2Golden:
    @pytest.fixture(scope="class")
    def fig2(self):
        return run_fig2()

    def test_per_ratio_worst_case_errors(self, fig2):
        expected = {
            1.75: 0.8190453095308959,
            2.25: 0.4932272414173055,
            3.0: 0.17044689534840643,
            4.0: 0.3034905966026263,
        }
        observed = {
            point.width_ratio: point.max_abs_error_percent
            for point in fig2.sweep.points
        }
        assert observed.keys() == expected.keys()
        for ratio, value in expected.items():
            assert observed[ratio] == pytest.approx(value, rel=RTOL_LOOSE)

    def test_best_ratio_and_continuous_optimum(self, fig2):
        assert fig2.best_ratio() == 3.0
        assert fig2.best_max_error_percent() == pytest.approx(
            0.17044689534840643, rel=RTOL_LOOSE
        )
        # The continuous optimum comes out of a bounded scalar minimiser
        # (xatol 1e-3), so pin its location more loosely than its value.
        assert fig2.optimum.width_ratio == pytest.approx(3.2120133500041512, abs=5e-3)
        assert fig2.optimum.max_abs_error_percent == pytest.approx(
            0.1117688322501181, rel=1e-4
        )


class TestFig3Golden:
    @pytest.fixture(scope="class")
    def fig3(self):
        return run_fig3()

    def test_inverter_reference_error(self, fig3):
        assert fig3.inverter_reference().max_abs_error_percent == pytest.approx(
            0.6428809013370539, rel=RTOL_LOOSE
        )

    def test_exhaustive_search_optimum(self, fig3):
        best = fig3.best_searched_configuration()
        assert best.label == "2INV+1NAND2+2NAND3"
        assert best.max_abs_error_percent == pytest.approx(
            0.12601043557210082, rel=RTOL_LOOSE
        )
        assert fig3.search.evaluated_count == 126


class TestMonteCarloGolden:
    @pytest.fixture(scope="class")
    def study(self):
        return BatchEvaluator().run_monte_carlo(
            CMOS035,
            RingConfiguration.parse("2INV+3NAND2"),
            sample_count=25,
            seed=1234,
        )

    def test_period_spread_percent(self, study):
        assert study.period_spread_percent == pytest.approx(
            12.97044598430506, rel=RTOL_LOOSE
        )

    def test_nonlinearity_summary(self, study):
        assert study.nonlinearity_percent.mean == pytest.approx(
            0.21590981158531222, rel=RTOL_LOOSE
        )
        assert study.nonlinearity_percent.maximum == pytest.approx(
            0.2766829323505351, rel=RTOL_LOOSE
        )

    def test_reference_period_and_sensitivity(self, study):
        assert study.period_at_reference.mean == pytest.approx(
            3.200734678447283e-10, rel=RTOL
        )
        assert study.sensitivity_s_per_k.mean == pytest.approx(
            1.2446745834258144e-12, rel=RTOL
        )


class TestCalibrationStudyGolden:
    """Pins the batched (stacked sample axis) calibration-ablation numbers.

    Default study parameters: 5 corners + 12 Monte-Carlo samples at
    seed 20250617, the 17-point default sweep, one-point insertion at
    25 C.  The batched path is pinned both against these absolute
    values and (in test_stacked_equivalence.py) against the per-sample
    scalar loop.
    """

    @pytest.fixture(scope="class")
    def study(self):
        from repro.experiments.calibration_study import run_calibration_study

        return run_calibration_study()

    def test_population_size(self, study):
        assert study.sample_count == 17

    def test_design_scheme_errors(self, study):
        assert study.errors_by_scheme["design"].mean == pytest.approx(
            12.201502644026158, rel=RTOL_LOOSE
        )
        assert study.worst_by_scheme["design"] == pytest.approx(
            44.09911357949986, rel=RTOL_LOOSE
        )

    def test_one_point_scheme_errors(self, study):
        assert study.errors_by_scheme["one-point"].mean == pytest.approx(
            4.305839797123523, rel=RTOL_LOOSE
        )
        assert study.worst_by_scheme["one-point"] == pytest.approx(
            13.715326729787478, rel=RTOL_LOOSE
        )

    def test_two_point_scheme_errors(self, study):
        assert study.errors_by_scheme["two-point"].mean == pytest.approx(
            0.4568303249181072, rel=RTOL_LOOSE
        )
        assert study.worst_by_scheme["two-point"] == pytest.approx(
            0.8932205266853543, rel=RTOL_LOOSE
        )

    def test_calibration_effort_ordering(self, study):
        # The paper's argument: every added calibration point buys a
        # large error reduction, and two points leave only the intrinsic
        # non-linearity plus quantisation.
        assert (
            study.worst_by_scheme["two-point"]
            < study.worst_by_scheme["one-point"]
            < study.worst_by_scheme["design"]
        )
