"""Unit tests for repro.tech.parameters."""

import math

import pytest

from repro.tech.parameters import (
    T_NOMINAL_K,
    Technology,
    TechnologyError,
    TransistorParameters,
    celsius_to_kelvin,
    kelvin_to_celsius,
    validate_operating_point,
)


def make_nmos(**overrides):
    base = dict(
        polarity="nmos",
        vth0=0.55,
        mobility=430.0,
        alpha=1.3,
        channel_length_um=0.35,
        cox_f_per_um2=4.6e-15,
        vsat_cm_per_s=8.0e6,
        vth_temp_coeff=0.9e-3,
        mobility_temp_exponent=1.5,
    )
    base.update(overrides)
    return TransistorParameters(**base)


class TestUnitConversions:
    def test_celsius_to_kelvin_roundtrip(self):
        assert celsius_to_kelvin(25.0) == pytest.approx(298.15)
        assert kelvin_to_celsius(celsius_to_kelvin(-50.0)) == pytest.approx(-50.0)

    def test_zero_celsius(self):
        assert celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_nominal_temperature_is_room(self):
        assert kelvin_to_celsius(T_NOMINAL_K) == pytest.approx(27.0, abs=0.01)


class TestTransistorParameters:
    def test_valid_construction(self):
        params = make_nmos()
        assert params.polarity == "nmos"
        assert params.vth0 == pytest.approx(0.55)

    def test_rejects_bad_polarity(self):
        with pytest.raises(TechnologyError):
            make_nmos(polarity="cmos")

    def test_rejects_negative_vth(self):
        with pytest.raises(TechnologyError):
            make_nmos(vth0=-0.1)

    def test_rejects_zero_mobility(self):
        with pytest.raises(TechnologyError):
            make_nmos(mobility=0.0)

    def test_rejects_alpha_outside_physical_range(self):
        with pytest.raises(TechnologyError):
            make_nmos(alpha=0.8)
        with pytest.raises(TechnologyError):
            make_nmos(alpha=2.5)

    def test_rejects_negative_temperature_coefficients(self):
        with pytest.raises(TechnologyError):
            make_nmos(vth_temp_coeff=-0.001)
        with pytest.raises(TechnologyError):
            make_nmos(mobility_temp_exponent=-1.0)

    def test_gate_cap_includes_overlap(self):
        params = make_nmos()
        bare = params.cox_f_per_um2 * params.channel_length_um
        assert params.gate_cap_f_per_um > bare

    def test_process_transconductance_units(self):
        params = make_nmos()
        # mu*Cox for 430 cm^2/Vs and 4.6 fF/um^2 is about 2e-4 A/V^2.
        assert params.process_transconductance == pytest.approx(1.978e-4, rel=1e-3)

    def test_scaled_returns_modified_copy(self):
        params = make_nmos()
        faster = params.scaled(mobility=500.0)
        assert faster.mobility == pytest.approx(500.0)
        assert params.mobility == pytest.approx(430.0)
        assert faster.vth0 == params.vth0


class TestTechnology:
    def make_tech(self, **overrides):
        pmos = make_nmos(polarity="pmos", vth0=0.65, mobility=160.0, alpha=1.7)
        base = dict(
            name="testtech",
            feature_size_um=0.35,
            vdd=3.3,
            nmos=make_nmos(),
            pmos=pmos,
        )
        base.update(overrides)
        return Technology(**base)

    def test_valid_construction(self):
        tech = self.make_tech()
        assert tech.vdd == pytest.approx(3.3)

    def test_rejects_swapped_polarities(self):
        with pytest.raises(TechnologyError):
            self.make_tech(nmos=make_nmos(polarity="pmos", vth0=0.65))

    def test_rejects_supply_below_threshold(self):
        with pytest.raises(TechnologyError):
            self.make_tech(vdd=0.5)

    def test_transistor_lookup(self):
        tech = self.make_tech()
        assert tech.transistor("nmos").polarity == "nmos"
        assert tech.transistor("pmos").polarity == "pmos"
        with pytest.raises(TechnologyError):
            tech.transistor("bjt")

    def test_with_supply_returns_copy(self):
        tech = self.make_tech()
        lowered = tech.with_supply(2.5)
        assert lowered.vdd == pytest.approx(2.5)
        assert tech.vdd == pytest.approx(3.3)

    def test_with_transistors_replaces_selectively(self):
        tech = self.make_tech()
        new_nmos = make_nmos(vth0=0.5)
        replaced = tech.with_transistors(nmos=new_nmos)
        assert replaced.nmos.vth0 == pytest.approx(0.5)
        assert replaced.pmos.vth0 == pytest.approx(0.65)

    def test_beta_ratio_is_mobility_ratio(self):
        tech = self.make_tech()
        assert tech.beta_ratio() == pytest.approx(430.0 / 160.0)

    def test_thermal_design_range_default(self):
        tech = self.make_tech()
        assert tech.thermal_design_range_c() == (-50.0, 150.0)


class TestOperatingPointValidation:
    def test_accepts_military_range(self):
        for temp in (-55.0, 25.0, 150.0):
            validate_operating_point(_simple_tech(), temp)

    def test_rejects_cryogenic(self):
        with pytest.raises(TechnologyError):
            validate_operating_point(_simple_tech(), -250.0)

    def test_rejects_extreme_heat(self):
        with pytest.raises(TechnologyError):
            validate_operating_point(_simple_tech(), 400.0)

    def test_rejects_nan(self):
        with pytest.raises(TechnologyError):
            validate_operating_point(_simple_tech(), float("nan"))


def _simple_tech() -> Technology:
    pmos = make_nmos(polarity="pmos", vth0=0.65, mobility=160.0, alpha=1.7)
    return Technology(
        name="simple", feature_size_um=0.35, vdd=3.3, nmos=make_nmos(), pmos=pmos
    )
