"""Unit tests for the transient solver (RC circuits and CMOS switching)."""

import numpy as np
import pytest

from repro.circuit import Circuit, SimulationError, TransientOptions, simulate_transient
from repro.devices import DeviceSizing, MosfetModel
from repro.tech import CMOS035


def build_rc(r_ohm=1e3, c_farad=1e-12, vdd=1.0):
    circuit = Circuit("rc")
    circuit.add_voltage_source("vdd", "gnd", vdd, name="VDD")
    circuit.add_resistor("vdd", "out", r_ohm, name="R")
    circuit.add_capacitor("out", "gnd", c_farad, name="C")
    circuit.set_initial_conditions({"out": 0.0, "vdd": vdd})
    return circuit


class TestOptions:
    def test_rejects_nonpositive_timestep(self):
        with pytest.raises(SimulationError):
            TransientOptions(timestep=0.0)

    def test_rejects_bad_store_every(self):
        with pytest.raises(SimulationError):
            TransientOptions(store_every=0)

    def test_rejects_nonpositive_duration(self):
        circuit = build_rc()
        with pytest.raises(SimulationError):
            simulate_transient(circuit, duration=0.0)


class TestRCCharging:
    def test_exponential_charging_curve(self):
        tau = 1e-9  # 1 kohm * 1 pF
        circuit = build_rc()
        options = TransientOptions(timestep=tau / 200.0, use_dc_start=False)
        result = simulate_transient(circuit, duration=3.0 * tau, options=options)
        wave = result.waveform("out")
        # After one time constant the capacitor voltage is ~63 % of VDD.
        assert wave.value_at(tau) == pytest.approx(1.0 - np.exp(-1.0), abs=0.02)
        # After three it is ~95 %.
        assert wave.value_at(3.0 * tau) == pytest.approx(1.0 - np.exp(-3.0), abs=0.02)

    def test_final_value_approaches_supply(self):
        circuit = build_rc()
        options = TransientOptions(timestep=5e-12, use_dc_start=False)
        result = simulate_transient(circuit, duration=10e-9, options=options)
        assert result.waveform("out").values[-1] == pytest.approx(1.0, abs=0.01)

    def test_store_every_decimates(self):
        circuit = build_rc()
        dense = simulate_transient(
            circuit, 1e-9, TransientOptions(timestep=1e-12, use_dc_start=False)
        )
        sparse = simulate_transient(
            circuit, 1e-9, TransientOptions(timestep=1e-12, use_dc_start=False, store_every=10)
        )
        assert sparse.times.size < dense.times.size

    def test_record_nodes_filter(self):
        circuit = build_rc()
        result = simulate_transient(
            circuit,
            1e-9,
            TransientOptions(timestep=1e-12, use_dc_start=False),
            record_nodes=["out"],
        )
        assert result.node_names() == ["out"]
        with pytest.raises(SimulationError):
            result.waveform("vdd")

    def test_unknown_record_node_rejected(self):
        circuit = build_rc()
        with pytest.raises(SimulationError):
            simulate_transient(
                circuit,
                1e-9,
                TransientOptions(timestep=1e-12, use_dc_start=False),
                record_nodes=["bogus"],
            )


class TestPulseDrivenInverter:
    def test_inverter_responds_to_pulse(self):
        temp_k = 300.15
        vdd = CMOS035.vdd
        circuit = Circuit("pulse_inverter")
        circuit.add_voltage_source("vdd", "gnd", vdd, name="VDD")
        circuit.add_pulse_source(
            "in", "gnd", 0.0, vdd, delay=50e-12, rise=20e-12, fall=20e-12, width=600e-12,
            name="VIN",
        )
        nmos = MosfetModel(CMOS035.nmos, DeviceSizing(1.05), temp_k)
        pmos = MosfetModel(CMOS035.pmos, DeviceSizing(2.1), temp_k)
        circuit.add_mosfet("out", "in", "gnd", nmos, name="MN")
        circuit.add_mosfet("out", "in", "vdd", pmos, name="MP")
        circuit.add_capacitor("out", "gnd", 20e-15, name="CL")
        circuit.set_initial_conditions({"in": 0.0, "out": vdd, "vdd": vdd})

        result = simulate_transient(
            circuit, 1.0e-9, TransientOptions(timestep=1e-12, use_dc_start=False)
        )
        out = result.waveform("out")
        # Output starts high, falls after the input rises, rises again
        # after the input falls back.
        assert out.values[0] == pytest.approx(vdd, abs=0.05)
        assert out.minimum() < 0.2
        assert out.values[-1] > 0.8 * vdd

    def test_dc_start_used_when_no_initial_conditions(self):
        circuit = Circuit("dc_start")
        circuit.add_voltage_source("vdd", "gnd", 1.0, name="VDD")
        circuit.add_resistor("vdd", "out", 1e3, name="R")
        circuit.add_capacitor("out", "gnd", 1e-12, name="C")
        result = simulate_transient(
            circuit, 1e-9, TransientOptions(timestep=1e-11, use_dc_start=True)
        )
        # DC start means the capacitor is already charged; nothing moves.
        wave = result.waveform("out")
        assert wave.values[0] == pytest.approx(1.0, abs=1e-3)
        assert wave.values[-1] == pytest.approx(1.0, abs=1e-3)
