"""Unit tests for the sensor multiplexer and the thermal monitor."""

import pytest

from repro.core import ReadoutConfig, SensorMultiplexer, SmartTemperatureSensor, ThermalMonitor
from repro.oscillator import RingConfiguration
from repro.tech import CMOS035, TechnologyError
from repro.thermal import Floorplan


def make_sensor(tech, name):
    return SmartTemperatureSensor.from_configuration(
        tech, RingConfiguration.parse("2INV+3NAND2"), name=name
    )


@pytest.fixture()
def mux(tech):
    return SensorMultiplexer([make_sensor(tech, f"ch{i}") for i in range(3)])


class TestMultiplexer:
    def test_requires_at_least_one_sensor(self):
        with pytest.raises(TechnologyError):
            SensorMultiplexer([])

    def test_requires_unique_names(self, tech):
        with pytest.raises(TechnologyError):
            SensorMultiplexer([make_sensor(tech, "dup"), make_sensor(tech, "dup")])

    def test_select_and_measure(self, mux):
        mux.select("ch1")
        assert mux.selected == "ch1"
        reading = mux.measure_selected(60.0)
        assert reading.code > 0

    def test_select_unknown_channel_rejected(self, mux):
        with pytest.raises(TechnologyError):
            mux.select("ch9")

    def test_scan_covers_all_channels(self, mux):
        mux.calibrate_all_two_point(-50.0, 150.0)
        result = mux.scan({"ch0": 50.0, "ch1": 80.0, "ch2": 65.0})
        assert set(result.readings) == {"ch0", "ch1", "ch2"}
        assert result.total_time_s > 0.0

    def test_scan_requires_all_temperatures(self, mux):
        with pytest.raises(TechnologyError):
            mux.scan({"ch0": 50.0})

    def test_hottest_channel_identified(self, mux):
        mux.calibrate_all_two_point(-50.0, 150.0)
        result = mux.scan({"ch0": 50.0, "ch1": 95.0, "ch2": 65.0})
        assert result.hottest_channel() == "ch1"

    def test_scan_estimates_track_truth(self, mux):
        mux.calibrate_all_two_point(-50.0, 150.0)
        result = mux.scan({"ch0": 50.0, "ch1": 80.0, "ch2": 65.0})
        for name, truth in {"ch0": 50.0, "ch1": 80.0, "ch2": 65.0}.items():
            assert result.readings[name].temperature_estimate_c == pytest.approx(truth, abs=1.0)


@pytest.fixture(scope="module")
def monitor_report(tech):
    floorplan = Floorplan.example_processor()
    floorplan.add_sensor_grid(2, 2)
    monitor = ThermalMonitor(
        tech,
        floorplan,
        RingConfiguration.parse("2INV+3NAND2"),
        grid_resolution=16,
    )
    monitor.calibrate(-50.0, 150.0)
    return monitor, monitor.scan()


class TestThermalMonitor:
    def test_requires_sensor_sites(self, tech):
        with pytest.raises(TechnologyError):
            ThermalMonitor(tech, Floorplan.example_processor(), RingConfiguration.uniform("INV", 5))

    def test_scan_requires_calibration(self, tech):
        floorplan = Floorplan.example_processor()
        floorplan.add_sensor_grid(2, 2)
        monitor = ThermalMonitor(
            tech, floorplan, RingConfiguration.uniform("INV", 5), grid_resolution=16
        )
        with pytest.raises(TechnologyError):
            monitor.scan()

    def test_site_errors_small(self, monitor_report):
        _, report = monitor_report
        assert report.worst_site_error_c() < 1.0

    def test_true_map_has_gradient(self, monitor_report):
        _, report = monitor_report
        assert report.true_map.gradient_c() > 2.0

    def test_reconstruction_error_bounded(self, monitor_report):
        _, report = monitor_report
        assert report.map_rms_error_c() < report.true_map.gradient_c()

    def test_overheating_detection_threshold(self, monitor_report):
        monitor, report = monitor_report
        none_hot = monitor.detect_overheating(report, threshold_c=500.0)
        all_hot = monitor.detect_overheating(report, threshold_c=-100.0)
        assert none_hot == []
        assert len(all_hot) == 4

    def test_reconstructed_map_within_true_range(self, monitor_report):
        _, report = monitor_report
        assert report.reconstructed_map.max_c() <= report.true_map.max_c() + 1.0
        assert report.reconstructed_map.min_c() >= report.true_map.min_c() - 1.0
