"""Unit tests for ring-oscillator configurations and the compact notation."""

import pytest

from repro.oscillator import (
    PAPER_FIG3_CONFIGURATIONS,
    ConfigurationError,
    RingConfiguration,
    paper_fig3_configurations,
)


class TestConstruction:
    def test_minimum_three_stages(self):
        with pytest.raises(ConfigurationError):
            RingConfiguration(("INV",))

    def test_even_stage_count_rejected(self):
        with pytest.raises(ConfigurationError):
            RingConfiguration(("INV", "INV", "INV", "INV"))

    def test_names_normalised_to_uppercase(self):
        config = RingConfiguration(("inv", "nand2", "inv"))
        assert config.stages == ("INV", "NAND2", "INV")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            RingConfiguration(("INV", "", "INV"))

    def test_uniform_constructor(self):
        config = RingConfiguration.uniform("NAND2", 7)
        assert config.stage_count == 7
        assert config.is_uniform()

    def test_from_counts_preserves_order(self):
        config = RingConfiguration.from_counts([("INV", 2), ("NAND2", 3)])
        assert config.stages == ("INV", "INV", "NAND2", "NAND2", "NAND2")


class TestParsing:
    def test_parse_simple_group(self):
        assert RingConfiguration.parse("5INV").stage_count == 5

    def test_parse_mixed_groups(self):
        config = RingConfiguration.parse("2INV+3NAND2")
        assert config.counts() == {"INV": 2, "NAND2": 3}

    def test_parse_bare_name_counts_one(self):
        config = RingConfiguration.parse("INV+2NAND2+2NOR2")
        assert config.stage_count == 5

    def test_parse_rejects_empty_string(self):
        with pytest.raises(ConfigurationError):
            RingConfiguration.parse("   ")

    def test_parse_rejects_zero_count(self):
        with pytest.raises(ConfigurationError):
            RingConfiguration.parse("0INV+5NAND2")

    def test_parse_rejects_empty_group(self):
        with pytest.raises(ConfigurationError):
            RingConfiguration.parse("2INV++3NAND2")

    def test_label_round_trip(self):
        for text in ("5INV", "2INV+3NAND2", "3NAND3+2NOR2"):
            assert RingConfiguration.parse(text).label() == text

    def test_str_is_label(self):
        config = RingConfiguration.parse("5NAND2")
        assert str(config) == "5NAND2"


class TestQueries:
    def test_counts_summary(self):
        config = RingConfiguration.parse("3INV+2NAND3")
        assert config.counts() == {"INV": 3, "NAND3": 2}

    def test_with_stage_count_for_uniform(self):
        config = RingConfiguration.uniform("INV", 5).with_stage_count(9)
        assert config.stage_count == 9

    def test_with_stage_count_rejects_mixed(self):
        with pytest.raises(ConfigurationError):
            RingConfiguration.parse("2INV+3NAND2").with_stage_count(9)


class TestPaperConfigurations:
    def test_six_configurations(self):
        assert len(PAPER_FIG3_CONFIGURATIONS) == 6

    def test_all_are_five_stages(self):
        for config in PAPER_FIG3_CONFIGURATIONS.values():
            assert config.stage_count == 5

    def test_includes_plain_inverter_ring(self):
        assert "5INV" in PAPER_FIG3_CONFIGURATIONS

    def test_factory_returns_fresh_dict(self):
        first = paper_fig3_configurations()
        second = paper_fig3_configurations()
        assert first is not second
        assert first.keys() == second.keys()
