"""Equivalence, property and golden tests for the banked DTM policy path.

The :class:`repro.core.PolicyBank` contract is that one banked closed
loop (:meth:`DynamicThermalManager.run_bank` — a single multi-RHS
backward-Euler solve, bilinear site gather, broadcast sensor scan and
vectorized FSM step per timestep) computes exactly what the retained
scalar :meth:`DynamicThermalManager.run` oracle computes policy by
policy: *identical* throttle decisions and temperatures to 1e-9
relative.  The example-processor policy sweep's headline numbers are
pinned as golden values, and the sweep engine's ``resolution`` axis is
round-tripped against its hand-rolled solve-then-scan lowering.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import PolicyBank, SensorBank, ThrottlingPolicy
from repro.engine import Axis, Sweep
from repro.experiments import run_dtm_policy_sweep
from repro.experiments.dtm_study import example_policy_set, never_throttle_policy
from repro.tech import CMOS035, TechnologyError, sample_technology_array
from repro.tech.stacked import stack_technologies
from repro.thermal import Floorplan, PowerMap, ThermalGrid, ThermalOperator

RTOL = 1e-9

RUN_KW = dict(
    duration_s=0.6, control_interval_s=0.03, limit_c=115.0, workload_scale=1.6
)

#: Hysteresis corners the property suite draws policies from: thresholds
#: spread around the reachable temperature band so the sampled policies
#: genuinely exercise full-speed/throttled/emergency transitions.
throttle_thresholds = st.floats(min_value=80.0, max_value=130.0)
hysteresis_gaps = st.floats(min_value=5.0, max_value=25.0)
emergency_margins = st.floats(min_value=5.0, max_value=20.0)


@st.composite
def policies(draw):
    throttle = draw(throttle_thresholds)
    return ThrottlingPolicy(
        throttle_threshold_c=throttle,
        release_threshold_c=throttle - draw(hysteresis_gaps),
        emergency_threshold_c=throttle + draw(emergency_margins),
    )


class TestPolicyBankStructure:
    def test_labels_and_policies_round_trip(self):
        bank = PolicyBank({"a": ThrottlingPolicy(), "b": never_throttle_policy()})
        assert bank.labels() == ("a", "b")
        assert bank.policy("a") is bank.policies()[0]
        assert len(bank) == 2
        assert PolicyBank.of(bank) is bank

    def test_sequence_gets_default_labels(self):
        bank = PolicyBank([ThrottlingPolicy(), never_throttle_policy()])
        assert bank.labels() == ("policy-0", "policy-1")

    def test_invalid_banks_rejected(self):
        with pytest.raises(TechnologyError):
            PolicyBank([])
        with pytest.raises(TechnologyError):
            PolicyBank(["not-a-policy"])
        with pytest.raises(TechnologyError):
            bank = PolicyBank([ThrottlingPolicy()])
            bank.policy("missing")

    def test_state_tables_padded_with_slowest_state(self):
        two = ThrottlingPolicy(
            states=(ThrottlingPolicy().states[0], ThrottlingPolicy().states[2])
        )
        bank = PolicyBank({"three": ThrottlingPolicy(), "two": two})
        assert bank.power_scales.shape == (2, 3)
        # Padding repeats the last state, which the clamped FSM index
        # can never select.
        assert bank.power_scales[1, 1] == bank.power_scales[1, 2]
        assert int(bank.state_counts[1]) == 2

    @given(
        readings=st.lists(
            st.floats(min_value=40.0, max_value=160.0), min_size=3, max_size=3
        ),
        indices=st.lists(st.integers(min_value=0, max_value=2), min_size=3, max_size=3),
        sampled=st.lists(policies(), min_size=3, max_size=3),
    )
    @settings(max_examples=50, deadline=None)
    def test_vectorized_fsm_matches_scalar_step(self, readings, indices, sampled):
        bank = PolicyBank(sampled)
        stepped = bank.next_state_indices(np.asarray(indices), np.asarray(readings))
        for p, policy in enumerate(sampled):
            assert stepped[p] == policy.next_state_index(indices[p], readings[p])

    def test_state_gathers_match_policy_states(self):
        bank = PolicyBank([ThrottlingPolicy(), never_throttle_policy()])
        indices = np.asarray([2, 1])
        scales = bank.power_scales_at(indices)
        perf = bank.performances_at(indices)
        for p, policy in enumerate(bank.policies()):
            assert scales[p] == policy.states[indices[p]].power_scale
            assert perf[p] == policy.states[indices[p]].performance


@pytest.fixture(scope="module")
def manager(dtm_manager_factory):
    return dtm_manager_factory(grid_resolution=12, sensor_grid=2)


class TestBankedEquivalence:
    """run_bank versus the scalar run(policy=...) oracle."""

    @pytest.mark.slow
    @given(sampled=st.lists(policies(), min_size=2, max_size=4))
    @settings(
        max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_banked_run_matches_scalar_oracle(self, manager, sampled):
        banked = manager.run_bank(sampled, **RUN_KW)
        for label, policy in zip(banked.labels, sampled):
            scalar = manager.run(policy=policy, **RUN_KW)
            row = banked.to_result(label)
            # Throttle decisions bit-match ...
            assert [p.state_name for p in row.trace] == [
                p.state_name for p in scalar.trace
            ]
            # ... and every recorded quantity agrees to 1e-9 relative.
            for attribute in ("true_peak_c", "hottest_reading_c", "power_w"):
                ours = np.asarray([getattr(p, attribute) for p in row.trace])
                theirs = np.asarray([getattr(p, attribute) for p in scalar.trace])
                assert np.max(np.abs(ours - theirs) / np.abs(theirs)) <= RTOL
            assert row.throttle_events() == scalar.throttle_events()
            assert row.state_occupancy() == scalar.state_occupancy()
            assert row.average_performance() == pytest.approx(
                scalar.average_performance(), rel=RTOL
            )
            assert row.time_above_limit_s() == pytest.approx(
                scalar.time_above_limit_s(), abs=1e-12
            )
            assert np.allclose(
                row.final_map.values_c, scalar.final_map.values_c, rtol=RTOL
            )

    @pytest.mark.slow
    def test_vectorized_metrics_match_unstacked_results(self, manager):
        banked = manager.run_bank(example_policy_set(), **RUN_KW)
        peaks = banked.peak_temperature_c()
        events = banked.throttle_events()
        perf = banked.average_performance()
        above = banked.time_above_limit_s()
        for p, label in enumerate(banked.labels):
            row = banked.to_result(label)
            assert peaks[p] == row.peak_temperature_c()
            assert events[p] == row.throttle_events()
            assert perf[p] == pytest.approx(row.average_performance(), rel=1e-12)
            assert above[p] == pytest.approx(row.time_above_limit_s(), abs=1e-12)

    @pytest.mark.slow
    def test_single_sample_population_matches_single_technology(self, manager):
        sampled = {"default": ThrottlingPolicy(), "never": never_throttle_policy()}
        single = manager.run_bank(sampled, **RUN_KW)
        population = manager.run_bank(
            sampled, technologies=stack_technologies([CMOS035]), **RUN_KW
        )
        assert population.sample_count == 1
        assert np.array_equal(
            population.state_indices[:, 0, :], single.state_indices
        )
        worst = np.max(
            np.abs(population.true_peak_c[:, 0, :] - single.true_peak_c)
            / np.abs(single.true_peak_c)
        )
        assert worst <= RTOL

    @pytest.mark.slow
    def test_population_run_shapes_and_metrics(self, manager):
        population = sample_technology_array(CMOS035, 3, seed=17)
        banked = manager.run_bank(
            {"default": ThrottlingPolicy(), "never": never_throttle_policy()},
            technologies=population,
            **RUN_KW,
        )
        steps = banked.step_count
        assert banked.state_indices.shape == (2, 3, steps)
        assert banked.peak_temperature_c().shape == (2, 3)
        assert banked.throttle_events().shape == (2, 3)
        # The never-throttle row stays at full speed for every sample.
        assert np.all(banked.state_indices[1] == 0)
        with pytest.raises(TechnologyError):
            banked.to_result("default")
        with pytest.raises(TechnologyError):
            banked.state_occupancy()

    def test_run_bank_validation(self, manager):
        with pytest.raises(TechnologyError):
            manager.run_bank([ThrottlingPolicy()], duration_s=0.0)
        with pytest.raises(TechnologyError):
            manager.run_bank(
                [ThrottlingPolicy()], duration_s=0.1, control_interval_s=0.2
            )
        with pytest.raises(TechnologyError):
            manager.run_bank(
                [ThrottlingPolicy()],
                duration_s=0.1,
                control_interval_s=0.01,
                workload_scale=-1.0,
            )


class TestResolutionAxisLowering:
    """The sweep engine's resolution axis versus its hand-rolled lowering."""

    @pytest.fixture(scope="class")
    def bank(self, sensor_bank_factory):
        return sensor_bank_factory(2)

    def test_round_trips_hand_rolled_solve_then_scan(self, bank):
        base = Floorplan.example_processor()
        population = sample_technology_array(CMOS035, 4, seed=5)
        resolutions = (8, 12, 16)
        result = (
            Sweep()
            .over(Axis.resolution(resolutions, base))
            .over(Axis.site(bank))
            .over(Axis.sample(population))
            .observe("code")
            .run()
        )
        assert result.dims == ("resolution", "site", "sample")
        assert result.coordinates("resolution") == resolutions
        for resolution in resolutions:
            power = PowerMap.from_floorplan(base, nx=resolution, ny=resolution)
            grid = ThermalGrid.for_power_map(power)
            field = ThermalOperator.for_grid(grid).solve_steady_state(power, 45.0)
            truths = field.sample_points(*bank.positions())
            reference = bank.scan(truths, technologies=population)
            assert np.array_equal(
                result.select(resolution=resolution).values, reference.codes
            )

    def test_declaration_order_is_canonicalised(self, bank):
        base = Floorplan.example_processor()
        forward = (
            Sweep()
            .over(Axis.resolution([8, 12], base))
            .over(Axis.site(bank))
            .run()
        )
        shuffled = (
            Sweep()
            .over(Axis.site(bank))
            .over(Axis.resolution([8, 12], base))
            .run()
        )
        assert forward.dims == shuffled.dims == ("resolution", "site")
        assert np.array_equal(forward.values, shuffled.values)

    def test_period_observable_matches_site_scan_per_resolution(self, bank):
        base = Floorplan.example_processor()
        result = (
            Sweep()
            .over(Axis.resolution([16], base))
            .over(Axis.site(bank))
            .run()
        )
        power = PowerMap.from_floorplan(base, nx=16, ny=16)
        grid = ThermalGrid.for_power_map(power)
        field = ThermalOperator.for_grid(grid).solve_steady_state(power, 45.0)
        truths = field.sample_points(*bank.positions())
        explicit = (
            Sweep()
            .over(Axis.site(bank, junction_temperatures_c=truths))
            .run()
        )
        assert np.array_equal(result.select(resolution=16).values, explicit.values)

    def test_one_operator_cache_entry_per_resolution(self, bank):
        # Asserts a process-local side effect of the in-process lowering
        # (which operators got cached *here*), so the dense path is
        # requested explicitly: under an environment-selected process
        # backend the tiles — and their cache warming — live in the
        # worker processes by design.
        base = Floorplan.example_processor()
        ThermalOperator.clear_cache()
        (
            Sweep()
            .over(Axis.resolution([8, 12, 16], base))
            .over(Axis.site(bank))
            .run(executor="dense")
        )
        assert ThermalOperator.cache_size() == 3
        # Re-declaring the same refinement reuses every entry.
        (
            Sweep()
            .over(Axis.resolution([8, 12, 16], base))
            .over(Axis.site(bank))
            .run(executor="dense")
        )
        assert ThermalOperator.cache_size() == 3


class TestDtmPolicySweepGolden:
    """Golden pins: the example-processor policy sweep's headline numbers.

    A refactor of the banked loop, the sensor path or the thermal
    operator must not silently shift the paper-facing DTM comparison.
    Pinned at 12x12 / 2x2 sensors / 0.8 s / 40 ms (the extension tests'
    configuration).
    """

    @pytest.fixture(scope="class")
    def sweep(self):
        return run_dtm_policy_sweep(
            duration_s=0.8,
            control_interval_s=0.04,
            grid_resolutions=12,
            sensor_grid=2,
        )

    def test_golden_peak_reductions(self, sweep):
        reduction = sweep.observable("peak_reduction_c").select(resolution=12)
        expected = {
            "eager": 54.027492903084294,
            "default": 43.754697296238405,
            "late": 43.754697296238405,
            "two-state": 43.754697296238405,
            "unmanaged": 0.0,
        }
        for label, value in expected.items():
            assert reduction.select(policy=label).item() == pytest.approx(
                value, rel=1e-6, abs=1e-9
            )

    def test_golden_throttle_events(self, sweep):
        events = sweep.observable("throttle_events").select(resolution=12)
        assert {
            label: int(events.select(policy=label).item())
            for label in events.coordinates("policy")
        } == {"eager": 3, "default": 3, "late": 2, "two-state": 4, "unmanaged": 0}

    def test_golden_state_occupancy(self, sweep):
        occupancy = sweep.state_occupancy(12)
        assert occupancy["default"] == {
            "full-speed": 0.2,
            "throttled": 0.45,
            "emergency": 0.35,
        }
        assert occupancy["two-state"] == {"full-speed": 0.35, "emergency": 0.65}
        assert occupancy["unmanaged"] == {"full-speed": 1.0}

    def test_observable_tensor_structure(self, sweep):
        peak = sweep.observable("peak_temperature_c")
        assert peak.dims == ("policy", "resolution")
        assert peak.coordinates("policy") == (
            "eager",
            "default",
            "late",
            "two-state",
            "unmanaged",
        )
        # The unmanaged baseline is the hottest die by construction.
        hottest = np.argmax(peak.values[:, 0])
        assert peak.coordinates("policy")[hottest] == "unmanaged"

    def test_reserved_label_and_unknown_observable_rejected(self, sweep):
        with pytest.raises(TechnologyError):
            run_dtm_policy_sweep(
                policies={"unmanaged": ThrottlingPolicy()},
                duration_s=0.2,
                control_interval_s=0.05,
                grid_resolutions=8,
                sensor_grid=2,
            )
        with pytest.raises(TechnologyError):
            sweep.observable("not-a-metric")
        with pytest.raises(TechnologyError):
            sweep.bank_result(99)


class TestSensorBankFixtureStillScans:
    def test_factory_builds_working_bank(self, sensor_bank_factory):
        bank: SensorBank = sensor_bank_factory(2)
        scan = bank.scan(
            np.full(bank.site_count, 60.0),
            calibration=bank.calibrate(-50.0, 150.0),
        )
        assert scan.estimates_c is not None
