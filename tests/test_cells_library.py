"""Unit tests for the cell library container and factories."""

import pytest

from repro.cells import CellError, CellLibrary, default_library, inverter, nand_gate, nor_gate
from repro.tech import CMOS018, CMOS035


class TestFactories:
    def test_drive_strength_scales_widths(self):
        x1 = inverter(CMOS035, drive=1)
        x2 = inverter(CMOS035, drive=2)
        assert x2.nmos_width_um == pytest.approx(2.0 * x1.nmos_width_um)
        assert x2.name == "INV_X2"

    def test_invalid_drive_rejected(self):
        with pytest.raises(CellError):
            inverter(CMOS035, drive=0)

    def test_explicit_width_override(self):
        cell = inverter(CMOS035, nmos_width_um=1.5, pmos_width_um=4.5)
        assert cell.width_ratio == pytest.approx(3.0)

    def test_nand_nor_names_include_fan_in(self):
        assert nand_gate(CMOS035, 3).name == "NAND3_X1"
        assert nor_gate(CMOS035, 4).name == "NOR4_X1"


class TestCellLibrary:
    def test_default_library_contents(self):
        library = default_library(CMOS035)
        for name in ("INV", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3", "NOR4", "BUF"):
            assert name in library

    def test_lookup_is_case_insensitive_and_drive_suffixed(self):
        library = default_library(CMOS035)
        assert library.get("nand2").name == "NAND2_X1"
        assert library.get("NAND2_X2").name == "NAND2_X2"

    def test_unknown_cell_raises_with_available_list(self):
        library = default_library(CMOS035)
        with pytest.raises(CellError) as excinfo:
            library.get("XOR2")
        assert "INV" in str(excinfo.value)

    def test_duplicate_add_rejected(self):
        library = CellLibrary("lib", CMOS035)
        library.add(inverter(CMOS035))
        with pytest.raises(CellError):
            library.add(inverter(CMOS035))
        library.add(inverter(CMOS035), overwrite=True)

    def test_add_rejects_foreign_technology(self):
        library = CellLibrary("lib", CMOS035)
        with pytest.raises(CellError):
            library.add(inverter(CMOS018))

    def test_inverting_cells_excludes_buffer(self):
        library = default_library(CMOS035)
        names = {cell.topology.kind for cell in library.inverting_cells()}
        assert "BUF" not in names
        assert {"INV", "NAND", "NOR"} <= names

    def test_len_and_names(self):
        library = default_library(CMOS035, drives=(1,), max_fan_in=2)
        # INV, BUF, NAND2, NOR2 at one drive strength.
        assert len(library) == 4
        assert sorted(library.names()) == library.names()

    def test_describe_mentions_every_cell(self):
        library = default_library(CMOS035, drives=(1,), max_fan_in=2)
        text = library.describe()
        for name in library.names():
            assert name in text

    def test_max_fan_in_validation(self):
        with pytest.raises(CellError):
            default_library(CMOS035, max_fan_in=1)
