"""Unit tests for the shared thermal-solve operator and its caches."""

import numpy as np
import pytest
from scipy.sparse.linalg import spsolve

from repro.tech import TechnologyError
from repro.thermal import (
    Floorplan,
    PowerMap,
    ThermalGrid,
    ThermalOperator,
    solve_steady_state,
    solve_transient,
)


@pytest.fixture()
def grid(example_power_map):
    return ThermalGrid.for_power_map(example_power_map)


class TestSteadySolves:
    def test_matches_direct_sparse_solve(self, grid, example_power_map):
        operator = ThermalOperator(grid)
        result = operator.solve_steady_state(example_power_map, ambient_c=45.0)
        reference = spsolve(
            grid.conductance_matrix.tocsc(), example_power_map.values_w.reshape(-1)
        ).reshape((grid.ny, grid.nx)) + 45.0
        assert np.allclose(result.values_c, reference, rtol=1e-9, atol=1e-12)

    def test_multi_rhs_matches_per_rhs(self, grid, example_power_map):
        operator = ThermalOperator(grid)
        scaled = example_power_map.scaled(0.5)
        combined = operator.solve_steady_state_multi(
            [example_power_map, scaled], ambient_c=45.0
        )
        singles = [
            operator.solve_steady_state(example_power_map, 45.0),
            operator.solve_steady_state(scaled, 45.0),
        ]
        for multi, single in zip(combined, singles):
            assert np.array_equal(multi.values_c, single.values_c)

    def test_solver_entry_point_routes_through_operator(self, grid, example_power_map):
        via_operator = ThermalOperator.for_grid(grid).solve_steady_state(
            example_power_map, 45.0
        )
        via_function = solve_steady_state(grid, example_power_map, 45.0)
        assert np.array_equal(via_operator.values_c, via_function.values_c)

    def test_mismatched_rhs_rejected(self, grid):
        operator = ThermalOperator(grid)
        with pytest.raises(TechnologyError):
            operator.steady_rise(np.zeros(3))
        with pytest.raises(TechnologyError):
            operator.solve_steady_state_multi([], 45.0)


class TestStepper:
    def test_matches_manual_backward_euler(self, grid, example_power_map):
        operator = ThermalOperator(grid)
        stepper = operator.stepper(1e-3)
        power = example_power_map.values_w.reshape(-1)
        rise = np.zeros(grid.nx * grid.ny)
        for _ in range(3):
            rise = stepper.step(rise, power)
        # Manual backward Euler with a fresh factorization.
        from scipy.sparse import diags
        from scipy.sparse.linalg import factorized

        solve = factorized(
            (diags(grid.capacitance_vector / 1e-3) + grid.conductance_matrix).tocsc()
        )
        manual = np.zeros(grid.nx * grid.ny)
        for _ in range(3):
            manual = solve(power + grid.capacitance_vector / 1e-3 * manual)
        assert np.array_equal(rise, manual)

    def test_stepper_cached_per_timestep(self, grid):
        operator = ThermalOperator(grid)
        first = operator.stepper(1e-3)
        second = operator.stepper(1e-3)
        third = operator.stepper(2e-3)
        assert first._solve is second._solve
        assert first._solve is not third._solve

    def test_invalid_timestep_rejected(self, grid):
        with pytest.raises(TechnologyError):
            ThermalOperator(grid).stepper(0.0)

    def test_transient_solver_unchanged_by_operator(self, grid, example_power_map):
        result = solve_transient(
            grid,
            lambda t: example_power_map,
            duration_s=5e-3,
            timestep_s=1e-3,
        )
        assert len(result.maps) == 6
        assert result.final.max_c() > 45.0


class TestProcessWideCache:
    def test_equal_geometry_grids_share_an_operator(self, example_power_map):
        ThermalOperator.clear_cache()
        first = ThermalOperator.for_grid(ThermalGrid.for_power_map(example_power_map))
        second = ThermalOperator.for_grid(ThermalGrid.for_power_map(example_power_map))
        assert first is second
        assert ThermalOperator.cache_size() == 1

    def test_different_geometry_gets_its_own_operator(self, example_power_map):
        ThermalOperator.clear_cache()
        base = ThermalOperator.for_grid(ThermalGrid.for_power_map(example_power_map))
        other_power = PowerMap.from_floorplan(Floorplan.example_processor(), nx=8, ny=8)
        other = ThermalOperator.for_grid(ThermalGrid.for_power_map(other_power))
        assert base is not other
        assert ThermalOperator.cache_size() == 2

    def test_cache_is_bounded(self, example_power_map):
        ThermalOperator.clear_cache()
        for resolution in range(4, 14):
            power = PowerMap.from_floorplan(
                Floorplan.example_processor(), nx=resolution, ny=resolution
            )
            ThermalOperator.for_grid(ThermalGrid.for_power_map(power))
        assert ThermalOperator.cache_size() <= 8
