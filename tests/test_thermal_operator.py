"""Unit tests for the shared thermal-solve operator and its caches."""

import numpy as np
import pytest
from scipy.sparse.linalg import spsolve

from repro.tech import TechnologyError
from repro.thermal import (
    Floorplan,
    PowerMap,
    ThermalGrid,
    ThermalOperator,
    solve_steady_state,
    solve_transient,
)
from repro.thermal.operator import (
    METHOD_ENV,
    THRESHOLD_ENV,
    _CACHE_LIMIT,
    _IterativeSolve,
    _TIMESTEP_CACHE_LIMIT,
    _WARM_START_LIMIT,
)

#: The iterative-vs-direct agreement bound (the ISSUE acceptance bar).
ITERATIVE_RTOL = 1e-8


def _grid_at(resolution):
    power = PowerMap.from_floorplan(
        Floorplan.example_processor(), nx=resolution, ny=resolution
    )
    return ThermalGrid.for_power_map(power), power


class TestSteadySolves:
    def test_matches_direct_sparse_solve(self, example_grid, example_power_map):
        operator = ThermalOperator(example_grid)
        result = operator.solve_steady_state(example_power_map, ambient_c=45.0)
        reference = spsolve(
            example_grid.conductance_matrix.tocsc(),
            example_power_map.values_w.reshape(-1),
        ).reshape((example_grid.ny, example_grid.nx)) + 45.0
        assert np.allclose(result.values_c, reference, rtol=1e-9, atol=1e-12)

    def test_multi_rhs_matches_per_rhs(self, example_grid, example_power_map):
        operator = ThermalOperator(example_grid)
        scaled = example_power_map.scaled(0.5)
        combined = operator.solve_steady_state_multi(
            [example_power_map, scaled], ambient_c=45.0
        )
        singles = [
            operator.solve_steady_state(example_power_map, 45.0),
            operator.solve_steady_state(scaled, 45.0),
        ]
        for multi, single in zip(combined, singles):
            assert np.array_equal(multi.values_c, single.values_c)

    def test_solver_entry_point_routes_through_operator(
        self, example_grid, example_power_map
    ):
        via_operator = ThermalOperator.for_grid(example_grid).solve_steady_state(
            example_power_map, 45.0
        )
        via_function = solve_steady_state(example_grid, example_power_map, 45.0)
        assert np.array_equal(via_operator.values_c, via_function.values_c)

    def test_mismatched_rhs_rejected(self, example_grid):
        operator = ThermalOperator(example_grid)
        with pytest.raises(TechnologyError):
            operator.steady_rise(np.zeros(3))
        with pytest.raises(TechnologyError):
            operator.solve_steady_state_multi([], 45.0)


class TestStepper:
    def test_matches_manual_backward_euler(self, example_grid, example_power_map):
        operator = ThermalOperator(example_grid)
        stepper = operator.stepper(1e-3)
        power = example_power_map.values_w.reshape(-1)
        rise = np.zeros(example_grid.nx * example_grid.ny)
        for _ in range(3):
            rise = stepper.step(rise, power)
        # Manual backward Euler with a fresh factorization.
        from scipy.sparse import diags
        from scipy.sparse.linalg import factorized

        solve = factorized(
            (
                diags(example_grid.capacitance_vector / 1e-3)
                + example_grid.conductance_matrix
            ).tocsc()
        )
        manual = np.zeros(example_grid.nx * example_grid.ny)
        for _ in range(3):
            manual = solve(power + example_grid.capacitance_vector / 1e-3 * manual)
        assert np.array_equal(rise, manual)

    def test_stacked_state_matches_per_column_steps(
        self, example_grid, example_power_map
    ):
        # The banked DTM path: an (n, k) state stack advances through
        # one multi-RHS solve per step, column-for-column equal to the
        # scalar stepper.
        operator = ThermalOperator(example_grid)
        stepper = operator.stepper(1e-3)
        power = example_power_map.values_w.reshape(-1)
        stack = np.stack([power, 0.5 * power], axis=1)
        rise = np.zeros((example_grid.nx * example_grid.ny, 2))
        columns = [np.zeros(example_grid.nx * example_grid.ny) for _ in range(2)]
        for _ in range(3):
            rise = stepper.step(rise, stack)
            columns = [
                stepper.step(columns[k], stack[:, k]) for k in range(2)
            ]
        for k in range(2):
            assert np.allclose(rise[:, k], columns[k], rtol=1e-12, atol=0.0)

    def test_stepper_cached_per_timestep(self, example_grid):
        operator = ThermalOperator(example_grid)
        first = operator.stepper(1e-3)
        second = operator.stepper(1e-3)
        third = operator.stepper(2e-3)
        assert first._solve is second._solve
        assert first._solve is not third._solve

    def test_invalid_timestep_rejected(self, example_grid):
        with pytest.raises(TechnologyError):
            ThermalOperator(example_grid).stepper(0.0)

    def test_transient_solver_unchanged_by_operator(
        self, example_grid, example_power_map
    ):
        result = solve_transient(
            example_grid,
            lambda t: example_power_map,
            duration_s=5e-3,
            timestep_s=1e-3,
        )
        assert len(result.maps) == 6
        assert result.final.max_c() > 45.0


class TestIterativeFallback:
    """Preconditioned-CG solves versus the sparse-direct factorization."""

    @pytest.fixture(scope="class")
    def grid_and_power(self):
        return _grid_at(24)

    def test_steady_agrees_with_direct(self, grid_and_power):
        grid, power = grid_and_power
        rhs = power.values_w.reshape(-1)
        direct = ThermalOperator(grid, method="direct").steady_rise(rhs)
        iterative = ThermalOperator(grid, method="iterative").steady_rise(rhs)
        assert np.max(np.abs(iterative - direct) / np.abs(direct)) <= ITERATIVE_RTOL

    def test_multi_rhs_agrees_with_direct(self, grid_and_power):
        grid, power = grid_and_power
        rhs = power.values_w.reshape(-1)
        stack = np.stack([rhs, 0.25 * rhs, 2.0 * rhs], axis=1)
        direct = ThermalOperator(grid, method="direct").steady_rise(stack)
        iterative = ThermalOperator(grid, method="iterative").steady_rise(stack)
        assert iterative.shape == direct.shape == stack.shape
        assert np.max(np.abs(iterative - direct) / np.abs(direct)) <= ITERATIVE_RTOL

    def test_transient_stepping_agrees_with_direct(self, grid_and_power):
        grid, power = grid_and_power
        rhs = power.values_w.reshape(-1)
        direct = ThermalOperator(grid, method="direct").stepper(0.01)
        iterative = ThermalOperator(grid, method="iterative").stepper(0.01)
        rise_d = np.zeros(grid.nx * grid.ny)
        rise_i = np.zeros(grid.nx * grid.ny)
        # Warm starts accumulate across steps; the agreement bound must
        # hold at every step, not just the first.
        for _ in range(20):
            rise_d = direct.step(rise_d, rhs)
            rise_i = iterative.step(rise_i, rhs)
            assert np.max(np.abs(rise_i - rise_d) / np.abs(rise_d)) <= ITERATIVE_RTOL

    def test_auto_routes_by_unknown_count(self, monkeypatch, grid_and_power):
        grid, _power = grid_and_power
        assert ThermalOperator(grid, method="auto").method == "direct"
        monkeypatch.setattr(ThermalOperator, "iterative_threshold", 100)
        assert ThermalOperator(grid, method="auto").method == "multigrid"

    def test_explicit_methods_get_distinct_cache_entries(self, grid_and_power):
        grid, _power = grid_and_power
        ThermalOperator.clear_cache()
        auto = ThermalOperator.for_grid(grid)
        direct = ThermalOperator.for_grid(grid, method="direct")
        iterative = ThermalOperator.for_grid(grid, method="iterative")
        # auto resolves to direct at 24x24, so those two share one entry.
        assert auto is direct
        assert iterative is not direct
        assert ThermalOperator.cache_size() == 2

    def test_solver_entry_points_accept_method(self, grid_and_power):
        grid, power = grid_and_power
        direct = solve_steady_state(grid, power, 45.0, method="direct")
        iterative = solve_steady_state(grid, power, 45.0, method="iterative")
        assert np.allclose(
            iterative.values_c, direct.values_c, rtol=ITERATIVE_RTOL, atol=0.0
        )
        transient = solve_transient(
            grid, lambda t: power, duration_s=0.05, timestep_s=0.01, method="iterative"
        )
        reference = solve_transient(
            grid, lambda t: power, duration_s=0.05, timestep_s=0.01, method="direct"
        )
        assert np.allclose(
            transient.final.values_c,
            reference.final.values_c,
            rtol=ITERATIVE_RTOL,
            atol=0.0,
        )

    def test_unknown_method_rejected(self, grid_and_power):
        grid, _power = grid_and_power
        with pytest.raises(TechnologyError):
            ThermalOperator(grid, method="cholesky")
        with pytest.raises(TechnologyError):
            ThermalOperator.for_grid(grid, method="cholesky")


class TestEnvironmentKnobs:
    """The REPRO_THERMAL_* overrides, read at resolve time."""

    def test_method_env_overrides_auto(self, monkeypatch, grid_and_power):
        grid, _power = grid_and_power
        monkeypatch.setenv(METHOD_ENV, "iterative")
        assert ThermalOperator(grid, method="auto").method == "iterative"
        monkeypatch.setenv(METHOD_ENV, "multigrid")
        assert ThermalOperator(grid, method="auto").method == "multigrid"

    def test_explicit_method_wins_over_env(self, monkeypatch, grid_and_power):
        grid, _power = grid_and_power
        monkeypatch.setenv(METHOD_ENV, "iterative")
        assert ThermalOperator(grid, method="direct").method == "direct"

    def test_invalid_method_env_rejected(self, monkeypatch, grid_and_power):
        grid, _power = grid_and_power
        monkeypatch.setenv(METHOD_ENV, "cholesky")
        with pytest.raises(TechnologyError):
            ThermalOperator(grid, method="auto")

    def test_threshold_env_reroutes_auto(self, monkeypatch, grid_and_power):
        grid, _power = grid_and_power
        monkeypatch.setenv(THRESHOLD_ENV, "100")
        assert ThermalOperator(grid, method="auto").method == "multigrid"
        monkeypatch.setenv(THRESHOLD_ENV, str(grid.nx * grid.ny))
        assert ThermalOperator(grid, method="auto").method == "direct"

    def test_invalid_threshold_env_rejected(self, monkeypatch, grid_and_power):
        grid, _power = grid_and_power
        monkeypatch.setenv(THRESHOLD_ENV, "many")
        with pytest.raises(TechnologyError):
            ThermalOperator(grid, method="auto")
        monkeypatch.setenv(THRESHOLD_ENV, "-5")
        with pytest.raises(TechnologyError):
            ThermalOperator(grid, method="auto")

    def test_env_overrides_join_the_cache_key(self, monkeypatch, grid_and_power):
        # An operator cached while an override was set must not be
        # handed back (with the wrong prepared solve) once it is lifted.
        grid, _power = grid_and_power
        ThermalOperator.clear_cache()
        monkeypatch.setenv(METHOD_ENV, "iterative")
        overridden = ThermalOperator.for_grid(grid)
        monkeypatch.delenv(METHOD_ENV)
        plain = ThermalOperator.for_grid(grid)
        assert overridden.method == "iterative"
        assert plain.method == "direct"
        assert overridden is not plain

    @pytest.fixture(scope="class")
    def grid_and_power(self):
        return _grid_at(24)

    def test_runner_flags_set_the_knobs(self, monkeypatch, capsys):
        from repro.experiments.runner import main

        monkeypatch.delenv(METHOD_ENV, raising=False)
        monkeypatch.delenv(THRESHOLD_ENV, raising=False)
        import os

        assert (
            main(
                [
                    "--thermal-method",
                    "multigrid",
                    "--thermal-iterative-threshold",
                    "123",
                    "--list",
                ]
            )
            == 0
        )
        assert os.environ[METHOD_ENV] == "multigrid"
        assert os.environ[THRESHOLD_ENV] == "123"
        monkeypatch.delenv(METHOD_ENV)
        monkeypatch.delenv(THRESHOLD_ENV)


class TestWarmStartKeying:
    """Per-RHS-shape warm starts (the cross-caller pollution fix)."""

    @pytest.fixture(scope="class")
    def solve_and_rhs(self):
        grid, power = _grid_at(24)
        solve = _IterativeSolve(grid.conductance_matrix, preconditioner="ilu")
        return grid, solve, power.values_w.reshape(-1)

    def test_vector_and_stack_keep_separate_states(self, solve_and_rhs):
        grid, solve, rhs = solve_and_rhs
        solve._warm_starts.clear()
        solve(rhs)
        solve(np.stack([rhs, 0.5 * rhs], axis=1))
        assert list(solve._warm_starts) == [("vec",), ("stack", 2)]
        assert solve._warm_starts[("vec",)].shape == (rhs.size, 1)
        assert solve._warm_starts[("stack", 2)].shape == (rhs.size, 2)

    def test_stack_solve_unpolluted_by_prior_vector_solve(self, solve_and_rhs):
        grid, solve, rhs = solve_and_rhs
        reference = spsolve(grid.conductance_matrix.tocsc(), 3.0 * rhs)
        solve._warm_starts.clear()
        solve(rhs)  # would be a bad initial guess for the stack below
        stack = solve(np.stack([3.0 * rhs, np.zeros_like(rhs)], axis=1))
        assert np.max(np.abs(stack[:, 0] - reference) / np.abs(reference)) <= ITERATIVE_RTOL
        assert np.array_equal(stack[:, 1], np.zeros_like(rhs))

    def test_distinct_stack_widths_do_not_collide(self, solve_and_rhs):
        _grid, solve, rhs = solve_and_rhs
        solve._warm_starts.clear()
        solve(np.stack([rhs, rhs], axis=1))
        solve(np.stack([rhs, rhs, rhs], axis=1))
        assert ("stack", 2) in solve._warm_starts
        assert ("stack", 3) in solve._warm_starts

    def test_warm_start_store_is_bounded_lru(self, solve_and_rhs):
        _grid, solve, rhs = solve_and_rhs
        solve._warm_starts.clear()
        for width in range(1, _WARM_START_LIMIT + 2):
            solve(np.repeat(rhs[:, np.newaxis], width, axis=1))
        assert len(solve._warm_starts) == _WARM_START_LIMIT
        # Touch the oldest survivor, then add another width: the
        # touched entry survives, the least recently used one goes.
        survivor = ("stack", 2)
        solve(np.repeat(rhs[:, np.newaxis], 2, axis=1))
        solve(np.repeat(rhs[:, np.newaxis], _WARM_START_LIMIT + 2, axis=1))
        assert survivor in solve._warm_starts
        assert ("stack", 3) not in solve._warm_starts

    def test_warm_start_accelerates_repeat_solves(self, solve_and_rhs):
        _grid, solve, rhs = solve_and_rhs
        solve._warm_starts.clear()
        solve(rhs)
        cold_iterations = solve.last_iterations
        solve(rhs)
        assert solve.last_iterations < cold_iterations


class TestProcessWideCache:
    def test_equal_geometry_grids_share_an_operator(self, example_power_map):
        ThermalOperator.clear_cache()
        first = ThermalOperator.for_grid(ThermalGrid.for_power_map(example_power_map))
        second = ThermalOperator.for_grid(ThermalGrid.for_power_map(example_power_map))
        assert first is second
        assert ThermalOperator.cache_size() == 1

    def test_different_geometry_gets_its_own_operator(self, example_power_map):
        ThermalOperator.clear_cache()
        base = ThermalOperator.for_grid(ThermalGrid.for_power_map(example_power_map))
        other_power = PowerMap.from_floorplan(Floorplan.example_processor(), nx=8, ny=8)
        other = ThermalOperator.for_grid(ThermalGrid.for_power_map(other_power))
        assert base is not other
        assert ThermalOperator.cache_size() == 2

    def test_cache_is_bounded(self, example_power_map):
        ThermalOperator.clear_cache()
        for resolution in range(4, 14):
            power = PowerMap.from_floorplan(
                Floorplan.example_processor(), nx=resolution, ny=resolution
            )
            ThermalOperator.for_grid(ThermalGrid.for_power_map(power))
        assert ThermalOperator.cache_size() <= _CACHE_LIMIT


class TestCacheEviction:
    """Bounded LRU eviction of both caches, covered directly."""

    def test_operator_cache_evicts_least_recently_used(self):
        ThermalOperator.clear_cache()
        operators = {}
        resolutions = list(range(4, 4 + _CACHE_LIMIT))
        for resolution in resolutions:
            grid, _power = _grid_at(resolution)
            operators[resolution] = ThermalOperator.for_grid(grid)
        assert ThermalOperator.cache_size() == _CACHE_LIMIT
        # One more distinct geometry evicts exactly the oldest entry ...
        overflow_grid, _power = _grid_at(4 + _CACHE_LIMIT)
        ThermalOperator.for_grid(overflow_grid)
        assert ThermalOperator.cache_size() == _CACHE_LIMIT
        oldest_grid, _power = _grid_at(resolutions[0])
        rebuilt = ThermalOperator.for_grid(oldest_grid)
        assert rebuilt is not operators[resolutions[0]]
        # ... and rebuilding the oldest evicted the next least recently
        # used, while the third-oldest entry is still the original.
        third_grid, _power = _grid_at(resolutions[2])
        kept = ThermalOperator.for_grid(third_grid)
        assert kept is operators[resolutions[2]]
        second_grid, _power = _grid_at(resolutions[1])
        assert ThermalOperator.for_grid(second_grid) is not operators[resolutions[1]]

    def test_operator_cache_hits_refresh_recency(self):
        # The placement-search access pattern: a handful of grids hit
        # over and over must all survive churn from new geometries.
        ThermalOperator.clear_cache()
        resolutions = list(range(4, 4 + _CACHE_LIMIT))
        operators = {}
        for resolution in resolutions:
            grid, _power = _grid_at(resolution)
            operators[resolution] = ThermalOperator.for_grid(grid)
        # Touch the oldest entry, then overflow: the touched entry
        # survives (a FIFO cache would evict it), the untouched
        # second-oldest goes.
        touched_grid, _power = _grid_at(resolutions[0])
        assert ThermalOperator.for_grid(touched_grid) is operators[resolutions[0]]
        overflow_grid, _power = _grid_at(4 + _CACHE_LIMIT)
        ThermalOperator.for_grid(overflow_grid)
        still_grid, _power = _grid_at(resolutions[0])
        assert ThermalOperator.for_grid(still_grid) is operators[resolutions[0]]
        evicted_grid, _power = _grid_at(resolutions[1])
        assert ThermalOperator.for_grid(evicted_grid) is not operators[resolutions[1]]

    def test_clear_cache_forgets_every_operator(self):
        ThermalOperator.clear_cache()
        grid, _power = _grid_at(6)
        before = ThermalOperator.for_grid(grid)
        ThermalOperator.clear_cache()
        assert ThermalOperator.cache_size() == 0
        assert ThermalOperator.for_grid(grid) is not before

    def test_timestep_cache_is_lru_not_fifo(self, example_grid):
        operator = ThermalOperator(example_grid)
        timesteps = [1e-3 * (k + 1) for k in range(_TIMESTEP_CACHE_LIMIT)]
        solves = {dt: operator.stepper(dt)._solve for dt in timesteps}
        # Touch the oldest timestep, then overflow the cache: the
        # recently used entry survives, the least recently used one
        # (the second-oldest) is evicted.
        assert operator.stepper(timesteps[0])._solve is solves[timesteps[0]]
        operator.stepper(1e-3 * (_TIMESTEP_CACHE_LIMIT + 1))
        assert operator.stepper(timesteps[0])._solve is solves[timesteps[0]]
        assert operator.stepper(timesteps[1])._solve is not solves[timesteps[1]]

    def test_timestep_cache_bounded(self, example_grid):
        operator = ThermalOperator(example_grid)
        for k in range(2 * _TIMESTEP_CACHE_LIMIT):
            operator.stepper(1e-3 * (k + 1))
        assert len(operator._transient_solves) == _TIMESTEP_CACHE_LIMIT

    def test_cross_grid_sharing_is_keyed_by_geometry_not_identity(self):
        ThermalOperator.clear_cache()
        grid_a, _power = _grid_at(10)
        grid_b, _power = _grid_at(10)
        assert grid_a is not grid_b
        assert ThermalOperator.for_grid(grid_a) is ThermalOperator.for_grid(grid_b)
        # Different physical parameters break the sharing.
        from repro.thermal import ThermalGridParameters

        thicker = ThermalGrid(
            grid_a.width_mm,
            grid_a.height_mm,
            grid_a.nx,
            grid_a.ny,
            ThermalGridParameters(die_thickness_mm=0.7),
        )
        assert ThermalOperator.for_grid(thicker) is not ThermalOperator.for_grid(grid_a)


class TestCacheConcurrency:
    """The process-wide cache and the lazy solves are thread-safe."""

    def test_concurrent_for_grid_builds_each_operator_once(self):
        import threading

        ThermalOperator.clear_cache()
        resolutions = [4, 5, 6, 7]
        grids = {r: _grid_at(r)[0] for r in resolutions}
        results = {r: [] for r in resolutions}
        barrier = threading.Barrier(8)

        def worker(resolution):
            barrier.wait()
            for _ in range(25):
                results[resolution].append(ThermalOperator.for_grid(grids[resolution]))

        threads = [
            threading.Thread(target=worker, args=(r,))
            for r in resolutions
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every thread asking for a geometry got the one shared operator.
        for resolution in resolutions:
            assert len(set(id(op) for op in results[resolution])) == 1
        assert ThermalOperator.cache_size() == len(resolutions)

    def test_concurrent_eviction_respects_limit(self):
        import threading

        ThermalOperator.clear_cache()
        grids = [_grid_at(r)[0] for r in range(4, 4 + 2 * _CACHE_LIMIT)]
        barrier = threading.Barrier(4)

        def churn(offset):
            barrier.wait()
            for grid in grids[offset::2]:
                ThermalOperator.for_grid(grid)

        threads = [threading.Thread(target=churn, args=(k % 2,)) for k in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert ThermalOperator.cache_size() <= _CACHE_LIMIT

    def test_concurrent_steady_solve_factorizes_once(self, example_grid):
        import threading

        operator = ThermalOperator(example_grid)
        solves = []
        barrier = threading.Barrier(6)

        def worker():
            barrier.wait()
            solves.append(operator.steady_solve())

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(id(solve) for solve in solves)) == 1

    def test_concurrent_stepper_requests_share_the_solve(self, example_grid):
        import threading

        operator = ThermalOperator(example_grid)
        steppers = []
        barrier = threading.Barrier(6)

        def worker(dt):
            barrier.wait()
            steppers.append(operator.stepper(dt))

        threads = [
            threading.Thread(target=worker, args=(1e-3 * (1 + k % 2),))
            for k in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(operator._transient_solves) == 2
        by_dt = {}
        for stepper in steppers:
            by_dt.setdefault(stepper.timestep_s, set()).add(id(stepper._solve))
        for shared in by_dt.values():
            assert len(shared) == 1
