"""Unit tests for the thermal RC grid, solvers and self-heating study."""

import numpy as np
import pytest

from repro.tech import TechnologyError
from repro.thermal import (
    PowerMap,
    TemperatureMap,
    ThermalGrid,
    ThermalGridParameters,
    duty_cycle_study,
    self_heating_error,
    solve_steady_state,
    solve_transient,
)


# The uniform power map / grid pair and the example-processor grid are
# shared session fixtures in conftest.py (uniform_power_map /
# uniform_grid / example_grid).


class TestGridConstruction:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(TechnologyError):
            ThermalGridParameters(die_thickness_mm=0.0)
        with pytest.raises(TechnologyError):
            ThermalGridParameters(package_resistance_k_mm2_per_w=-1.0)

    def test_small_grid_rejected(self):
        with pytest.raises(TechnologyError):
            ThermalGrid(8.0, 8.0, 1, 8)

    def test_junction_to_ambient_resistance_realistic(self, uniform_grid):
        theta = uniform_grid.junction_to_ambient_resistance_k_per_w()
        assert 1.0 < theta < 10.0

    def test_conductance_matrix_symmetric(self, uniform_grid):
        matrix = uniform_grid.conductance_matrix.toarray()
        assert np.allclose(matrix, matrix.T)

    def test_power_map_mismatch_detected(self, uniform_grid):
        other = PowerMap.zeros(8.0, 8.0, 6, 6)
        with pytest.raises(TechnologyError):
            uniform_grid.check_power_map(other)


class TestSteadyState:
    def test_uniform_power_gives_uniform_rise(self, uniform_grid, uniform_power_map):
        result = solve_steady_state(uniform_grid, uniform_power_map, ambient_c=45.0)
        rise = result.values_c - 45.0
        assert np.all(rise > 0.0)
        # Uniform power on a uniform grid: nearly uniform temperature.
        assert result.gradient_c() < 0.5

    def test_average_rise_matches_theta_ja(self, uniform_grid, uniform_power_map):
        result = solve_steady_state(uniform_grid, uniform_power_map, ambient_c=45.0)
        theta = uniform_grid.junction_to_ambient_resistance_k_per_w()
        expected = 10.0 * theta
        assert result.mean_c() - 45.0 == pytest.approx(expected, rel=0.05)

    def test_linearity_in_power(self, uniform_grid, uniform_power_map):
        single = solve_steady_state(uniform_grid, uniform_power_map, ambient_c=0.0)
        double = solve_steady_state(uniform_grid, uniform_power_map.scaled(2.0), ambient_c=0.0)
        assert np.allclose(double.values_c, 2.0 * single.values_c, rtol=1e-9)

    def test_hotspot_located_at_point_source(self, uniform_grid):
        power = PowerMap.zeros(8.0, 8.0, 12, 12)
        power.add_point_source(2.0, 6.0, 3.0)
        result = solve_steady_state(uniform_grid, power, ambient_c=45.0)
        x, y = result.hotspot_location()
        assert x == pytest.approx(2.0, abs=0.5)
        assert y == pytest.approx(6.0, abs=0.5)

    def test_example_floorplan_produces_gradient(self, example_power_map, example_grid):
        result = solve_steady_state(example_grid, example_power_map, ambient_c=45.0)
        assert result.gradient_c() > 5.0
        assert result.max_c() < 150.0


class TestTemperatureMap:
    def test_sample_interpolates_inside_die(self, uniform_grid, uniform_power_map):
        result = solve_steady_state(uniform_grid, uniform_power_map, ambient_c=45.0)
        centre = result.sample(4.0, 4.0)
        assert result.min_c() <= centre <= result.max_c()

    def test_sample_outside_die_rejected(self, uniform_grid, uniform_power_map):
        result = solve_steady_state(uniform_grid, uniform_power_map, ambient_c=45.0)
        with pytest.raises(TechnologyError):
            result.sample(9.0, 1.0)

    def test_invalid_shape_rejected(self):
        with pytest.raises(TechnologyError):
            TemperatureMap(8.0, 8.0, np.zeros(10))


class TestTransient:
    def test_warms_towards_steady_state(self, uniform_grid, uniform_power_map):
        steady = solve_steady_state(uniform_grid, uniform_power_map, ambient_c=45.0)
        result = solve_transient(
            uniform_grid,
            lambda t: uniform_power_map,
            duration_s=2.0,
            timestep_s=0.01,
            ambient_c=45.0,
            store_every=20,
        )
        trace = result.max_trace_c()
        assert trace[0] == pytest.approx(45.0, abs=0.1)
        assert np.all(np.diff(trace) >= -1e-9)
        assert result.final.max_c() == pytest.approx(steady.max_c(), rel=0.05)

    def test_cooling_when_power_removed(self, uniform_grid, uniform_power_map):
        steady = solve_steady_state(uniform_grid, uniform_power_map, ambient_c=45.0)
        off = PowerMap.zeros(8.0, 8.0, 12, 12)
        result = solve_transient(
            uniform_grid,
            lambda t: off,
            duration_s=1.0,
            timestep_s=0.01,
            ambient_c=45.0,
            initial=steady,
            store_every=10,
        )
        assert result.final.max_c() < steady.max_c()

    def test_invalid_arguments_rejected(self, uniform_grid, uniform_power_map):
        with pytest.raises(TechnologyError):
            solve_transient(uniform_grid, lambda t: uniform_power_map, duration_s=0.0, timestep_s=0.01)
        with pytest.raises(TechnologyError):
            solve_transient(uniform_grid, lambda t: uniform_power_map, duration_s=1.0, timestep_s=0.01,
                            store_every=0)

    def test_at_time_returns_nearest_map(self, uniform_grid, uniform_power_map):
        result = solve_transient(
            uniform_grid, lambda t: uniform_power_map, duration_s=0.5, timestep_s=0.05, store_every=1
        )
        early = result.at_time(0.05)
        late = result.at_time(0.5)
        assert late.max_c() >= early.max_c()


class TestSelfHeating:
    def test_heating_scales_with_duty_cycle(self, example_power_map):
        full = self_heating_error(example_power_map, 2.0, 6.0, 0.02, duty_cycle=1.0)
        tenth = self_heating_error(example_power_map, 2.0, 6.0, 0.02, duty_cycle=0.1)
        assert full.temperature_rise_c > 0.0
        assert tenth.temperature_rise_c == pytest.approx(
            0.1 * full.temperature_rise_c, rel=0.05
        )

    def test_measured_temperature_includes_rise(self, example_power_map):
        report = self_heating_error(example_power_map, 2.0, 6.0, 0.02, duty_cycle=1.0)
        assert report.measured_temperature_c == pytest.approx(
            report.background_temperature_c + report.temperature_rise_c
        )

    def test_invalid_duty_cycle_rejected(self, example_power_map):
        with pytest.raises(TechnologyError):
            self_heating_error(example_power_map, 2.0, 6.0, 0.02, duty_cycle=1.5)

    def test_duty_cycle_study_ordering(self, example_power_map):
        reports = duty_cycle_study(
            example_power_map, 2.0, 6.0, 0.02, duty_cycles=(1.0, 0.1, 0.01)
        )
        rises = [r.temperature_rise_c for r in reports]
        assert rises[0] > rises[1] > rises[2]
