"""Unit tests for repro.tech.libraries (predefined nodes and the registry)."""

import dataclasses

import pytest

from repro.tech import (
    CMOS013,
    CMOS018,
    CMOS025,
    CMOS035,
    Technology,
    TechnologyError,
    available_technologies,
    get_technology,
    register_technology,
)


class TestPredefinedNodes:
    def test_paper_node_is_035um_at_3v3(self):
        assert CMOS035.feature_size_um == pytest.approx(0.35)
        assert CMOS035.vdd == pytest.approx(3.3)

    def test_all_nodes_have_consistent_polarity(self):
        for tech in (CMOS035, CMOS025, CMOS018, CMOS013):
            assert tech.nmos.polarity == "nmos"
            assert tech.pmos.polarity == "pmos"

    def test_supply_scales_down_with_feature_size(self):
        nodes = [CMOS035, CMOS025, CMOS018, CMOS013]
        supplies = [tech.vdd for tech in nodes]
        assert supplies == sorted(supplies, reverse=True)

    def test_oxide_capacitance_scales_up_with_scaling(self):
        assert CMOS013.nmos.cox_f_per_um2 > CMOS035.nmos.cox_f_per_um2

    def test_thresholds_below_supply_everywhere(self):
        for tech in (CMOS035, CMOS025, CMOS018, CMOS013):
            assert tech.vdd > tech.nmos.vth0
            assert tech.vdd > tech.pmos.vth0

    def test_pmos_weaker_than_nmos(self):
        for tech in (CMOS035, CMOS025, CMOS018, CMOS013):
            assert tech.pmos.mobility < tech.nmos.mobility

    def test_thermal_range_matches_paper(self):
        assert CMOS035.thermal_design_range_c() == (-50.0, 150.0)


class TestRegistry:
    def test_available_sorted_by_feature_size(self):
        names = list(available_technologies())
        assert names[0] == "cmos035"
        assert names[-1] == "cmos013"

    def test_lookup_by_name(self):
        assert get_technology("cmos018") is CMOS018

    def test_unknown_name_raises(self):
        with pytest.raises(TechnologyError):
            get_technology("cmos007")

    def test_register_and_lookup_custom_node(self):
        custom = dataclasses.replace(CMOS035, name="cmos035_custom_test")
        register_technology(custom)
        assert get_technology("cmos035_custom_test") is custom

    def test_register_duplicate_requires_overwrite(self):
        custom = dataclasses.replace(CMOS035, name="cmos035_dup_test")
        register_technology(custom)
        with pytest.raises(TechnologyError):
            register_technology(custom)
        register_technology(custom, overwrite=True)
