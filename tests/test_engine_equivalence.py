"""Equivalence harness: the vectorized batch engine vs the scalar oracle.

The batch engine's correctness contract is that it computes *exactly*
what the scalar reference paths compute, only in one vectorized pass.
These tests pin the two paths together — property-based over random
ring configurations, technology samples and temperature grids — to a
relative tolerance of 1e-9 on periods (the acceptance bound; in
practice the paths agree to a few ULP, the only operation whose
libm/numpy implementations may differ in the last bit being ``pow``).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.montecarlo import run_monte_carlo
from repro.cells import characterize_cell, default_library
from repro.core import ReadoutConfig, SmartTemperatureSensor
from repro.engine import BatchEvaluator
from repro.optimize.cellmix import evaluate_configuration
from repro.optimize.sizing import sweep_width_ratio
from repro.oscillator import RingConfiguration, RingOscillator
from repro.tech import CMOS035
from repro.tech.corners import corner_technologies, sample_technologies

#: The acceptance bound on vectorized-vs-scalar relative period error.
RTOL = 1e-9

DEFAULT_SETTINGS = dict(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

ring_cells = st.sampled_from(["INV", "NAND2", "NAND3", "NOR2", "NOR3"])

configurations = (
    st.integers(min_value=1, max_value=3)
    .map(lambda n: 2 * n + 1)
    .flatmap(
        lambda count: st.lists(ring_cells, min_size=count, max_size=count)
    )
    .map(lambda stages: RingConfiguration(tuple(stages)))
)

temperature_grids = st.lists(
    st.floats(min_value=-50.0, max_value=150.0, allow_nan=False),
    min_size=3,
    max_size=12,
    unique=True,
).map(lambda temps: np.asarray(sorted(temps)))

technology_seeds = st.integers(min_value=0, max_value=2**31 - 1)


def relative_error(vectorized, scalar):
    vectorized = np.asarray(vectorized, dtype=float)
    scalar = np.asarray(scalar, dtype=float)
    return float(np.max(np.abs(vectorized - scalar) / np.abs(scalar)))


# --------------------------------------------------------------------------- #
# ring-level equivalence
# --------------------------------------------------------------------------- #


@given(configuration=configurations, temps=temperature_grids, seed=technology_seeds)
@settings(**DEFAULT_SETTINGS)
def test_period_series_matches_scalar(configuration, temps, seed):
    tech = sample_technologies(CMOS035, 1, seed=seed)[0]
    ring = RingOscillator(default_library(tech), configuration)
    vectorized = ring.period_series(temps)
    scalar = ring.period_series_scalar(temps)
    assert relative_error(vectorized, scalar) <= RTOL


@given(temps=temperature_grids, seed=technology_seeds)
@settings(**DEFAULT_SETTINGS)
def test_period_matrix_rows_match_per_sample_scalar(temps, seed):
    # period_matrix now evaluates the stacked (struct-of-arrays) sample
    # axis; every row must still match a per-sample scalar sweep.
    ring = RingOscillator(
        default_library(CMOS035), RingConfiguration.parse("2INV+3NAND2")
    )
    technologies = sample_technologies(CMOS035, 3, seed=seed)
    matrix = ring.period_matrix(technologies, temps)
    assert matrix.shape == (3, temps.size)
    for row, tech in enumerate(technologies):
        scalar = ring.rebind(tech).period_series_scalar(temps)
        assert relative_error(matrix[row], scalar) <= RTOL


@given(temps=temperature_grids, seed=technology_seeds)
@settings(**DEFAULT_SETTINGS)
def test_period_matrix_stacked_matches_retained_loop(temps, seed):
    # The PR 1 per-sample rebind loop is retained as period_matrix_loop;
    # the stacked default must reproduce it (see also
    # tests/test_stacked_equivalence.py for the full sample-axis harness).
    ring = RingOscillator(
        default_library(CMOS035), RingConfiguration.parse("2INV+3NAND2")
    )
    technologies = sample_technologies(CMOS035, 3, seed=seed)
    assert relative_error(
        ring.period_matrix(technologies, temps),
        ring.period_matrix_loop(technologies, temps),
    ) <= RTOL


def test_period_matrix_over_corners_matches_scalar_engine():
    ring = RingOscillator(
        default_library(CMOS035), RingConfiguration.uniform("INV", 5)
    )
    technologies = list(corner_technologies(CMOS035).values())
    temps = np.linspace(-50.0, 150.0, 41)
    vectorized = BatchEvaluator().period_matrix(ring, technologies, temps)
    scalar = BatchEvaluator(vectorized=False).period_matrix(ring, technologies, temps)
    assert relative_error(vectorized, scalar) <= RTOL


def test_scalar_evaluator_is_bitwise_the_reference_path(inverter_ring):
    temps = np.linspace(-50.0, 150.0, 21)
    reference = inverter_ring.period_series_scalar(temps)
    through_engine = BatchEvaluator(vectorized=False).period_series(
        inverter_ring, temps
    )
    assert np.array_equal(reference, through_engine)


# --------------------------------------------------------------------------- #
# sensor transfer function
# --------------------------------------------------------------------------- #


@given(configuration=configurations, temps=temperature_grids)
@settings(**DEFAULT_SETTINGS)
def test_transfer_function_codes_identical(configuration, temps):
    sensor = SmartTemperatureSensor.from_configuration(
        CMOS035, configuration, readout=ReadoutConfig()
    )
    vectorized = sensor.transfer_function(temps)
    scalar = sensor.transfer_function(temps, scalar=True)
    # Quantised codes are integers: the two paths must agree exactly.
    assert np.array_equal(vectorized.codes, scalar.codes)
    assert np.array_equal(vectorized.measured_periods_s, scalar.measured_periods_s)


def test_engine_transfer_function_matches_sensor_method(smart_sensor):
    temps = np.linspace(-40.0, 125.0, 34)
    engine = BatchEvaluator()
    assert np.array_equal(
        engine.transfer_function(smart_sensor, temps).codes,
        smart_sensor.transfer_function(temps, scalar=True).codes,
    )


# --------------------------------------------------------------------------- #
# Monte-Carlo populations
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("label", ["5INV", "2INV+3NAND2", "1INV+2NOR2+2NAND3"])
def test_run_monte_carlo_summaries_match(label):
    configuration = RingConfiguration.parse(label)
    vectorized = run_monte_carlo(
        CMOS035, configuration, sample_count=10, seed=99, scalar=False
    )
    scalar = run_monte_carlo(
        CMOS035, configuration, sample_count=10, seed=99, scalar=True
    )
    assert vectorized.period_spread_percent == pytest.approx(
        scalar.period_spread_percent, rel=RTOL
    )
    for attribute in ("period_at_reference", "nonlinearity_percent", "sensitivity_s_per_k"):
        vec_stats = getattr(vectorized, attribute)
        ref_stats = getattr(scalar, attribute)
        assert vec_stats.mean == pytest.approx(ref_stats.mean, rel=RTOL)
        assert vec_stats.minimum == pytest.approx(ref_stats.minimum, rel=RTOL)
        assert vec_stats.maximum == pytest.approx(ref_stats.maximum, rel=RTOL)
    for vec_response, ref_response in zip(vectorized.responses, scalar.responses):
        assert relative_error(vec_response.periods_s, ref_response.periods_s) <= RTOL


def test_engine_monte_carlo_matches_free_function():
    configuration = RingConfiguration.parse("2INV+3NAND2")
    from_engine = BatchEvaluator().run_monte_carlo(
        CMOS035, configuration, sample_count=8, seed=5
    )
    direct = run_monte_carlo(CMOS035, configuration, sample_count=8, seed=5)
    assert from_engine.period_spread_percent == pytest.approx(
        direct.period_spread_percent, rel=RTOL
    )


# --------------------------------------------------------------------------- #
# optimisation sweeps
# --------------------------------------------------------------------------- #


def test_sizing_sweep_matches_scalar(tech):
    vectorized = sweep_width_ratio(tech, temperatures_c=np.linspace(-50, 150, 17))
    scalar = sweep_width_ratio(
        tech, temperatures_c=np.linspace(-50, 150, 17), scalar=True
    )
    assert relative_error(
        vectorized.max_errors_percent(), scalar.max_errors_percent()
    ) <= 1e-6  # percent-of-span errors divide by a tiny span: looser bound
    for vec_point, ref_point in zip(vectorized.points, scalar.points):
        assert relative_error(
            vec_point.response.periods_s, ref_point.response.periods_s
        ) <= RTOL


def test_cellmix_candidate_matches_scalar(library):
    configuration = RingConfiguration.parse("1INV+2NAND3+2NOR2")
    vectorized = evaluate_configuration(library, configuration)
    scalar = evaluate_configuration(library, configuration, scalar=True)
    assert relative_error(
        vectorized.response.periods_s, scalar.response.periods_s
    ) <= RTOL
    assert vectorized.max_abs_error_percent == pytest.approx(
        scalar.max_abs_error_percent, rel=1e-6
    )


# --------------------------------------------------------------------------- #
# timing tables
# --------------------------------------------------------------------------- #


@given(
    queries=st.lists(
        st.floats(min_value=-50.0, max_value=150.0, allow_nan=False),
        min_size=1,
        max_size=16,
    )
)
@settings(**DEFAULT_SETTINGS)
def test_timing_table_vectorized_interpolation(queries, library):
    cell = library.get("NAND2")
    table = characterize_cell(cell, np.linspace(-50.0, 150.0, 9))
    load = float(table.loads_f[1])
    query_arr = np.asarray(queries)
    vectorized = table.pair_sum(query_arr, load)
    scalar = np.asarray([table.pair_sum(float(q), load) for q in queries])
    assert np.allclose(vectorized, scalar, rtol=RTOL, atol=0.0)


def test_characterize_cell_grid_matches_scalar_delays(library):
    cell = library.get("NOR3")
    temps = np.linspace(-40.0, 120.0, 5)
    table = characterize_cell(cell, temps)
    for i, temp in enumerate(table.temperatures_c):
        for j, load in enumerate(table.loads_f):
            delays = cell.delays(float(temp), float(load))
            assert table.tphl_s[i, j] == pytest.approx(delays.tphl, rel=RTOL)
            assert table.tplh_s[i, j] == pytest.approx(delays.tplh, rel=RTOL)
