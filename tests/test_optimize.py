"""Unit tests for the transistor-sizing and cell-mix optimisers."""

import numpy as np
import pytest

from repro.optimize import (
    PAPER_FIG2_RATIOS,
    build_sized_ring,
    enumerate_configurations,
    evaluate_configuration,
    greedy_cell_mix,
    optimize_width_ratio,
    search_cell_mix,
    sweep_width_ratio,
)
from repro.oscillator import ConfigurationError, RingConfiguration
from repro.tech import CMOS035, TechnologyError


TEMPS = np.linspace(-50.0, 150.0, 9)


class TestSizedRing:
    def test_ratio_applied_to_widths(self):
        ring = build_sized_ring(CMOS035, width_ratio=3.0, nmos_width_um=1.0)
        cell = ring.cells()[0]
        assert cell.width_ratio == pytest.approx(3.0)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(TechnologyError):
            build_sized_ring(CMOS035, width_ratio=0.0)
        with pytest.raises(TechnologyError):
            build_sized_ring(CMOS035, width_ratio=2.0, nmos_width_um=0.0)


class TestSizingSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_width_ratio(CMOS035, temperatures_c=TEMPS)

    def test_all_paper_ratios_evaluated(self, sweep):
        assert sweep.ratios().tolist() == list(PAPER_FIG2_RATIOS)

    def test_best_ratio_is_interior(self, sweep):
        # The paper's Fig. 2: the optimum lies inside the swept range,
        # not at its edges.
        best = sweep.best().width_ratio
        assert PAPER_FIG2_RATIOS[0] < best < PAPER_FIG2_RATIOS[-1]

    def test_improvement_factor_significant(self, sweep):
        assert sweep.improvement_factor() > 2.0

    def test_empty_ratios_rejected(self):
        with pytest.raises(TechnologyError):
            sweep_width_ratio(CMOS035, ratios=())

    def test_continuous_optimum_beats_grid(self, sweep):
        optimum = optimize_width_ratio(CMOS035, temperatures_c=TEMPS)
        assert optimum.max_abs_error_percent <= sweep.best().max_abs_error_percent + 1e-9
        assert 2.0 < optimum.width_ratio < 4.5

    def test_invalid_bounds_rejected(self):
        with pytest.raises(TechnologyError):
            optimize_width_ratio(CMOS035, ratio_bounds=(3.0, 2.0))


class TestCellMixEnumeration:
    def test_counts_for_five_stages(self):
        configs = enumerate_configurations(("INV", "NAND2", "NOR2"), 5)
        # combinations with replacement: C(3+5-1, 5) = 21
        assert len(configs) == 21

    def test_even_stage_count_rejected(self):
        with pytest.raises(ConfigurationError):
            enumerate_configurations(("INV",), 4)

    def test_empty_cells_rejected(self):
        with pytest.raises(ConfigurationError):
            enumerate_configurations((), 5)


class TestCellMixSearch:
    @pytest.fixture(scope="class")
    def search(self, library_class_scope):
        return search_cell_mix(
            library_class_scope,
            cell_names=("INV", "NAND2", "NAND3", "NOR2"),
            temperatures_c=TEMPS,
            top_k=5,
        )

    @pytest.fixture(scope="class")
    def library_class_scope(self):
        from repro.cells import default_library

        return default_library(CMOS035)

    def test_candidates_ranked(self, search):
        errors = [c.max_abs_error_percent for c in search.candidates]
        assert errors == sorted(errors)
        assert len(search.candidates) == 5

    def test_best_mix_beats_inverter_only(self, search, library_class_scope):
        inverter_only = evaluate_configuration(
            library_class_scope, RingConfiguration.uniform("INV", 5), TEMPS
        )
        assert search.best().max_abs_error_percent < inverter_only.max_abs_error_percent

    def test_candidate_lookup_by_label(self, search):
        label = search.candidates[0].label
        assert search.candidate_by_label(label) is search.candidates[0]
        with pytest.raises(TechnologyError):
            search.candidate_by_label("5XOR2")

    def test_evaluated_count_covers_full_space(self, search):
        # C(4+5-1, 5) = 56 candidate mixes.
        assert search.evaluated_count == 56

    def test_greedy_matches_or_approaches_exhaustive(self, search, library_class_scope):
        greedy = greedy_cell_mix(
            library_class_scope,
            cell_names=("INV", "NAND2", "NAND3", "NOR2"),
            temperatures_c=TEMPS,
        )
        assert greedy.max_abs_error_percent <= 2.0 * search.best().max_abs_error_percent
