"""Equivalence and golden tests for the banked sensor-scan path.

The :class:`repro.core.SensorBank` contract is that one broadcast scan
computes exactly what the retained per-sensor pipeline (one
:class:`SmartTemperatureSensor` per site, scalar measure each) computes:
counter codes *exactly*, calibrated estimates to 1e-9 relative.  The
thermal-map metrics on the example processor are pinned as golden
values so a refactor of either path cannot silently drift them.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SensorBank, SmartTemperatureSensor, ThermalMonitor
from repro.core.sensor_bank import BankCalibration
from repro.engine import Axis, Sweep, SweepError
from repro.oscillator import RingConfiguration
from repro.tech import CMOS035, TechnologyError, sample_technology_array

RTOL = 1e-9

DEFAULT_SETTINGS = dict(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

CONFIGURATION = RingConfiguration.parse("2INV+3NAND2")

site_temperatures = st.lists(
    st.floats(min_value=-50.0, max_value=150.0, allow_nan=False),
    min_size=4,
    max_size=4,
)
technology_seeds = st.integers(min_value=0, max_value=2**31 - 1)


# Banks come from the shared sensor_bank_factory fixture in conftest.py.


@pytest.fixture(scope="module")
def bank(sensor_bank_factory):
    return sensor_bank_factory(2)


class TestBankedScanEquivalence:
    @given(temps=site_temperatures)
    @settings(**DEFAULT_SETTINGS)
    def test_scan_matches_per_sensor_oracle(self, temps, sensor_bank_factory):
        bank = sensor_bank_factory(2)
        temps = np.asarray(temps)
        banked = bank.scan(temps, calibration=bank.calibrate(-50.0, 150.0))
        oracle = bank.scan_loop(temps, calibrate_at=(-50.0, 150.0))
        assert np.array_equal(banked.codes, oracle.codes)
        assert np.array_equal(banked.saturated, oracle.saturated)
        worst = np.max(
            np.abs(banked.estimates_c - oracle.estimates_c)
            / np.abs(oracle.estimates_c)
        )
        assert worst <= RTOL
        assert banked.conversion_time_s == oracle.conversion_time_s

    @given(temps=site_temperatures, seed=technology_seeds)
    @settings(max_examples=5, deadline=None)
    def test_population_scan_matches_per_sample_oracle(self, temps, seed, sensor_bank_factory):
        bank = sensor_bank_factory(2)
        temps = np.asarray(temps)
        population = sample_technology_array(CMOS035, 3, seed=seed)
        calibration = bank.two_point_calibration(-50.0, 150.0, technologies=population)
        banked = bank.scan(temps, technologies=population, calibration=calibration)
        oracle = bank.scan_loop(
            temps, technologies=population, calibrate_at=(-50.0, 150.0)
        )
        assert banked.codes.shape == (bank.site_count, 3)
        assert np.array_equal(banked.codes, oracle.codes)
        worst = np.max(
            np.abs(banked.estimates_c - oracle.estimates_c)
            / np.abs(oracle.estimates_c)
        )
        assert worst <= RTOL

    def test_period_tensor_matches_loop(self, bank):
        temps = np.linspace(40.0, 120.0, bank.site_count)
        population = sample_technology_array(CMOS035, 4, seed=11)
        stacked = bank.period_tensor(temps, technologies=population)
        looped = bank.period_tensor_loop(temps, technologies=population)
        assert stacked.shape == looped.shape == (bank.site_count, 4)
        assert np.max(np.abs(stacked - looped) / looped) <= RTOL

    def test_calibration_matches_scalar_sensor(self, bank, library):
        sensor = SmartTemperatureSensor.from_configuration(
            CMOS035, CONFIGURATION, library=library
        )
        scalar = sensor.calibrate_two_point(-50.0, 150.0)
        banked = bank.two_point_calibration(-50.0, 150.0)
        assert float(banked.slope_c_per_second) == scalar.slope_c_per_second
        assert float(banked.offset_c) == scalar.offset_c
        linear = banked.linear_calibration()
        assert linear.slope_c_per_second == scalar.slope_c_per_second


class TestBankStructure:
    def test_uncalibrated_scan_has_no_estimates(self, bank):
        scan = bank.scan(np.full(bank.site_count, 60.0))
        assert scan.estimates_c is None
        assert scan.temperatures() == {name: None for name in scan.names}

    def test_readings_view_matches_arrays(self, bank):
        temps = np.linspace(50.0, 90.0, bank.site_count)
        scan = bank.scan(temps, calibration=bank.calibrate(-50.0, 150.0))
        readings = scan.readings
        assert set(readings) == set(scan.names)
        for index, name in enumerate(scan.names):
            assert readings[name].code == int(scan.codes[index])
            assert readings[name].true_temperature_c == temps[index]
        assert scan.hottest_channel() == scan.names[-1]
        assert scan.total_time_s == pytest.approx(
            bank.site_count * bank.conversion_time_s
        )

    def test_population_scan_rejects_scalar_dict_views(self, bank):
        population = sample_technology_array(CMOS035, 2, seed=3)
        scan = bank.scan(
            np.full(bank.site_count, 60.0), technologies=population
        )
        with pytest.raises(TechnologyError):
            scan.codes_by_site()

    def test_requires_one_temperature_per_site(self, bank):
        with pytest.raises(TechnologyError):
            bank.scan(np.asarray([25.0]))

    def test_requires_unique_site_names(self, library, sensor_floorplan_factory):
        floorplan = sensor_floorplan_factory(2)
        sites = floorplan.sensor_sites() + [floorplan.sensor_sites()[0]]
        with pytest.raises(TechnologyError):
            SensorBank(library, sites, CONFIGURATION)

    def test_zero_slope_calibration_rejected(self):
        with pytest.raises(TechnologyError):
            BankCalibration(
                slope_c_per_second=np.asarray(0.0),
                offset_c=np.asarray(1.0),
                low_temperature_c=-50.0,
                high_temperature_c=150.0,
            )


@pytest.fixture(scope="module")
def monitor(tech, sensor_floorplan_factory):
    floorplan = sensor_floorplan_factory(3)
    built = ThermalMonitor(
        tech, floorplan, CONFIGURATION, grid_resolution=16
    )
    built.calibrate(-50.0, 150.0)
    return built


class TestMonitorBankedScan:
    def test_banked_scan_matches_multiplexer_oracle(self, monitor):
        banked = monitor.scan()
        scalar = monitor.scan(scalar=True)
        assert banked.site_estimates_c.keys() == scalar.site_estimates_c.keys()
        for name, estimate in banked.site_estimates_c.items():
            assert estimate == pytest.approx(scalar.site_estimates_c[name], rel=RTOL)
        banked_codes = {n: r.code for n, r in banked.scan.readings.items()}
        scalar_codes = {n: r.code for n, r in scalar.scan.readings.items()}
        assert banked_codes == scalar_codes
        assert banked.scan.total_time_s == pytest.approx(scalar.scan.total_time_s)
        assert banked.map_rms_error_c() == pytest.approx(
            scalar.map_rms_error_c(), rel=RTOL
        )

    def test_golden_map_metrics_on_example_processor(self, monitor):
        # Golden pin (3x3 bank, grid_resolution=16, two-point -50/150):
        # a refactor of the banked or oracle path must not drift these.
        report = monitor.scan()
        assert report.worst_site_error_c() == pytest.approx(
            0.438631731258198, rel=1e-6
        )
        assert report.map_rms_error_c() == pytest.approx(
            3.0666681976820036, rel=1e-6
        )

    def test_uncalibrated_monitor_scan_rejected(self, tech, sensor_floorplan_factory):
        floorplan = sensor_floorplan_factory(2)
        fresh = ThermalMonitor(tech, floorplan, CONFIGURATION, grid_resolution=16)
        with pytest.raises(TechnologyError):
            fresh.scan()


class TestSiteAxisThroughSweep:
    def test_scan_mode_matches_bank_scan(self, bank):
        temps = np.linspace(55.0, 95.0, bank.site_count)
        population = sample_technology_array(CMOS035, 5, seed=21)
        result = (
            Sweep()
            .over(Axis.site(bank, junction_temperatures_c=temps))
            .over(Axis.sample(population))
            .observe("code")
            .run()
        )
        assert result.dims == ("site", "sample")
        reference = bank.scan(temps, technologies=population)
        assert np.array_equal(result.values, reference.codes)

    def test_characterisation_mode_broadcasts_shared_design(self, bank):
        grid = np.linspace(-50.0, 150.0, 7)
        result = (
            Sweep()
            .over(Axis.site(bank))
            .over(Axis.temperature(grid))
            .run()
        )
        assert result.dims == ("site", "temperature")
        expected = bank.ring.period_series(grid)
        for index in range(bank.site_count):
            assert np.array_equal(result.isel(site=index).values, expected)

    def test_power_observable_matches_dynamic_power(self, bank):
        result = (
            Sweep()
            .over(Axis.site(bank))
            .over(Axis.temperature([25.0]))
            .observe("power")
            .run()
        )
        expected = bank.ring.dynamic_power(25.0)
        assert result.isel(site=0).item() == pytest.approx(expected, rel=1e-12)

    def test_code_observable_matches_transfer_function(self, tech):
        grid = np.linspace(-50.0, 150.0, 9)
        sensor = SmartTemperatureSensor.from_configuration(tech, CONFIGURATION)
        result = (
            Sweep(technology=tech, configuration=CONFIGURATION)
            .over(Axis.temperature(grid))
            .observe("code")
            .run()
        )
        transfer = sensor.transfer_function(grid, scalar=True)
        assert np.array_equal(result.values, transfer.codes.astype(np.int64))

    def test_site_axis_validation(self, bank):
        with pytest.raises(SweepError):
            Axis.site(bank, junction_temperatures_c=[25.0])  # wrong length
        with pytest.raises(SweepError):
            (
                Sweep(configuration=CONFIGURATION)
                .over(Axis.site(bank))
                .plan()
            )
        with pytest.raises(SweepError):
            (
                Sweep()
                .over(Axis.site(bank, junction_temperatures_c=np.full(len(bank), 25.0)))
                .over(Axis.temperature([25.0, 50.0]))
                .plan()
            )
        with pytest.raises(SweepError):
            (
                Sweep()
                .over(Axis.site(bank, junction_temperatures_c=np.full(len(bank), 25.0)))
                .observe("nonlinearity_percent")
                .plan()
            )
        with pytest.raises(SweepError):
            (
                Sweep()
                .over(Axis.site(bank))
                .over(Axis.configuration({"5INV": RingConfiguration.uniform("INV", 5)}))
                .plan()
            )
