"""The ``technology`` sweep axis (repro.engine.sweep).

The axis declares a per-node loop inside the sweep engine: one
coordinate per technology node, lowered as the outermost loop of the
dense evaluation.  The contracts:

* **oracle equality** — a technology-axis sweep is bitwise identical,
  node for node, to the hand-written per-node loop it replaces (dense
  and tiled/executor paths alike);
* **canonical shape** — the axis is outermost in
  ``CANONICAL_AXIS_ORDER``, its coordinates are the node names, and it
  serializes as content-addressed ``{name, digest}`` references that
  round-trip and canonicalize idempotently;
* **structured rejection** — combinations that cannot mean one thing
  (a technology axis plus a ``technology=``/``library=``/``ring=``
  base, a ``site`` bank, or a concrete one-node ``sample`` population)
  raise ``SweepError`` with a message saying why.
"""

import json

import numpy as np
import pytest

from repro.engine import Axis, Sweep, SweepError
from repro.serve import canonical_key, canonical_spec
from repro.tech import (
    CMOS013,
    CMOS018,
    CMOS025,
    CMOS035,
    get_technology_digest,
    sample_technology_array,
)

NODES = (CMOS035, CMOS025, CMOS018, CMOS013)
TEMPS = [-40.0, 25.0, 125.0]


def axis_sweep(observable="period"):
    return (
        Sweep(configuration="2INV+3NAND2")
        .over(Axis.technology(NODES))
        .over(Axis.temperature(TEMPS))
        .observe(observable)
    )


# --------------------------------------------------------------------------- #
# oracle equality
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("observable", ["period", "power", "code"])
def test_axis_matches_per_node_loop_bitwise(observable):
    stacked = axis_sweep(observable).run()
    for row, node in enumerate(NODES):
        solo = (
            Sweep(technology=node, configuration="2INV+3NAND2")
            .over(Axis.temperature(TEMPS))
            .observe(observable)
            .run()
        )
        assert np.array_equal(stacked.values[row], solo.values)
        assert stacked.values.dtype == solo.values.dtype


def test_axis_is_outermost_and_labeled_by_node_name():
    result = (
        Sweep(configuration="5INV")
        .over(Axis.temperature(TEMPS))
        .over(Axis.technology([CMOS035, CMOS018]))  # declared innermost
        .run()
    )
    assert result.dims == ("technology", "temperature")
    assert result.coords["technology"] == ("cmos035", "cmos018")


def test_tiled_execution_matches_dense():
    dense = axis_sweep().run()
    tiled = axis_sweep().run(max_tile_elements=4)
    assert tiled.dims == dense.dims
    assert tiled.coords == dense.coords
    assert np.array_equal(tiled.values, dense.values)


def test_axis_composes_with_other_axes():
    result = (
        Sweep()
        .over(Axis.technology([CMOS035, CMOS018]))
        .over(Axis.configuration(["5INV", "2INV+3NAND2"]))
        .over(Axis.temperature(TEMPS))
        .run()
    )
    assert result.dims == ("technology", "configuration", "temperature")
    # The lowering runs the *same inner sweep* once per node, so each
    # node's slab is bitwise equal to that inner sweep pinned to the node.
    solo = (
        Sweep(technology=CMOS018)
        .over(Axis.configuration(["5INV", "2INV+3NAND2"]))
        .over(Axis.temperature(TEMPS))
        .run()
    )
    assert np.array_equal(result.values[1], solo.values)


# --------------------------------------------------------------------------- #
# declaration
# --------------------------------------------------------------------------- #


def test_axis_accepts_registered_names():
    by_name = Axis.technology(["cmos035", "cmos018"])
    by_object = Axis.technology([CMOS035, CMOS018])
    assert by_name.coordinates == by_object.coordinates
    assert by_name.payload == by_object.payload


def test_unknown_name_rejected():
    with pytest.raises(SweepError, match="cmos007"):
        Axis.technology(["cmos035", "cmos007"])


def test_duplicate_node_names_rejected():
    with pytest.raises(SweepError, match="unique"):
        Axis.technology([CMOS035, CMOS035.with_supply(3.0)])


def test_axis_excludes_base_technology():
    with pytest.raises(SweepError, match="technology axis"):
        (
            Sweep(technology=CMOS035, configuration="5INV")
            .over(Axis.technology([CMOS018]))
            .over(Axis.temperature(TEMPS))
            .plan()
        )


def test_axis_excludes_sample_axis():
    population = sample_technology_array(CMOS035, 4, seed=3)
    with pytest.raises(SweepError, match="sample axis"):
        (
            Sweep(configuration="5INV")
            .over(Axis.technology([CMOS035, CMOS018]))
            .over(Axis.sample(population))
            .over(Axis.temperature(TEMPS))
            .plan()
        )


# --------------------------------------------------------------------------- #
# serialization and content addressing
# --------------------------------------------------------------------------- #


def test_round_trip_runs_bit_identical():
    sweep = axis_sweep()
    payload = json.loads(json.dumps(sweep.to_dict()))
    rebuilt = Sweep.from_dict(payload)
    assert np.array_equal(rebuilt.run().values, sweep.run().values)


def test_nodes_serialize_as_content_addressed_references():
    payload = axis_sweep().to_dict()
    (axis,) = [a for a in payload["axes"] if a["name"] == "technology"]
    assert [node["name"] for node in axis["nodes"]] == [t.name for t in NODES]
    for node, tech in zip(axis["nodes"], NODES):
        assert node["digest"] == get_technology_digest(tech.name)
        assert "parameters" not in node  # registered: reference, not inline


def test_canonicalization_is_idempotent():
    canonical = canonical_spec(axis_sweep().to_dict())
    assert canonical_spec(canonical) == canonical
    assert canonical_key(canonical) == canonical_key(axis_sweep())


def test_node_order_is_semantic():
    forward = (
        Sweep(configuration="5INV")
        .over(Axis.technology([CMOS035, CMOS018]))
        .over(Axis.temperature(TEMPS))
    )
    swapped = (
        Sweep(configuration="5INV")
        .over(Axis.technology([CMOS018, CMOS035]))
        .over(Axis.temperature(TEMPS))
    )
    assert canonical_key(forward) != canonical_key(swapped)
