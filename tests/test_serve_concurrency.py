"""Concurrency, persistence and scheduling contracts of the sweep service.

The multi-worker serving PR's test surface:

* the evaluation **scheduler**: priority ordering under a saturated
  queue, deadline expiry *without* evaluation, ``busy`` backpressure
  when the bounded queue is full, drain semantics;
* **cross-worker single-flight**: identical concurrent sweeps share one
  evaluation even when several workers could have run them;
* the **disk tier**: a killed-and-restarted server (and a second
  server sharing the directory) serves repeats with zero evaluations;
  a corrupted cache file is skipped and re-evaluated, never crashing
  or poisoning a response;
* **sweep coalescing**: concurrent sweeps sharing a base spec but
  differing along the temperature axis evaluate once, each answer
  bitwise equal to its solo evaluation (hypothesis-tested over random
  grids); non-mergeable requests fall back to independent evaluation
  unchanged;
* **graceful shutdown**: requests pending in the batch window resolve
  with the structured ``shutting-down`` error instead of hanging;
* **client transport**: a dead server surfaces as a structured
  ``transport`` error after bounded retries, a silent server as
  ``timeout``.
"""

import asyncio
import json
import os
import socket
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import Axis, Sweep
from repro.serve import (
    MicroBatcher,
    ServeClient,
    ServeError,
    canonical_key,
    start_server_thread,
)
from repro.serve.protocol import (
    E_BAD_REQUEST,
    E_BUSY,
    E_DEADLINE,
    E_SHUTTING_DOWN,
)
from repro.serve.server import SweepServer, _EvalScheduler, _RequestError
from repro.tech import CMOS035, get_technology_digest

TEMPS = [-40.0, 25.0, 125.0]


def small_sweep(observable="period", temps=TEMPS):
    return (
        Sweep(technology=CMOS035, configuration="5INV")
        .over(Axis.temperature(list(temps)))
        .observe(observable)
    )


def base_spec(observable="period"):
    return (
        Sweep(technology=CMOS035, configuration="5INV")
        .observe(observable)
        .to_dict()
    )


# --------------------------------------------------------------------------- #
# scheduler unit contracts (no sockets: a loop, a fake evaluator)
# --------------------------------------------------------------------------- #


def test_scheduler_orders_by_priority_then_arrival():
    completed = []

    async def scenario():
        gate = asyncio.Event()

        async def evaluate(payload):
            await gate.wait()
            completed.append(payload["tag"])
            return payload["tag"]

        scheduler = _EvalScheduler(evaluate, workers=1, queue_depth=16)
        scheduler.start()
        # The first job occupies the single worker...
        filler = asyncio.ensure_future(scheduler.submit({"tag": "filler"}))
        await asyncio.sleep(0.01)
        # ...so these queue, and must pop highest-priority-first with
        # arrival order breaking the tie.
        jobs = [
            asyncio.ensure_future(scheduler.submit({"tag": "low"}, priority=0)),
            asyncio.ensure_future(scheduler.submit({"tag": "high"}, priority=5)),
            asyncio.ensure_future(scheduler.submit({"tag": "high2"}, priority=5)),
            asyncio.ensure_future(scheduler.submit({"tag": "mid"}, priority=3)),
        ]
        await asyncio.sleep(0.01)
        gate.set()
        await asyncio.gather(filler, *jobs)
        scheduler.drain(_RequestError(E_SHUTTING_DOWN, "test over"))

    asyncio.run(scenario())
    assert completed == ["filler", "high", "high2", "mid", "low"]


def test_scheduler_expires_queued_deadline_without_evaluating():
    evaluated = []

    async def scenario():
        gate = asyncio.Event()

        async def evaluate(payload):
            await gate.wait()
            evaluated.append(payload["tag"])
            return payload["tag"]

        scheduler = _EvalScheduler(evaluate, workers=1, queue_depth=16)
        scheduler.start()
        filler = asyncio.ensure_future(scheduler.submit({"tag": "filler"}))
        await asyncio.sleep(0.01)
        doomed = asyncio.ensure_future(
            scheduler.submit(
                {"tag": "doomed"},
                deadline=asyncio.get_running_loop().time() + 0.02,
            )
        )
        await asyncio.sleep(0.05)  # the deadline passes while queued
        gate.set()
        await filler
        with pytest.raises(_RequestError) as caught:
            await doomed
        assert caught.value.code == E_DEADLINE
        assert scheduler.expired == 1
        scheduler.drain(_RequestError(E_SHUTTING_DOWN, "test over"))

    asyncio.run(scenario())
    assert evaluated == ["filler"]  # the doomed job never ran


def test_scheduler_rejects_beyond_queue_depth_with_busy():
    async def scenario():
        gate = asyncio.Event()

        async def evaluate(payload):
            await gate.wait()
            return None

        scheduler = _EvalScheduler(evaluate, workers=1, queue_depth=1)
        scheduler.start()
        running = asyncio.ensure_future(scheduler.submit({"tag": "running"}))
        await asyncio.sleep(0.01)
        queued = asyncio.ensure_future(scheduler.submit({"tag": "queued"}))
        await asyncio.sleep(0.01)
        with pytest.raises(_RequestError) as caught:
            await scheduler.submit({"tag": "overflow"})
        assert caught.value.code == E_BUSY
        assert scheduler.rejected_busy == 1
        gate.set()
        await asyncio.gather(running, queued)
        scheduler.drain(_RequestError(E_SHUTTING_DOWN, "test over"))

    asyncio.run(scenario())


def test_scheduler_drain_fails_queued_jobs_and_refuses_new_ones():
    async def scenario():
        async def evaluate(payload):
            await asyncio.sleep(3600)

        scheduler = _EvalScheduler(evaluate, workers=1, queue_depth=16)
        scheduler.start()
        running = asyncio.ensure_future(scheduler.submit({"tag": "running"}))
        queued = asyncio.ensure_future(scheduler.submit({"tag": "queued"}))
        await asyncio.sleep(0.01)
        scheduler.drain(_RequestError(E_SHUTTING_DOWN, "draining"))
        for job in (running, queued):
            with pytest.raises(_RequestError) as caught:
                await job
            assert caught.value.code == E_SHUTTING_DOWN
        with pytest.raises(_RequestError):
            await scheduler.submit({"tag": "late"})

    asyncio.run(scenario())


# --------------------------------------------------------------------------- #
# end-to-end scheduling (real sockets, controlled evaluator)
# --------------------------------------------------------------------------- #


def _slow_evaluator(handle, hold_s, order=None):
    """Replace the server's evaluator with one that sleeps then records."""
    original = SweepServer._evaluate_payload

    async def slow(payload):
        await asyncio.sleep(hold_s)
        if order is not None:
            order.append(payload["observable"])
        return await original(handle.server, payload)

    handle.server._evaluate_payload = slow


def test_priority_jumps_the_saturated_queue_end_to_end():
    handle = start_server_thread(workers=1, batch_window_ms=0.0)
    order = []
    _slow_evaluator(handle, 0.15, order)
    try:
        done = []

        def request(observable, priority, delay):
            time.sleep(delay)
            with ServeClient("127.0.0.1", handle.port) as remote:
                remote.sweep_payload(small_sweep(observable), priority=priority)
                done.append(observable)

        threads = [
            # "period" occupies the worker; "power" (priority 0) then
            # "frequency" (priority 5) queue behind it — the higher
            # priority must evaluate first despite arriving later.
            threading.Thread(target=request, args=("period", 0, 0.0)),
            threading.Thread(target=request, args=("power", 0, 0.05)),
            threading.Thread(target=request, args=("frequency", 5, 0.10)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert order == ["period", "frequency", "power"]
        assert sorted(done) == ["frequency", "period", "power"]
    finally:
        handle.stop()


def test_expired_deadline_returns_structured_error_without_evaluating():
    handle = start_server_thread(workers=1, batch_window_ms=0.0)
    _slow_evaluator(handle, 0.3)
    try:
        def occupy():
            with ServeClient("127.0.0.1", handle.port) as remote:
                remote.sweep_payload(small_sweep("period"))

        filler = threading.Thread(target=occupy)
        filler.start()
        time.sleep(0.1)  # the filler owns the only worker
        with ServeClient("127.0.0.1", handle.port) as remote:
            with pytest.raises(ServeError) as caught:
                remote.sweep_payload(small_sweep("power"), deadline_ms=50)
            assert caught.value.code == E_DEADLINE
        filler.join()
        # Only the filler was ever evaluated.
        assert handle.server.evaluations == 1
        assert handle.server.scheduler.expired == 1
    finally:
        handle.stop()


def test_saturated_queue_answers_busy():
    handle = start_server_thread(workers=1, queue_depth=1, batch_window_ms=0.0)
    _slow_evaluator(handle, 0.4)
    try:
        started = threading.Barrier(3)
        codes = []

        def request(observable):
            with ServeClient("127.0.0.1", handle.port) as remote:
                started.wait()
                try:
                    remote.sweep_payload(small_sweep(observable))
                    codes.append("ok")
                except ServeError as error:
                    codes.append(error.code)

        threads = [
            threading.Thread(target=request, args=(obs,))
            for obs in ("period", "power", "frequency")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # One ran, one queued, one bounced: exactly one busy rejection
        # (modulo scheduling, at least one request must bounce).
        assert codes.count("busy") >= 1
        assert codes.count("ok") == len(codes) - codes.count("busy")
        assert handle.server.scheduler.rejected_busy >= 1
    finally:
        handle.stop()


def test_invalid_scheduling_fields_are_rejected(tmp_path):
    handle = start_server_thread()
    try:
        with ServeClient("127.0.0.1", handle.port) as remote:
            for message in (
                {"op": "sweep", "spec": small_sweep().to_dict(), "priority": "high"},
                {"op": "sweep", "spec": small_sweep().to_dict(), "priority": True},
                {"op": "sweep", "spec": small_sweep().to_dict(), "deadline_ms": -5},
                {"op": "sweep", "spec": small_sweep().to_dict(), "deadline_ms": "soon"},
            ):
                with pytest.raises(ServeError) as caught:
                    remote._request(message)
                assert caught.value.code == E_BAD_REQUEST
        assert handle.server.evaluations == 0
    finally:
        handle.stop()


def test_identical_sweeps_share_one_evaluation_across_workers():
    handle = start_server_thread(workers=2, batch_window_ms=1.0)
    try:
        spec = small_sweep("power").to_dict()
        results = [None] * 4
        barrier = threading.Barrier(4)

        def worker(slot):
            with ServeClient("127.0.0.1", handle.port) as remote:
                barrier.wait()
                results[slot] = remote.sweep_payload(spec)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(result == results[0] for result in results)
        # Two workers were available, but single-flight still collapsed
        # four identical requests into one evaluation.
        assert handle.server.evaluations == 1
    finally:
        handle.stop()


# --------------------------------------------------------------------------- #
# the disk tier: restart survival and corruption safety
# --------------------------------------------------------------------------- #


def test_restarted_server_serves_repeats_from_disk_with_zero_evaluations(tmp_path):
    cache_dir = str(tmp_path / "serve-cache")
    sweep = small_sweep()
    local = sweep.run().to_dict()

    first = start_server_thread(cache_dir=cache_dir)
    try:
        with ServeClient("127.0.0.1", first.port) as remote:
            assert remote.sweep_payload(sweep) == local
        assert first.server.evaluations == 1
    finally:
        first.stop()
    assert not first.thread.is_alive()

    # A brand-new server over the same directory: the repeat must be a
    # disk hit, not an evaluation.
    second = start_server_thread(cache_dir=cache_dir)
    try:
        with ServeClient("127.0.0.1", second.port) as remote:
            assert remote.sweep_payload(sweep) == local
            stats = remote.stats()
        assert second.server.evaluations == 0
        assert stats["cache"]["disk"]["hits"] == 1
        # Promoted into memory: the next repeat never touches the disk.
        with ServeClient("127.0.0.1", second.port) as remote:
            assert remote.sweep_payload(sweep) == local
            stats = remote.stats()
        assert stats["cache"]["disk"]["hits"] == 1
        assert second.server.evaluations == 0
    finally:
        second.stop()


def test_two_servers_sharing_a_cache_directory_share_results(tmp_path):
    cache_dir = str(tmp_path / "shared-cache")
    sweep = small_sweep("power")
    writer = start_server_thread(cache_dir=cache_dir)
    reader = start_server_thread(cache_dir=cache_dir)
    try:
        with ServeClient("127.0.0.1", writer.port) as remote:
            expected = remote.sweep_payload(sweep)
        with ServeClient("127.0.0.1", reader.port) as remote:
            assert remote.sweep_payload(sweep) == expected
        assert writer.server.evaluations == 1
        assert reader.server.evaluations == 0
    finally:
        writer.stop()
        reader.stop()


def test_corrupted_cache_file_is_skipped_and_reevaluated(tmp_path):
    cache_dir = str(tmp_path / "serve-cache")
    sweep = small_sweep()
    local = sweep.run().to_dict()

    first = start_server_thread(cache_dir=cache_dir)
    try:
        with ServeClient("127.0.0.1", first.port) as remote:
            remote.sweep_payload(sweep)
    finally:
        first.stop()

    key = canonical_key(sweep)
    entry = os.path.join(cache_dir, key + ".json")
    assert os.path.exists(entry)
    with open(entry, "wb") as handle:
        handle.write(b'{"version": 1, "truncated mid-wri')  # torn write

    second = start_server_thread(cache_dir=cache_dir)
    try:
        with ServeClient("127.0.0.1", second.port) as remote:
            # Never crashes, never serves garbage: the corrupt entry is
            # dropped, the sweep re-evaluates, the answer is exact.
            assert remote.sweep_payload(sweep) == local
        assert second.server.evaluations == 1
        # The re-evaluation healed the entry on disk: a stamped
        # envelope (spec schema version + technology digest) around
        # the exact result payload.
        with open(entry, "rb") as handle:
            envelope = json.load(handle)
        assert envelope["result"] == local
        assert envelope["spec_version"] == Sweep.SCHEMA_VERSION
        assert envelope["tech_digest"] == get_technology_digest("cmos035")
    finally:
        second.stop()


def test_legacy_unstamped_disk_entry_is_dropped_and_reevaluated(tmp_path):
    # A cache directory written by a pre-envelope build holds bare
    # result payloads.  They carry no spec-version / technology-digest
    # stamp, so there is no way to know what they were computed under:
    # they must be dropped and re-evaluated, never served.
    cache_dir = str(tmp_path / "serve-cache")
    os.makedirs(cache_dir)
    sweep = small_sweep()
    local = sweep.run().to_dict()
    key = canonical_key(sweep)
    entry = os.path.join(cache_dir, key + ".json")
    with open(entry, "w") as handle:
        json.dump(local, handle)  # legacy: raw payload, no envelope

    server = start_server_thread(cache_dir=cache_dir)
    try:
        with ServeClient("127.0.0.1", server.port) as remote:
            assert remote.sweep_payload(sweep) == local
        assert server.server.evaluations == 1  # not served from disk
    finally:
        server.stop()
    with open(entry, "rb") as handle:
        assert json.load(handle)["spec_version"] == Sweep.SCHEMA_VERSION


def test_disk_entry_with_foreign_tech_digest_is_never_served(tmp_path):
    # Belt and braces against a tampered / hand-copied shared directory:
    # an envelope whose technology digest disagrees with the requesting
    # spec's is stale by definition, whatever its key claims.
    from repro.serve.cache import DiskCache

    sweep = small_sweep()
    payload = sweep.run().to_dict()
    encoded = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    key = canonical_key(sweep)
    digest = get_technology_digest("cmos035")

    disk = DiskCache(str(tmp_path / "disk"))
    assert disk.put(key, encoded, tech_digest=digest)
    hit = disk.get(key, digest)
    assert hit is not None and hit[0] == payload

    assert disk.get(key, "0" * 64) is None  # foreign digest: dropped
    assert disk.get(key, digest) is None  # and gone for good
    stats = disk.stats()
    assert stats["stale_dropped"] == 1
    assert stats["entries"] == 0


def test_foreign_garbage_in_cache_dir_is_never_served(tmp_path):
    cache_dir = str(tmp_path / "serve-cache")
    os.makedirs(cache_dir)
    sweep = small_sweep()
    key = canonical_key(sweep)
    # Valid JSON, wrong shape: must fail structural validation.
    with open(os.path.join(cache_dir, key + ".json"), "w") as handle:
        json.dump({"version": 1, "totally": "unrelated"}, handle)
    server = start_server_thread(cache_dir=cache_dir)
    try:
        with ServeClient("127.0.0.1", server.port) as remote:
            assert remote.sweep_payload(sweep) == sweep.run().to_dict()
        assert server.server.evaluations == 1
    finally:
        server.stop()


# --------------------------------------------------------------------------- #
# sweep coalescing
# --------------------------------------------------------------------------- #


def test_concurrent_overlapping_sweeps_coalesce_into_one_evaluation():
    handle = start_server_thread(batch_window_ms=500.0)
    try:
        grids = [
            [-40.0, 25.0, 125.0],
            [0.0, 25.0, 85.0],  # overlaps at 25, differs elsewhere
        ]
        results = [None] * len(grids)
        barrier = threading.Barrier(len(grids))

        def worker(slot):
            with ServeClient("127.0.0.1", handle.port) as remote:
                barrier.wait()
                results[slot] = remote.sweep_payload(small_sweep(temps=grids[slot]))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(len(grids))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert handle.server.evaluations == 1
        assert handle.server.batcher.coalesced_sweeps == 2
        for grid, served in zip(grids, results):
            assert served == small_sweep(temps=grid).run().to_dict()
    finally:
        handle.stop()


def test_unsorted_grid_coalesces_and_preserves_request_order():
    handle = start_server_thread(batch_window_ms=200.0)
    try:
        grid = [125.0, -40.0, 25.0]  # deliberately unsorted
        with ServeClient("127.0.0.1", handle.port) as remote:
            served = remote.sweep_payload(small_sweep(temps=grid))
        assert served == small_sweep(temps=grid).run().to_dict()
        assert served["coords"]["temperature"] == grid
    finally:
        handle.stop()


def test_non_mergeable_concurrent_sweeps_fall_back_to_independent_evaluation():
    handle = start_server_thread(batch_window_ms=300.0)
    try:
        # Same window, but different base specs (different observables):
        # nothing to coalesce — both evaluate, both exact.
        observables = ["period", "power"]
        results = [None] * len(observables)
        barrier = threading.Barrier(len(observables))

        def worker(slot):
            with ServeClient("127.0.0.1", handle.port) as remote:
                barrier.wait()
                results[slot] = remote.sweep_payload(small_sweep(observables[slot]))

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(observables))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert handle.server.evaluations == 2
        for observable, served in zip(observables, results):
            assert served == small_sweep(observable).run().to_dict()
    finally:
        handle.stop()


def test_endpoint_observable_sweep_bypasses_the_coalescer():
    handle = start_server_thread(batch_window_ms=200.0)
    try:
        sweep = small_sweep("calibration_error_c")
        with ServeClient("127.0.0.1", handle.port) as remote:
            assert remote.sweep_payload(sweep) == sweep.run().to_dict()
        # Evaluated directly: endpoint-fit observables couple the whole
        # grid, so slicing a union would change their values.
        assert handle.server.batcher.batches == 0
        assert handle.server.evaluations == 1
    finally:
        handle.stop()


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    grids=st.lists(
        st.lists(
            st.sampled_from([-40.0, -15.0, 0.0, 25.0, 60.0, 85.0, 125.0]),
            min_size=1,
            max_size=4,
            unique=True,
        ),
        min_size=1,
        max_size=3,
    )
)
def test_coalesced_slices_are_bitwise_equal_to_solo_runs(grids):
    """Property: whatever grids coalesce, every slice is bit-exact.

    Drives the real :class:`MicroBatcher` (window 0: each flush takes
    whatever joined synchronously) with the real engine, comparing each
    member's slice against its solo evaluation — including unsorted,
    partially overlapping and duplicate-across-members grids.
    """
    base = base_spec()
    base_key = canonical_key(base)

    async def scenario():
        async def evaluate(payload, priority=0, deadline=None):
            return Sweep.from_dict(payload).run()

        batcher = MicroBatcher(evaluate, window_ms=1.0)
        jobs = [
            asyncio.ensure_future(batcher.submit(base_key, base, grid))
            for grid in grids
        ]
        return await asyncio.gather(*jobs)

    results = asyncio.run(scenario())
    for grid, result in zip(grids, results):
        solo = small_sweep(temps=grid).run()
        assert result.to_dict() == solo.to_dict()


# --------------------------------------------------------------------------- #
# graceful shutdown vs. the batch window
# --------------------------------------------------------------------------- #


def test_shutdown_resolves_pending_batch_with_structured_error():
    # A window long enough that the point is still pending when the
    # shutdown lands: the old race left its future (and client) hanging.
    handle = start_server_thread(batch_window_ms=60_000.0)
    try:
        outcome = {}
        pending_sent = threading.Event()

        def pending_point():
            with ServeClient("127.0.0.1", handle.port, timeout=30.0) as remote:
                try:
                    pending_sent.set()
                    remote.point(base_spec(), 25.0)
                    outcome["result"] = "ok"
                except ServeError as error:
                    outcome["result"] = error.code

        waiter = threading.Thread(target=pending_point)
        waiter.start()
        pending_sent.wait(timeout=10)
        time.sleep(0.2)  # let the point land in the open batch window
        with ServeClient("127.0.0.1", handle.port) as remote:
            remote.shutdown()
        waiter.join(timeout=10)
        assert not waiter.is_alive(), "pending client hung through shutdown"
        assert outcome["result"] == E_SHUTTING_DOWN
        assert handle.server.evaluations == 0  # drained, not evaluated
    finally:
        handle.stop()


# --------------------------------------------------------------------------- #
# client transport errors
# --------------------------------------------------------------------------- #


def test_dead_server_surfaces_as_structured_transport_error():
    # Bind-then-close: the port is real but nobody listens.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    started = time.monotonic()
    with pytest.raises(ServeError) as caught:
        ServeClient("127.0.0.1", port, connect_retries=2, retry_backoff_s=0.01)
    assert caught.value.code == "transport"
    # The retries actually backed off (0.01 + 0.02) before giving up.
    assert time.monotonic() - started >= 0.03


def test_request_retries_once_over_a_fresh_connection():
    # Kill the client's connection under it: the next idempotent
    # request must reconnect and succeed instead of raising.
    handle = start_server_thread()
    try:
        client = ServeClient(
            "127.0.0.1", handle.port, connect_retries=3, retry_backoff_s=0.02
        )
        try:
            assert client.ping()["ok"] is True
            client._sock.shutdown(socket.SHUT_RDWR)
            assert client.ping()["ok"] is True  # reconnected transparently
        finally:
            client.close()
    finally:
        handle.stop()


def test_unresponsive_server_surfaces_as_timeout_error():
    # A listener that accepts and then says nothing.
    mute = socket.socket()
    mute.bind(("127.0.0.1", 0))
    mute.listen(1)
    port = mute.getsockname()[1]
    try:
        client = ServeClient("127.0.0.1", port, timeout=0.2, connect_retries=0)
        try:
            with pytest.raises(ServeError) as caught:
                client._request({"op": "ping"}, retry=False)
            assert caught.value.code == "timeout"
        finally:
            client.close()
    finally:
        mute.close()
