"""Unit tests for the cell power model (switching energy + leakage)."""

import pytest

from repro.cells import CellPowerModel, inverter, nand_gate
from repro.tech import CMOS035, TechnologyError


@pytest.fixture(scope="module")
def power_model():
    return CellPowerModel(CMOS035)


@pytest.fixture(scope="module")
def inv():
    return inverter(CMOS035)


class TestSwitchingEnergy:
    def test_energy_scale_is_femtojoules(self, power_model, inv):
        energy = power_model.switching_energy_j(inv, load_f=10e-15)
        assert 1e-14 < energy < 1e-12

    def test_energy_increases_with_load(self, power_model, inv):
        assert power_model.switching_energy_j(inv, 20e-15) > power_model.switching_energy_j(
            inv, 5e-15
        )

    def test_negative_load_rejected(self, power_model, inv):
        with pytest.raises(TechnologyError):
            power_model.switching_energy_j(inv, -1e-15)


class TestDynamicPower:
    def test_scales_linearly_with_frequency_and_activity(self, power_model, inv):
        base = power_model.dynamic_power_w(inv, 10e-15, 100e6, activity=0.1)
        double_f = power_model.dynamic_power_w(inv, 10e-15, 200e6, activity=0.1)
        double_a = power_model.dynamic_power_w(inv, 10e-15, 100e6, activity=0.2)
        assert double_f == pytest.approx(2.0 * base)
        assert double_a == pytest.approx(2.0 * base)

    def test_invalid_inputs_rejected(self, power_model, inv):
        with pytest.raises(TechnologyError):
            power_model.dynamic_power_w(inv, 10e-15, -1.0)
        with pytest.raises(TechnologyError):
            power_model.dynamic_power_w(inv, 10e-15, 100e6, activity=1.5)


class TestLeakage:
    def test_leakage_grows_strongly_with_temperature(self, power_model, inv):
        cold = power_model.leakage_power_w(inv, 25.0)
        hot = power_model.leakage_power_w(inv, 125.0)
        assert hot > 5.0 * cold  # roughly a decade per 60-80 C

    def test_leakage_positive_but_small_at_room(self, power_model, inv):
        leakage = power_model.leakage_power_w(inv, 25.0)
        assert 0.0 < leakage < 1e-6

    def test_larger_cells_leak_more(self, power_model):
        inv_leak = power_model.leakage_current_a(inverter(CMOS035), 85.0)
        nand3_leak = power_model.leakage_current_a(nand_gate(CMOS035, 3), 85.0)
        assert nand3_leak > inv_leak

    def test_invalid_leakage_density_rejected(self):
        with pytest.raises(TechnologyError):
            CellPowerModel(CMOS035, leakage_at_nominal_a_per_um=0.0)


class TestBlockPower:
    def test_gate_power_combines_components(self, power_model, inv):
        gate = power_model.gate_power(inv, 85.0, 100e6, 10e-15)
        assert gate.total_w == pytest.approx(gate.dynamic_w + gate.leakage_w)

    def test_block_power_scales_with_gate_count(self, power_model, inv):
        one = power_model.block_power_w(inv, 1000, 85.0, 100e6)
        two = power_model.block_power_w(inv, 2000, 85.0, 100e6)
        assert two == pytest.approx(2.0 * one)

    def test_dynamic_dominates_at_full_speed_on_this_node(self, power_model, inv):
        # At 0.35 um / 3.3 V leakage is a small fraction of active power.
        gate = power_model.gate_power(inv, 85.0, 200e6, 10e-15, activity=0.2)
        assert gate.dynamic_w > 10.0 * gate.leakage_w

    def test_negative_gate_count_rejected(self, power_model, inv):
        with pytest.raises(TechnologyError):
            power_model.block_power_w(inv, -1, 85.0, 100e6)
