"""Equivalence harness for the stacked technology-sample axis.

PR 1 pinned the vectorized *temperature* axis to the scalar oracle;
these tests pin the *sample* axis introduced by the struct-of-arrays
technology populations (:mod:`repro.tech.stacked`): the stacked
``period_matrix`` against the retained per-sample rebind loop
(:meth:`~repro.oscillator.ring.RingOscillator.period_matrix_loop`), the
vectorized Monte-Carlo sampler against the looped one, and the batched
calibration / supply / self-heating studies against their per-sample
scalar paths — to the same 1e-9 relative contract on periods.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.supply import supply_sensitivity
from repro.cells import characterize_cell, default_library
from repro.core import ReadoutConfig, SmartTemperatureSensor
from repro.core.calibration import (
    CalibrationError,
    LinearCalibration,
    PolynomialCalibration,
    fit_polynomial_calibration,
)
from repro.engine import BatchEvaluator
from repro.experiments.calibration_study import run_calibration_study
from repro.experiments.selfheating_study import run_selfheating_study
from repro.oscillator import RingConfiguration, RingOscillator
from repro.tech import (
    CMOS035,
    TechnologyError,
    corner_technologies,
    sample_technologies,
    sample_technology_array,
    stack_technologies,
)

#: The acceptance bound on stacked-vs-looped relative period error.
RTOL = 1e-9

DEFAULT_SETTINGS = dict(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

ring_cells = st.sampled_from(["INV", "NAND2", "NAND3", "NOR2", "NOR3"])

configurations = (
    st.integers(min_value=1, max_value=3)
    .map(lambda n: 2 * n + 1)
    .flatmap(lambda count: st.lists(ring_cells, min_size=count, max_size=count))
    .map(lambda stages: RingConfiguration(tuple(stages)))
)

temperature_grids = st.lists(
    st.floats(min_value=-50.0, max_value=150.0, allow_nan=False),
    min_size=3,
    max_size=12,
    unique=True,
).map(lambda temps: np.asarray(sorted(temps)))

technology_seeds = st.integers(min_value=0, max_value=2**31 - 1)


def relative_error(stacked, looped):
    stacked = np.asarray(stacked, dtype=float)
    looped = np.asarray(looped, dtype=float)
    return float(np.max(np.abs(stacked - looped) / np.abs(looped)))


# --------------------------------------------------------------------------- #
# stacked sampling and stacking round trips
# --------------------------------------------------------------------------- #


@given(seed=technology_seeds, count=st.integers(min_value=1, max_value=16))
@settings(**DEFAULT_SETTINGS)
def test_sample_technology_array_matches_looped_sampler_bitwise(seed, count):
    looped = stack_technologies(sample_technologies(CMOS035, count, seed=seed))
    stacked = sample_technology_array(CMOS035, count, seed=seed)
    assert stacked.sample_count == count
    for polarity in ("nmos", "pmos"):
        for field in ("vth0", "mobility", "cox_f_per_um2", "alpha", "vth_temp_coeff"):
            assert np.array_equal(
                getattr(getattr(stacked, polarity), field),
                getattr(getattr(looped, polarity), field),
            ), (polarity, field)
    assert np.array_equal(stacked.vdd, looped.vdd)


def test_stack_round_trips_through_technology_at():
    samples = sample_technologies(CMOS035, 4, seed=7)
    stacked = stack_technologies(samples)
    assert len(stacked) == 4
    for index, sample in enumerate(samples):
        unstacked = stacked.technology_at(index)
        assert unstacked.vdd == sample.vdd
        assert unstacked.nmos.vth0 == sample.nmos.vth0
        assert unstacked.pmos.mobility == sample.pmos.mobility
        assert unstacked.nmos.cox_f_per_um2 == sample.nmos.cox_f_per_um2


def test_stack_preserves_extra_metadata():
    import dataclasses

    limited = dataclasses.replace(CMOS035, extra={"t_max_c": 125.0})
    stacked = stack_technologies([CMOS035, limited])
    assert stacked.technology_at(0).thermal_design_range_c() == (-50.0, 150.0)
    assert stacked.technology_at(1).thermal_design_range_c() == (-50.0, 125.0)
    # The vectorized sampler carries the base technology's extra too.
    population = sample_technology_array(limited, 3, seed=1)
    assert population.technology_at(2).extra == {"t_max_c": 125.0}


def test_stack_rejects_empty_and_mixed_geometry():
    with pytest.raises(TechnologyError):
        stack_technologies([])
    import dataclasses

    shrunk = dataclasses.replace(CMOS035, min_width_um=CMOS035.min_width_um / 2)
    with pytest.raises(TechnologyError):
        stack_technologies([CMOS035, shrunk])


def test_technology_array_validates_elementwise():
    samples = sample_technologies(CMOS035, 3, seed=0)
    stacked = stack_technologies(samples)
    with pytest.raises(TechnologyError):
        # One sample's supply below threshold must be rejected.
        stacked.with_supply(np.asarray([3.3, 0.1, 3.3]))


# --------------------------------------------------------------------------- #
# stacked period matrix vs the per-sample loop
# --------------------------------------------------------------------------- #


@given(configuration=configurations, temps=temperature_grids, seed=technology_seeds)
@settings(**DEFAULT_SETTINGS)
def test_period_matrix_stacked_matches_loop(configuration, temps, seed):
    ring = RingOscillator(default_library(CMOS035), configuration)
    technologies = sample_technologies(CMOS035, 4, seed=seed)
    stacked = ring.period_matrix(technologies, temps)
    looped = ring.period_matrix_loop(technologies, temps)
    assert stacked.shape == (4, temps.size)
    assert relative_error(stacked, looped) <= RTOL


def test_period_matrix_accepts_technology_array_directly():
    ring = RingOscillator(
        default_library(CMOS035), RingConfiguration.parse("2INV+3NAND2")
    )
    temps = np.linspace(-50.0, 150.0, 21)
    population = sample_technology_array(CMOS035, 6, seed=3)
    stacked = ring.period_matrix(population, temps)
    looped = ring.period_matrix_loop(population, temps)
    assert relative_error(stacked, looped) <= RTOL


def test_period_matrix_over_corners_matches_loop():
    ring = RingOscillator(
        default_library(CMOS035), RingConfiguration.uniform("INV", 5)
    )
    technologies = list(corner_technologies(CMOS035).values())
    temps = np.linspace(-50.0, 150.0, 41)
    assert relative_error(
        ring.period_matrix(technologies, temps),
        ring.period_matrix_loop(technologies, temps),
    ) <= RTOL


def test_stacked_ring_period_series_matches_per_sample_scalar():
    ring = RingOscillator(
        default_library(CMOS035), RingConfiguration.parse("1INV+2NOR2+2NAND3")
    )
    temps = np.linspace(-40.0, 125.0, 12)
    technologies = sample_technologies(CMOS035, 3, seed=11)
    stacked = ring.rebind(stack_technologies(technologies)).period_series(temps)
    for row, tech in enumerate(technologies):
        scalar = ring.rebind(tech).period_series_scalar(temps)
        assert relative_error(stacked[row], scalar) <= RTOL


def test_engine_scalar_mode_still_loops_per_sample(inverter_ring):
    temps = np.linspace(-50.0, 150.0, 9)
    technologies = sample_technologies(CMOS035, 3, seed=2)
    vectorized = BatchEvaluator().period_matrix(inverter_ring, technologies, temps)
    scalar = BatchEvaluator(vectorized=False).period_matrix(
        inverter_ring, technologies, temps
    )
    assert relative_error(vectorized, scalar) <= RTOL
    # Scalar mode must also accept a stacked population (unstacking it).
    population = stack_technologies(technologies)
    assert np.array_equal(
        BatchEvaluator(vectorized=False).period_matrix(
            inverter_ring, population, temps
        ),
        scalar,
    )


def test_stacked_cells_refuse_netlists_and_characterisation():
    from repro.cells.cell import CellError

    population = sample_technology_array(CMOS035, 3, seed=5)
    ring = RingOscillator(
        default_library(CMOS035), RingConfiguration.uniform("INV", 5)
    ).rebind(population)
    with pytest.raises(CellError):
        ring.build_circuit(25.0)
    with pytest.raises(CellError):
        characterize_cell(ring.cells()[0], np.linspace(-50.0, 150.0, 5))


# --------------------------------------------------------------------------- #
# batched studies vs their per-sample scalar paths
# --------------------------------------------------------------------------- #


def test_calibration_study_batched_matches_scalar_loop():
    vectorized = run_calibration_study(monte_carlo_samples=6, seed=99)
    scalar = run_calibration_study(monte_carlo_samples=6, seed=99, scalar=True)
    assert vectorized.sample_count == scalar.sample_count == 11
    for scheme in ("design", "one-point", "two-point"):
        vec_stats = vectorized.errors_by_scheme[scheme]
        ref_stats = scalar.errors_by_scheme[scheme]
        assert vec_stats.mean == pytest.approx(ref_stats.mean, rel=RTOL, abs=1e-9)
        assert vec_stats.minimum == pytest.approx(ref_stats.minimum, rel=RTOL, abs=1e-9)
        assert vec_stats.maximum == pytest.approx(ref_stats.maximum, rel=RTOL, abs=1e-9)
        assert vectorized.worst_by_scheme[scheme] == pytest.approx(
            scalar.worst_by_scheme[scheme], rel=RTOL, abs=1e-9
        )


def test_calibration_study_degenerate_sweep_raises_like_oracle():
    # A sweep so narrow (or a counter so coarse) that both endpoint
    # periods quantise to one code must raise the oracle's
    # CalibrationError in both modes, not divide by zero.
    narrow = np.linspace(25.0, 26.0, 4)
    coarse = ReadoutConfig(window_cycles=2)
    with pytest.raises(CalibrationError, match="periods must differ"):
        run_calibration_study(
            monte_carlo_samples=3, temperatures_c=narrow, readout=coarse
        )
    with pytest.raises(CalibrationError, match="periods must differ"):
        run_calibration_study(
            monte_carlo_samples=3, temperatures_c=narrow, readout=coarse,
            scalar=True,
        )


def test_period_matrix_mixed_geometry_falls_back_to_loop():
    # Lists the stacker rejects (different geometry scalars, e.g. when
    # comparing technology nodes) must still evaluate via the
    # per-sample path, as they did before the stacked axis existed.
    from repro.tech import CMOS018

    ring = RingOscillator(
        default_library(CMOS035), RingConfiguration.uniform("INV", 5)
    )
    temps = np.linspace(-50.0, 150.0, 9)
    mixed = [CMOS035, CMOS018]
    matrix = ring.period_matrix(mixed, temps)
    assert matrix.shape == (2, temps.size)
    assert relative_error(matrix, ring.period_matrix_loop(mixed, temps)) <= RTOL


def test_calibration_study_through_engine_matches_direct_call():
    from_engine = BatchEvaluator().run_calibration_study(
        monte_carlo_samples=4, seed=5
    )
    direct = run_calibration_study(monte_carlo_samples=4, seed=5)
    for scheme in ("design", "one-point", "two-point"):
        assert from_engine.worst_by_scheme[scheme] == pytest.approx(
            direct.worst_by_scheme[scheme], rel=RTOL
        )


def test_supply_sensitivity_stacked_matches_rebuild_loop():
    configuration = RingConfiguration.parse("2INV+3NAND2")
    vectorized = supply_sensitivity(CMOS035, configuration)
    scalar = supply_sensitivity(CMOS035, configuration, scalar=True)
    assert vectorized.period_per_volt_s == pytest.approx(
        scalar.period_per_volt_s, rel=RTOL
    )
    assert vectorized.period_per_kelvin_s == pytest.approx(
        scalar.period_per_kelvin_s, rel=RTOL
    )
    assert vectorized.kelvin_per_millivolt == pytest.approx(
        scalar.kelvin_per_millivolt, rel=1e-6
    )


def test_supply_sensitivity_custom_builder_uses_reference_path():
    calls = []

    def builder(tech):
        calls.append(tech.vdd)
        return default_library(tech)

    configuration = RingConfiguration.uniform("INV", 5)
    report = supply_sensitivity(CMOS035, configuration, library_builder=builder)
    # The rebuild-per-operating-point oracle builds one library per
    # supply/temperature evaluation (custom builders may depend on Vdd).
    assert len(calls) == 4
    assert report.period_per_kelvin_s > 0.0


def test_selfheating_two_solve_path_matches_per_duty_solves():
    vectorized = run_selfheating_study(grid_resolution=12)
    scalar = run_selfheating_study(grid_resolution=12, scalar=True)
    assert vectorized.oscillator_power_w == pytest.approx(
        scalar.oscillator_power_w, rel=RTOL
    )
    for vec_report, ref_report in zip(vectorized.reports, scalar.reports):
        assert vec_report.duty_cycle == ref_report.duty_cycle
        # Two linear solves vs one per duty agree to solver rounding,
        # far tighter than any physically meaningful difference.
        assert vec_report.temperature_rise_c == pytest.approx(
            ref_report.temperature_rise_c, rel=1e-6, abs=1e-9
        )
        assert vec_report.background_temperature_c == pytest.approx(
            ref_report.background_temperature_c, rel=RTOL
        )
    assert vectorized.improvement_factor() == pytest.approx(
        scalar.improvement_factor(), rel=1e-6
    )


# --------------------------------------------------------------------------- #
# vectorized sensor sweeps and ndarray calibrations
# --------------------------------------------------------------------------- #


@given(temps=temperature_grids.filter(lambda t: t[-1] - t[0] >= 5.0))
@settings(**DEFAULT_SETTINGS)
def test_measurement_errors_vectorized_matches_scalar(temps):
    # Grids narrower than a few kelvin can quantise both calibration
    # points to the same counter code, which (correctly) refuses to
    # calibrate — not the equivalence property under test here.
    sensor = SmartTemperatureSensor.from_configuration(
        CMOS035, RingConfiguration.parse("2INV+3NAND2"), readout=ReadoutConfig()
    )
    sensor.calibrate_two_point(float(temps[0]), float(temps[-1]))
    vectorized = sensor.measurement_errors(temps)
    scalar = sensor.measurement_errors(temps, scalar=True)
    assert np.allclose(vectorized, scalar, rtol=0.0, atol=1e-9)
    assert sensor.worst_case_error_c(temps) == pytest.approx(
        sensor.worst_case_error_c(temps, scalar=True), rel=RTOL, abs=1e-9
    )


def test_measured_periods_match_scalar_measured_period(smart_sensor):
    temps = np.linspace(-40.0, 120.0, 17)
    batch = smart_sensor.measured_periods(temps)
    scalar = np.asarray([smart_sensor.measured_period(float(t)) for t in temps])
    assert np.array_equal(batch, scalar)


def test_linear_calibration_accepts_ndarrays():
    calibration = LinearCalibration(slope_c_per_second=1.0e12, offset_c=-200.0)
    periods = np.asarray([[2.0e-10, 2.5e-10], [3.0e-10, 3.5e-10]])
    estimates = calibration.temperature(periods)
    assert estimates.shape == periods.shape
    assert estimates[0, 0] == pytest.approx(calibration.temperature(2.0e-10))
    assert isinstance(calibration.temperature(2.0e-10), float)
    recovered = calibration.period(estimates)
    assert np.allclose(recovered, periods, rtol=1e-12)
    assert isinstance(calibration.period(25.0), float)
    with pytest.raises(CalibrationError):
        calibration.temperature(np.asarray([1.0e-10, -1.0e-10]))


def test_polynomial_calibration_accepts_ndarrays():
    periods = 2.0e-10 + 1.0e-12 * np.arange(10)
    temps = -50.0 + 20.0 * np.arange(10)
    calibration = fit_polynomial_calibration(periods, temps, degree=2)
    assert isinstance(calibration, PolynomialCalibration)
    batch = calibration.temperature(periods)
    scalar = np.asarray([calibration.temperature(float(p)) for p in periods])
    assert np.allclose(batch, scalar, rtol=1e-12)
    assert isinstance(calibration.temperature(float(periods[0])), float)
    with pytest.raises(CalibrationError):
        calibration.temperature(np.asarray([-1.0e-10]))


# --------------------------------------------------------------------------- #
# Monte-Carlo grid validation (fail-fast satellite)
# --------------------------------------------------------------------------- #


class TestMonteCarloGridValidation:
    def _run(self, temps):
        from repro.analysis.montecarlo import run_monte_carlo

        return run_monte_carlo(
            CMOS035,
            RingConfiguration.uniform("INV", 5),
            sample_count=2,
            temperatures_c=temps,
        )

    def test_unsorted_grid_is_sorted_not_broken(self):
        study = self._run([150.0, -50.0, 25.0])
        temps = study.responses[0].temperatures_c
        assert np.array_equal(temps, np.asarray([-50.0, 25.0, 150.0]))

    def test_duplicate_temperatures_fail_fast(self):
        with pytest.raises(TechnologyError, match="duplicate"):
            self._run([-50.0, 25.0, 25.0, 150.0])

    def test_non_finite_temperatures_fail_fast(self):
        with pytest.raises(TechnologyError, match="finite"):
            self._run([-50.0, float("nan"), 150.0])

    def test_too_few_points_fail_fast(self):
        with pytest.raises(TechnologyError, match="at least three"):
            self._run([0.0, 100.0])

    def test_reference_outside_sorted_range_still_rejected(self):
        with pytest.raises(TechnologyError, match="reference temperature"):
            from repro.analysis.montecarlo import run_monte_carlo

            run_monte_carlo(
                CMOS035,
                RingConfiguration.uniform("INV", 5),
                sample_count=2,
                temperatures_c=[30.0, 90.0, 150.0],
                reference_temperature_c=25.0,
            )

    def test_monte_carlo_stacked_population_matches_looped_samples(self):
        from repro.analysis.montecarlo import run_monte_carlo

        vectorized = run_monte_carlo(
            CMOS035,
            RingConfiguration.parse("2INV+3NAND2"),
            sample_count=8,
            seed=31,
        )
        scalar = run_monte_carlo(
            CMOS035,
            RingConfiguration.parse("2INV+3NAND2"),
            sample_count=8,
            seed=31,
            scalar=True,
        )
        for vec_response, ref_response in zip(
            vectorized.responses, scalar.responses
        ):
            assert relative_error(
                vec_response.periods_s, ref_response.periods_s
            ) <= RTOL
