"""Tests for the extension experiments (EXT-SUPPLY, EXT-SCALING, EXT-DTM)."""

import numpy as np
import pytest

from repro.experiments import (
    default_registry,
    run_dtm_study,
    run_scaling_study,
    run_supply_sensitivity,
    run_thermal_map_study,
)
from repro.tech import CMOS013, CMOS035


class TestSupplySensitivityExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_supply_sensitivity(CMOS035)

    def test_all_fig3_configurations_covered(self, result):
        assert len(result.reports) == 6
        assert "5INV" in result.reports

    def test_sensitivities_in_expected_range(self, result):
        for report in result.reports.values():
            assert 0.01 < report.kelvin_per_millivolt < 0.5

    def test_best_and_worst_identified(self, result):
        best = result.best_configuration()
        worst = result.worst_configuration()
        assert result.reports[best].kelvin_per_millivolt <= result.reports[
            worst
        ].kelvin_per_millivolt

    def test_table_lists_budget(self, result):
        assert "allowed supply error" in result.format_table()


class TestScalingStudyExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scaling_study(temperatures_c=np.linspace(-50.0, 150.0, 9))

    def test_four_nodes_evaluated(self, result):
        assert [p.technology_name for p in result.points] == [
            "cmos035",
            "cmos025",
            "cmos018",
            "cmos013",
        ]

    def test_rings_get_faster_as_technology_scales(self, result):
        periods = [p.period_at_25c_s for p in result.points]
        assert periods == sorted(periods, reverse=True)

    def test_sensitivity_retained_across_nodes(self, result):
        assert result.sensitivity_retained() > 0.5

    def test_linearity_degrades_at_low_supply(self, result):
        # Lower supply means the threshold-voltage term dominates more,
        # so the mix optimised at 3.3 V becomes less linear: the known
        # reason ring sensors need per-node re-optimisation.
        nonlinearities = [p.max_nonlinearity_percent for p in result.points]
        assert nonlinearities[-1] > nonlinearities[0]

    def test_reoptimization_improves_every_node(self):
        result = run_scaling_study(
            temperatures_c=np.linspace(-50.0, 150.0, 9), reoptimize=True
        )
        for point in result.points:
            assert point.reoptimized_label is not None
            assert point.reoptimized_nonlinearity_percent <= point.max_nonlinearity_percent + 1e-9

    def test_power_density_trend_positive(self, result):
        assert result.power_density_trend > 1.0

    def test_technology_axis_matches_per_node_loop(self, result):
        # The study's node loop is declared through the engine's
        # ``technology`` axis; the retained hand-written loop is its
        # oracle, and every reported figure must agree bitwise.
        oracle = run_scaling_study(
            temperatures_c=np.linspace(-50.0, 150.0, 9),
            use_technology_axis=False,
        )
        assert oracle.points == result.points
        assert oracle.format_table() == result.format_table()


class TestDtmExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_dtm_study(
            CMOS035,
            duration_s=0.8,
            control_interval_s=0.04,
            grid_resolution=12,
            sensor_grid=2,
        )

    def test_unmanaged_die_overheats(self, result):
        assert result.unmanaged.peak_temperature_c() > result.limit_c
        assert result.unmanaged.time_above_limit_s() > 0.0

    def test_managed_die_stays_near_limit(self, result):
        assert result.managed.peak_temperature_c() < result.unmanaged.peak_temperature_c()
        assert result.keeps_die_below_limit(tolerance_c=5.0)

    def test_throttling_costs_some_performance(self, result):
        assert 0.0 < result.performance_cost() < 1.0

    def test_summary_renders(self, result):
        text = result.format_summary()
        assert "unmanaged peak" in text
        assert "average performance" in text


class TestThermalMapExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_thermal_map_study(
            CMOS035,
            sensor_grids=(1, 2, 3),
            sample_count=20,
            grid_resolution=16,
            seed=2005,
        )

    def test_every_density_evaluated(self, result):
        assert [p.site_count for p in result.points] == [1, 4, 9]
        assert result.sample_count == 20

    def test_denser_grids_reconstruct_better(self, result):
        rms = [p.mean_map_rms_error_c for p in result.points]
        assert rms == sorted(rms, reverse=True)
        assert result.points[-1].mean_abs_hotspot_error_c < result.points[0].mean_abs_hotspot_error_c

    def test_site_errors_stay_small_across_population(self, result):
        # The per-site error is calibration + quantisation, independent
        # of the grid density; the map error is dominated by sparsity.
        for point in result.points:
            assert point.worst_site_error_c < 2.0
            assert point.worst_site_error_c < point.max_map_rms_error_c + 2.0

    def test_scan_time_scales_with_site_count(self, result):
        times = {p.site_count: p.scan_time_s for p in result.points}
        assert times[4] == pytest.approx(4 * times[1])
        assert times[9] == pytest.approx(9 * times[1])

    def test_best_density_selector(self, result):
        generous = result.best_density_under(1000.0)
        assert generous is not None and generous.site_count == 1
        assert result.best_density_under(0.0) is None

    def test_table_renders(self, result):
        text = result.format_table()
        assert "EXT-THERMALMAP" in text
        assert "Monte-Carlo" in text


class TestRegistryIncludesExtensions:
    def test_extension_ids_registered(self):
        names = set(default_registry().names())
        assert {"EXT-SUPPLY", "EXT-SCALING", "EXT-DTM", "EXT-THERMALMAP"} <= names
