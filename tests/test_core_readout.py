"""Unit tests for the counter-based period-to-digital readout."""

import pytest

from repro.core import PeriodCounter, ReadoutConfig, ReferenceCounter
from repro.tech import TechnologyError


class TestReadoutConfig:
    def test_window_and_conversion_time(self):
        config = ReadoutConfig(reference_clock_hz=50e6, window_cycles=256)
        assert config.window_s == pytest.approx(256 / 50e6)
        assert config.conversion_time_s > config.window_s

    def test_max_code(self):
        assert ReadoutConfig(counter_bits=8).max_code == 255

    def test_invalid_parameters_rejected(self):
        with pytest.raises(TechnologyError):
            ReadoutConfig(reference_clock_hz=0.0)
        with pytest.raises(TechnologyError):
            ReadoutConfig(window_cycles=0)
        with pytest.raises(TechnologyError):
            ReadoutConfig(counter_bits=2)


class TestPeriodCounter:
    def test_code_is_floor_of_cycles_in_window(self):
        counter = PeriodCounter(ReadoutConfig(reference_clock_hz=1e6, window_cycles=10))
        # window = 10 us; a 3 us period fits 3 times.
        reading = counter.convert(3e-6)
        assert reading.code == 3
        assert not reading.saturated

    def test_code_decreases_with_period(self):
        counter = PeriodCounter()
        assert counter.convert(400e-12).code < counter.convert(200e-12).code

    def test_saturation_flag(self):
        counter = PeriodCounter(ReadoutConfig(counter_bits=8, window_cycles=1024))
        reading = counter.convert(1e-12)
        assert reading.saturated
        assert reading.code == 255

    def test_nonpositive_period_rejected(self):
        with pytest.raises(TechnologyError):
            PeriodCounter().convert(0.0)

    def test_code_to_period_round_trip(self):
        counter = PeriodCounter()
        period = 300e-12
        code = counter.convert(period).code
        recovered = counter.code_to_period(code)
        # Within one quantisation step.
        assert recovered == pytest.approx(period, rel=1.0 / code)

    def test_code_to_period_rejects_zero_code(self):
        with pytest.raises(TechnologyError):
            PeriodCounter().code_to_period(0)

    def test_quantisation_step_positive_and_small(self):
        counter = PeriodCounter()
        step = counter.quantisation_step_s(300e-12)
        assert 0.0 < step < 1e-12


class TestReferenceCounter:
    def test_code_increases_with_period(self):
        counter = ReferenceCounter(ReadoutConfig(reference_clock_hz=100e6), ring_cycles=1000)
        slow = counter.convert(400e-12).code
        fast = counter.convert(200e-12).code
        assert slow > fast

    def test_code_value(self):
        counter = ReferenceCounter(ReadoutConfig(reference_clock_hz=100e6), ring_cycles=1000)
        # 1000 cycles of 10 ns = 10 us window -> 1000 reference cycles.
        assert counter.convert(10e-9).code == 1000

    def test_round_trip(self):
        counter = ReferenceCounter(ReadoutConfig(reference_clock_hz=100e6), ring_cycles=10000)
        period = 300e-12
        code = counter.convert(period).code
        assert counter.code_to_period(code) == pytest.approx(period, rel=0.01)

    def test_invalid_ring_cycles_rejected(self):
        with pytest.raises(TechnologyError):
            ReferenceCounter(ring_cycles=0)

    def test_nonpositive_period_rejected(self):
        with pytest.raises(TechnologyError):
            ReferenceCounter().convert(-1e-12)
