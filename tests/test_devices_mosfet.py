"""Unit tests for the alpha-power MOSFET model."""

import pytest

from repro.devices import DeviceSizing, MosfetModel
from repro.tech import CMOS035, TechnologyError


def nmos(width=1.0, temp_k=300.15):
    return MosfetModel(CMOS035.nmos, DeviceSizing(width_um=width), temp_k)


def pmos(width=2.0, temp_k=300.15):
    return MosfetModel(CMOS035.pmos, DeviceSizing(width_um=width), temp_k)


class TestDeviceSizing:
    def test_rejects_nonpositive_width(self):
        with pytest.raises(TechnologyError):
            DeviceSizing(width_um=0.0)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(TechnologyError):
            DeviceSizing(width_um=1.0, length_um=-0.1)

    def test_length_defaults_to_technology(self):
        sizing = DeviceSizing(width_um=1.0)
        assert sizing.length_or(0.35) == pytest.approx(0.35)


class TestCurrentBasics:
    def test_off_device_leaks_little(self):
        device = nmos()
        assert device.ids(vgs=0.0, vds=3.3) < 1e-8

    def test_on_device_conducts_milliamps(self):
        device = nmos()
        current = device.ids(vgs=3.3, vds=3.3)
        assert 1e-4 < current < 1e-2

    def test_current_increases_with_gate_drive(self):
        device = nmos()
        assert device.ids(2.0, 3.3) < device.ids(2.5, 3.3) < device.ids(3.3, 3.3)

    def test_current_increases_with_width(self):
        narrow = nmos(width=1.0).ids(3.3, 3.3)
        wide = nmos(width=3.0).ids(3.3, 3.3)
        assert wide == pytest.approx(3.0 * narrow, rel=1e-6)

    def test_zero_vds_gives_zero_current(self):
        device = nmos()
        assert device.ids(3.3, 0.0) == pytest.approx(0.0, abs=1e-12)

    def test_negative_vds_antisymmetric(self):
        device = nmos()
        forward = device.ids(3.3, 0.2)
        reverse = device.ids(3.3, -0.2)
        assert reverse < 0.0
        # Not exactly symmetric (the gate drive frame shifts), but the
        # magnitudes must be comparable for a small |vds|.
        assert abs(reverse) == pytest.approx(forward, rel=0.3)

    def test_linear_region_below_saturation(self):
        device = nmos()
        vdsat = device.vdsat(3.3)
        linear = device.ids(3.3, 0.4 * vdsat)
        saturated = device.ids(3.3, 2.0 * vdsat)
        assert linear < saturated

    def test_saturation_current_flat_beyond_vdsat(self):
        device = nmos()
        vdsat = device.vdsat(3.3)
        i1 = device.ids(3.3, vdsat * 1.2)
        i2 = device.ids(3.3, vdsat * 1.8)
        # Only channel-length modulation separates them.
        assert i2 > i1
        assert (i2 - i1) / i1 < 0.1


class TestTemperatureDependence:
    def test_drive_current_falls_with_temperature(self):
        cold = nmos(temp_k=250.0).ids(3.3, 3.3)
        hot = nmos(temp_k=400.0).ids(3.3, 3.3)
        assert cold > hot

    def test_threshold_falls_with_temperature(self):
        assert nmos(temp_k=400.0).vth < nmos(temp_k=250.0).vth

    def test_pmos_also_degrades(self):
        cold = pmos(temp_k=250.0).ids(3.3, 3.3)
        hot = pmos(temp_k=400.0).ids(3.3, 3.3)
        assert cold > hot


class TestOperatingPoint:
    def test_region_classification(self):
        device = nmos()
        assert device.operating_point(0.2, 1.0).region == "subthreshold"
        assert device.operating_point(3.3, 0.1).region == "linear"
        assert device.operating_point(3.3, 3.3).region == "saturation"

    def test_transconductance_positive_when_on(self):
        op = nmos().operating_point(2.5, 3.3)
        assert op.gm > 0.0

    def test_output_conductance_nonnegative(self):
        op = nmos().operating_point(2.5, 3.3)
        assert op.gds >= 0.0

    def test_gm_larger_in_saturation_than_subthreshold(self):
        device = nmos()
        on = device.operating_point(3.3, 3.3).gm
        off = device.operating_point(0.1, 3.3).gm
        assert on > off


class TestCapacitances:
    def test_gate_capacitance_scales_with_width(self):
        assert nmos(width=4.0).gate_capacitance() == pytest.approx(
            4.0 * nmos(width=1.0).gate_capacitance()
        )

    def test_capacitances_are_femto_scale(self):
        assert 1e-16 < nmos().gate_capacitance() < 1e-13
        assert 1e-16 < nmos().drain_capacitance() < 1e-13

    def test_from_technology_constructor(self):
        device = MosfetModel.from_technology(CMOS035, "pmos", width_um=2.0, temperature_k=300.0)
        assert device.params.polarity == "pmos"
        assert device.width_um == pytest.approx(2.0)
