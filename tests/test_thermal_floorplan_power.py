"""Unit tests for floorplans and power maps."""

import numpy as np
import pytest

from repro.tech import TechnologyError
from repro.thermal import Floorplan, FunctionalBlock, PowerMap, SensorSite


class TestFunctionalBlock:
    def test_area_and_density(self):
        block = FunctionalBlock("core", 0.0, 0.0, 2.0, 3.0, 6.0)
        assert block.area_mm2 == pytest.approx(6.0)
        assert block.power_density_w_per_mm2 == pytest.approx(1.0)

    def test_contains_points(self):
        block = FunctionalBlock("core", 1.0, 1.0, 2.0, 2.0, 1.0)
        assert block.contains(2.0, 2.0)
        assert not block.contains(0.5, 0.5)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(TechnologyError):
            FunctionalBlock("bad", 0.0, 0.0, 0.0, 1.0, 1.0)
        with pytest.raises(TechnologyError):
            FunctionalBlock("bad", 0.0, 0.0, 1.0, 1.0, -1.0)


class TestFloorplan:
    def test_add_block_inside_die(self):
        plan = Floorplan(5.0, 5.0)
        plan.add_block(FunctionalBlock("a", 0.0, 0.0, 2.0, 2.0, 1.0))
        assert plan.total_power_w() == pytest.approx(1.0)

    def test_block_outside_die_rejected(self):
        plan = Floorplan(5.0, 5.0)
        with pytest.raises(TechnologyError):
            plan.add_block(FunctionalBlock("a", 4.0, 4.0, 2.0, 2.0, 1.0))

    def test_duplicate_block_rejected(self):
        plan = Floorplan(5.0, 5.0)
        plan.add_block(FunctionalBlock("a", 0.0, 0.0, 1.0, 1.0, 1.0))
        with pytest.raises(TechnologyError):
            plan.add_block(FunctionalBlock("a", 1.0, 1.0, 1.0, 1.0, 1.0))

    def test_block_lookup(self):
        plan = Floorplan.example_processor()
        assert plan.block("core0").power_w > 0.0
        with pytest.raises(TechnologyError):
            plan.block("gpu")

    def test_sensor_sites_validated(self):
        plan = Floorplan(5.0, 5.0)
        plan.add_sensor_site(SensorSite("s0", 1.0, 1.0))
        with pytest.raises(TechnologyError):
            plan.add_sensor_site(SensorSite("s1", 6.0, 1.0))
        with pytest.raises(TechnologyError):
            plan.add_sensor_site(SensorSite("s0", 2.0, 2.0))

    def test_sensor_grid_placement(self):
        plan = Floorplan(8.0, 8.0)
        sites = plan.add_sensor_grid(3, 2)
        assert len(sites) == 6
        assert len(plan.sensor_sites()) == 6
        xs = sorted({site.x_mm for site in sites})
        assert xs == pytest.approx([8.0 / 6, 8.0 / 2, 8.0 * 5 / 6])

    def test_example_processor_is_consistent(self):
        plan = Floorplan.example_processor()
        assert plan.total_power_w() == pytest.approx(14.5)
        assert len(plan.blocks()) == 5


class TestPowerMap:
    def test_zeros_constructor(self):
        power = PowerMap.zeros(8.0, 8.0, 16, 16)
        assert power.total_power_w() == 0.0
        assert power.nx == 16 and power.ny == 16

    def test_from_floorplan_conserves_power(self, example_power_map):
        assert example_power_map.total_power_w() == pytest.approx(14.5, rel=1e-6)

    def test_power_concentrated_in_blocks(self, example_power_map):
        density = example_power_map.power_density_w_per_mm2()
        # The hot core has a much higher density than the die average.
        assert density.max() > 3.0 * example_power_map.total_power_w() / 64.0

    def test_cell_geometry_helpers(self):
        power = PowerMap.zeros(8.0, 4.0, 8, 4)
        assert power.cell_width_mm == pytest.approx(1.0)
        assert power.cell_height_mm == pytest.approx(1.0)
        assert power.cell_center(0, 0) == pytest.approx((0.5, 0.5))
        assert power.cell_index(7.9, 3.9) == (7, 3)

    def test_cell_index_outside_die_rejected(self):
        power = PowerMap.zeros(8.0, 8.0, 8, 8)
        with pytest.raises(TechnologyError):
            power.cell_index(9.0, 1.0)

    def test_point_source_addition(self):
        power = PowerMap.zeros(8.0, 8.0, 8, 8)
        power.add_point_source(4.0, 4.0, 0.5)
        assert power.total_power_w() == pytest.approx(0.5)

    def test_scaled_copy(self, example_power_map):
        scaled = example_power_map.scaled(2.0)
        assert scaled.total_power_w() == pytest.approx(29.0, rel=1e-6)
        assert example_power_map.total_power_w() == pytest.approx(14.5, rel=1e-6)

    def test_negative_power_rejected(self):
        with pytest.raises(TechnologyError):
            PowerMap(8.0, 8.0, np.full((4, 4), -1.0))

    def test_small_grid_rejected(self):
        with pytest.raises(TechnologyError):
            PowerMap.zeros(8.0, 8.0, 1, 4)
