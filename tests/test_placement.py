"""Tests for the sensor-placement search and the EXT-PLACEMENT study.

The search layer (:mod:`repro.optimize.placement`) is covered for
determinism, argument validation and the invariants the algorithms
promise (greedy reproducibility, annealing never returning something
worse than its starting point); the experiment layer is pinned with a
golden greedy placement/objective on a fixed small corpus, and the
study's sweep-engine scan path is round-tripped against the
self-contained :meth:`PlacementObjective.from_bank` constructor.
"""

import numpy as np
import pytest

from repro.cells import default_library
from repro.core import SensorBank
from repro.experiments import run_placement_study
from repro.experiments.placement_study import example_workloads
from repro.optimize import (
    PlacementObjective,
    anneal_placement,
    greedy_placement,
)
from repro.oscillator import RingConfiguration
from repro.tech import CMOS035, TechnologyError
from repro.thermal import Floorplan, PowerMap, ThermalGrid, ThermalOperator


@pytest.fixture(scope="module")
def small_objective():
    """A 3x3-candidate objective on the example workload corpus."""
    powers = [
        PowerMap.from_floorplan(plan, nx=12, ny=12) for _, plan in example_workloads()
    ]
    grid = ThermalGrid.for_power_map(powers[0])
    true_maps = ThermalOperator.for_grid(grid).solve_steady_state_multi(powers, 45.0)
    plan = Floorplan.example_processor()
    plan.add_sensor_grid(3, 3, prefix="c")
    bank = SensorBank.from_floorplan(
        CMOS035, plan, RingConfiguration.parse("2INV+3NAND2"),
        library=default_library(CMOS035),
    )
    return PlacementObjective.from_bank(bank, true_maps)


class TestPlacementObjective:
    def test_structure(self, small_objective):
        assert small_objective.site_count == 9
        assert small_objective.workload_count == 3
        assert small_objective.estimates_c.shape == (9, 3)

    def test_evaluate_is_order_and_duplicate_insensitive(self, small_objective):
        a = small_objective.evaluate([0, 4, 8])
        b = small_objective.evaluate([8, 0, 4, 4])
        assert a == b

    def test_more_workloads_mean_worst_at_least_mean(self, small_objective):
        score = small_objective.evaluate([1, 3, 5])
        assert score.worst_rms_error_c >= score.mean_rms_error_c
        assert score.worst_abs_hotspot_error_c >= score.mean_abs_hotspot_error_c
        assert score.combined_c == pytest.approx(
            score.mean_rms_error_c + score.hotspot_weight * score.mean_abs_hotspot_error_c
        )

    def test_full_candidate_set_beats_single_site(self, small_objective):
        everything = small_objective.evaluate(range(9))
        single = small_objective.evaluate([0])
        assert everything.combined_c < single.combined_c

    def test_invalid_subsets_rejected(self, small_objective):
        with pytest.raises(TechnologyError):
            small_objective.evaluate([])
        with pytest.raises(TechnologyError):
            small_objective.evaluate([9])
        with pytest.raises(TechnologyError):
            small_objective.evaluate([-1])

    def test_misaligned_inputs_rejected(self, small_objective):
        with pytest.raises(TechnologyError):
            PlacementObjective(
                reference=small_objective.reference,
                site_names=small_objective.site_names[:-1],
                site_x_mm=small_objective.site_x_mm,
                site_y_mm=small_objective.site_y_mm,
                estimates_c=small_objective.estimates_c,
                true_values_c=small_objective.true_values_c,
            )
        with pytest.raises(TechnologyError):
            PlacementObjective(
                reference=small_objective.reference,
                site_names=small_objective.site_names,
                site_x_mm=small_objective.site_x_mm,
                site_y_mm=small_objective.site_y_mm,
                estimates_c=small_objective.estimates_c,
                true_values_c=small_objective.true_values_c[:2],
            )
        with pytest.raises(TechnologyError):
            PlacementObjective(
                reference=small_objective.reference,
                site_names=small_objective.site_names,
                site_x_mm=small_objective.site_x_mm,
                site_y_mm=small_objective.site_y_mm,
                estimates_c=small_objective.estimates_c,
                true_values_c=small_objective.true_values_c,
                hotspot_weight=-1.0,
            )


class TestGreedyPlacement:
    def test_deterministic_and_sized(self, small_objective):
        first = greedy_placement(small_objective, 3)
        second = greedy_placement(small_objective, 3)
        assert first.selected_indices == second.selected_indices
        assert len(first.selected_indices) == 3
        assert first.method == "greedy"
        assert len(first.history_c) == 3
        assert first.evaluations > 0

    def test_must_include_respected(self, small_objective):
        result = greedy_placement(small_objective, 3, must_include=[7])
        assert 7 in result.selected_indices

    def test_invalid_arguments_rejected(self, small_objective):
        with pytest.raises(TechnologyError):
            greedy_placement(small_objective, 0)
        with pytest.raises(TechnologyError):
            greedy_placement(small_objective, 10)
        with pytest.raises(TechnologyError):
            greedy_placement(small_objective, 1, must_include=[0, 1])

    def test_selecting_everything_is_exact(self, small_objective):
        result = greedy_placement(small_objective, small_objective.site_count)
        assert result.selected_indices == tuple(range(small_objective.site_count))
        assert result.score == small_objective.evaluate(result.selected_indices)


class TestAnnealPlacement:
    def test_seeded_walk_is_reproducible(self, small_objective):
        first = anneal_placement(small_objective, 3, seed=7, steps=60)
        second = anneal_placement(small_objective, 3, seed=7, steps=60)
        assert first.selected_indices == second.selected_indices
        assert first.score == second.score
        assert first.method == "anneal"

    def test_never_worse_than_its_initial_placement(self, small_objective):
        greedy = greedy_placement(small_objective, 3)
        annealed = anneal_placement(
            small_objective, 3, seed=11, steps=80, initial=greedy.selected_indices
        )
        assert annealed.score.combined_c <= greedy.score.combined_c + 1e-12

    def test_full_subset_has_nothing_to_swap(self, small_objective):
        result = anneal_placement(small_objective, small_objective.site_count, steps=10)
        assert result.selected_indices == tuple(range(small_objective.site_count))

    def test_invalid_arguments_rejected(self, small_objective):
        with pytest.raises(TechnologyError):
            anneal_placement(small_objective, 3, steps=-1)
        with pytest.raises(TechnologyError):
            anneal_placement(small_objective, 3, cooling=0.0)
        with pytest.raises(TechnologyError):
            anneal_placement(small_objective, 3, initial_temperature_c=0.0)
        with pytest.raises(TechnologyError):
            anneal_placement(small_objective, 3, initial=[0, 1])


class TestPlacementStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_placement_study(
            grid_resolution=16,
            candidate_grid=4,
            sensor_count=4,
            anneal_steps=80,
            seed=2005,
        )

    def test_golden_greedy_placement(self, study):
        # Golden pin of the deterministic greedy search on the fixed
        # 16^2-grid / 4x4-candidate corpus.
        assert study.greedy.selected_names == ("c0_1", "c0_3", "c3_0", "c3_1")
        assert study.greedy.score.combined_c == pytest.approx(
            5.455735527836822, rel=1e-9
        )
        assert study.greedy.score.mean_rms_error_c == pytest.approx(
            2.8846397341083523, rel=1e-9
        )

    def test_annealing_refines_or_confirms(self, study):
        assert study.annealed.score.combined_c <= study.greedy.score.combined_c + 1e-12
        assert study.best.score.combined_c == min(
            study.greedy.score.combined_c, study.annealed.score.combined_c
        )

    def test_structure_and_table(self, study):
        assert study.candidate_count == 16
        assert study.sensor_count == 4
        assert study.workload_labels == ("balanced", "compute", "memory")
        assert study.solve_method == "direct"
        text = study.format_table()
        assert "EXT-PLACEMENT" in text
        assert "greedy" in text and "anneal" in text

    def test_oversized_sensor_count_rejected(self):
        with pytest.raises(TechnologyError):
            run_placement_study(candidate_grid=2, sensor_count=5)

    def test_sweep_scan_matches_bank_scan(self, study):
        # The study's per-workload Sweep-engine site scans must produce
        # exactly the estimates the self-contained banked-scan
        # constructor computes.
        powers = [
            PowerMap.from_floorplan(plan, nx=16, ny=16)
            for _, plan in example_workloads()
        ]
        grid = ThermalGrid.for_power_map(powers[0])
        true_maps = ThermalOperator.for_grid(grid).solve_steady_state_multi(powers, 45.0)
        plan = Floorplan.example_processor()
        plan.add_sensor_grid(4, 4, prefix="c")
        bank = SensorBank.from_floorplan(
            CMOS035, plan, RingConfiguration.parse("2INV+3NAND2"),
            library=default_library(CMOS035),
        )
        calibration = bank.two_point_calibration(-50.0, 150.0)
        oracle = PlacementObjective.from_bank(bank, true_maps, calibration=calibration)
        via_study = run_placement_study(
            grid_resolution=16, candidate_grid=4, sensor_count=4, anneal_steps=0
        )
        assert via_study.greedy.selected_names == greedy_placement(oracle, 4).selected_names
        assert via_study.greedy.score.combined_c == pytest.approx(
            greedy_placement(oracle, 4).score.combined_c, rel=1e-12
        )

    def test_registry_includes_placement(self):
        from repro.experiments import default_registry

        assert "EXT-PLACEMENT" in default_registry().names()
