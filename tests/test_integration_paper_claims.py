"""Integration tests asserting the paper's qualitative claims.

Each test corresponds to a statement made by the paper (or to an entry in
DESIGN.md's per-experiment index) and checks that the reproduction shows
the same *shape*: who wins, in which direction the curves bend, and by
roughly what factor — not the authors' absolute numbers, which depended
on their foundry models.
"""

import numpy as np
import pytest

from repro.analysis import nonlinearity, sensitivity_report
from repro.cells import CellLibrary, default_library, inverter
from repro.core import SmartTemperatureSensor
from repro.oscillator import (
    PAPER_FIG3_CONFIGURATIONS,
    RingConfiguration,
    RingOscillator,
    analytical_response,
)
from repro.optimize import optimize_width_ratio, sweep_width_ratio
from repro.tech import CMOS035

PAPER_GRID = np.asarray([-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0])


@pytest.fixture(scope="module")
def fig2_sweep():
    return sweep_width_ratio(CMOS035, temperatures_c=PAPER_GRID)


@pytest.fixture(scope="module")
def fig3_candidates(library):
    from repro.optimize import evaluate_configuration

    return {
        label: evaluate_configuration(library, config, PAPER_GRID)
        for label, config in PAPER_FIG3_CONFIGURATIONS.items()
    }


class TestSection2RingOscillatorSensing:
    """Claims of Section 2: the ring oscillator as a temperature sensor."""

    def test_period_grows_with_temperature_for_every_paper_configuration(self, library):
        for config in PAPER_FIG3_CONFIGURATIONS.values():
            response = analytical_response(RingOscillator(library, config), PAPER_GRID)
            assert response.is_monotonic(), config.label()

    def test_period_formula_sum_of_stage_delays(self, library):
        # T = sum(tpHL + tpLH) over stages (the paper's equation).
        ring = RingOscillator(library, RingConfiguration.uniform("INV", 5))
        total = sum(
            stage.cell.delays(25.0, stage.load_f).pair_sum for stage in ring.stages()
        )
        assert ring.period(25.0) == pytest.approx(total, rel=1e-12)

    def test_sensitivity_is_of_order_a_few_thousand_ppm_per_decade(self, inverter_ring):
        report = sensitivity_report(analytical_response(inverter_ring, PAPER_GRID))
        # Roughly 0.2-0.5 %/K relative period sensitivity at 3.3 V.
        assert 1e-3 < report.relative_sensitivity_per_k < 1e-2


class TestFig2TransistorLevelOptimisation:
    """Claims of Fig. 2: Wp/Wn sizing controls the non-linearity."""

    def test_nonlinearity_depends_strongly_on_ratio(self, fig2_sweep):
        assert fig2_sweep.improvement_factor() > 2.0

    def test_best_ratio_reaches_paper_level(self, fig2_sweep):
        # "the non-linearity error ... can be reduced ... below 0.2 %".
        assert fig2_sweep.best().max_abs_error_percent < 0.2

    def test_error_curve_changes_sign_across_the_sweep(self, fig2_sweep):
        # At small ratios the mid-range error is positive (PMOS-limited
        # curvature); at large ratios it flips negative — which is why an
        # interior optimum exists.
        errors_at_mid = {
            point.width_ratio: point.linearity.error_at(50.0)
            for point in fig2_sweep.points
        }
        assert errors_at_mid[1.75] > 0.0
        assert errors_at_mid[4.0] < 0.0

    def test_continuous_optimum_inside_paper_range(self):
        optimum = optimize_width_ratio(CMOS035, temperatures_c=PAPER_GRID)
        assert 1.75 <= optimum.width_ratio <= 4.0
        assert optimum.max_abs_error_percent < 0.2


class TestFig3CellBasedOptimisation:
    """Claims of Fig. 3: the cell mix is an equivalent linearisation knob."""

    def test_configurations_bracket_the_inverter_ring(self, fig3_candidates):
        reference = fig3_candidates["5INV"].max_abs_error_percent
        better = [
            c for label, c in fig3_candidates.items()
            if label != "5INV" and c.max_abs_error_percent < reference
        ]
        worse = [
            c for label, c in fig3_candidates.items()
            if label != "5INV" and c.max_abs_error_percent > reference
        ]
        assert better, "some cell mix must improve on the inverter-only ring"
        assert worse, "some cell mix must be worse than the inverter-only ring"

    def test_best_mix_comparable_to_transistor_level_optimum(
        self, fig3_candidates, fig2_sweep
    ):
        best_mix = min(c.max_abs_error_percent for c in fig3_candidates.values())
        best_sizing = fig2_sweep.best().max_abs_error_percent
        # "the error of the ring-oscillator can be reduced ... similar to
        # the error when changing the transistor sizes".
        assert best_mix < 2.0 * best_sizing
        assert best_mix < 0.25

    def test_nand_mixes_pull_error_down_nor_mixes_push_it_up(self, fig3_candidates):
        reference = fig3_candidates["5INV"].linearity.error_at(50.0)
        assert fig3_candidates["5NAND2"].linearity.error_at(50.0) < reference
        assert fig3_candidates["2INV+3NOR2"].linearity.error_at(50.0) > reference

    def test_all_paper_mixes_remain_usable_sensors(self, fig3_candidates):
        for candidate in fig3_candidates.values():
            assert candidate.response.is_monotonic()
            assert candidate.max_abs_error_percent < 2.5


class TestStageCountClaim:
    """Claim: 5-, 9- and 21-stage rings have similar linearity."""

    def test_normalised_nonlinearity_insensitive_to_stage_count(self, library):
        errors = []
        for count in (5, 9, 21):
            ring = RingOscillator(library, RingConfiguration.uniform("INV", count))
            errors.append(
                nonlinearity(analytical_response(ring, PAPER_GRID)).max_abs_error_percent
            )
        assert max(errors) - min(errors) < 0.05

    def test_period_scales_with_stage_count(self, library):
        five = RingOscillator(library, RingConfiguration.uniform("INV", 5)).period(25.0)
        twenty_one = RingOscillator(library, RingConfiguration.uniform("INV", 21)).period(25.0)
        assert twenty_one / five == pytest.approx(21.0 / 5.0, rel=0.05)


class TestSmartUnitClaims:
    """Claims of Section 3: the smart unit digitises temperature usefully."""

    def test_calibrated_sensor_accuracy_dominated_by_nonlinearity(self, tech):
        sensor = SmartTemperatureSensor.from_configuration(
            tech, RingConfiguration.parse("2INV+3NAND2")
        )
        sensor.calibrate_two_point(-50.0, 150.0)
        worst = sensor.worst_case_error_c(PAPER_GRID)
        intrinsic = nonlinearity(
            analytical_response(sensor.ring, PAPER_GRID)
        ).max_abs_temperature_error_c
        assert worst < intrinsic + 0.2  # quantisation adds only a little

    def test_cell_mix_sensor_beats_inverter_sensor_after_calibration(self, tech):
        mix = SmartTemperatureSensor.from_configuration(
            tech, RingConfiguration.parse("2INV+3NAND2")
        )
        inv = SmartTemperatureSensor.from_configuration(
            tech, RingConfiguration.uniform("INV", 5)
        )
        mix.calibrate_two_point(-50.0, 150.0)
        inv.calibrate_two_point(-50.0, 150.0)
        assert mix.worst_case_error_c(PAPER_GRID) < inv.worst_case_error_c(PAPER_GRID)

    def test_transistor_sized_custom_ring_not_needed(self, tech):
        # The whole point of the paper: a library-only sensor achieves
        # sub-kelvin linearity error without any custom-sized cell.
        sensor = SmartTemperatureSensor.from_configuration(
            tech, RingConfiguration.parse("5NAND2")
        )
        sensor.calibrate_two_point(-50.0, 150.0)
        assert sensor.worst_case_error_c(PAPER_GRID) < 0.6
