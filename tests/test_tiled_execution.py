"""Tiled / parallel / out-of-core sweep execution vs the dense oracle.

The contract under test is the strongest one the tiling design claims:
every backend — serial tiles, the multiprocess pool, the memmap
out-of-core assembler — produces results **bitwise identical** to the
dense single-broadcast path (which ``tests/test_sweep_api.py`` pins to
the scalar oracle), across tile sizes from one element to
larger-than-the-axis.  On top of that: the tiling pass partitions the
index space exactly once, a sweep whose dense tensor exceeds the
configured memory budget completes out-of-core, streaming reducers
agree with ``np.mean`` / ``np.percentile`` at 1e-12, and the
environment knobs select a default backend without touching call sites.
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import (
    Axis,
    HistogramReducer,
    MeanReducer,
    MemmapExecutor,
    PercentileReducer,
    ProcessExecutor,
    SerialExecutor,
    Sweep,
    SweepError,
    plan_tiles,
    resolve_executor,
    subplan,
)
from repro.engine.executors import EXECUTOR_ENV, TILE_ELEMENTS_ENV, WORKERS_ENV
from repro.oscillator import PAPER_FIG3_CONFIGURATIONS, RingConfiguration
from repro.tech import CMOS035, sample_technology_array

HYPOTHESIS_SETTINGS = dict(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

CONFIGURATION = RingConfiguration.parse("5INV")
POPULATION = sample_technology_array(CMOS035, 23, seed=11)
TEMPS = np.linspace(-40.0, 125.0, 17)


def sample_sweep(observable="period", population=POPULATION):
    return (
        Sweep(technology=CMOS035, configuration=CONFIGURATION)
        .over(Axis.sample(population))
        .over(Axis.temperature(TEMPS))
        .observe(observable)
    )


@pytest.fixture(scope="module")
def dense_period():
    return sample_sweep("period").run()


@pytest.fixture(scope="module")
def dense_code():
    return sample_sweep("code").run()


def assert_results_equal(tiled, dense):
    assert tiled.dims == dense.dims
    assert tiled.coords == dense.coords
    assert tiled.observable == dense.observable
    assert tiled.values.dtype == dense.values.dtype
    assert np.array_equal(tiled.values, dense.values)


# --------------------------------------------------------------------------- #
# the tiling pass
# --------------------------------------------------------------------------- #


class TestPlanTiles:
    def test_tiles_partition_index_space_exactly_once(self):
        plan = sample_sweep().plan()
        tiling = plan_tiles(plan, max_tile_elements=29)
        covered = np.zeros(tiling.shape, dtype=int)
        for tile in tiling.tiles:
            covered[tile.slices(tiling.dims)] += 1
        assert np.all(covered == 1)

    def test_budget_bounds_tile_elements(self):
        plan = sample_sweep().plan()
        tiling = plan_tiles(plan, max_tile_elements=40)
        for tile in tiling.tiles:
            assert tile.element_count(tiling.dims, tiling.shape) <= 40

    def test_single_element_tiles(self):
        plan = sample_sweep().plan()
        tiling = plan_tiles(plan, max_tile_elements=1)
        assert len(tiling.tiles) == tiling.total_elements
        for tile in tiling.tiles:
            assert tile.element_count(tiling.dims, tiling.shape) == 1

    def test_budget_larger_than_sweep_is_one_tile(self):
        plan = sample_sweep().plan()
        tiling = plan_tiles(plan, max_tile_elements=10**9)
        assert len(tiling.tiles) == 1
        assert tiling.tiles[0].bounds == ()

    def test_endpoint_observables_never_split_temperature(self):
        plan = sample_sweep("calibration_error_c").plan()
        tiling = plan_tiles(plan, max_tile_elements=1)
        for tile in tiling.tiles:
            assert tile.bounds_for("temperature") is None
            span = tile.bounds_for("sample")
            assert span is not None and span[1] - span[0] == 1

    def test_memory_budget_converts_bytes_to_elements(self):
        plan = sample_sweep().plan()
        by_bytes = plan_tiles(plan, memory_budget_bytes=40 * 8)
        by_elements = plan_tiles(plan, max_tile_elements=40)
        assert by_bytes.tiles == by_elements.tiles

    def test_unsplittable_axes_stay_whole(self):
        plan = (
            Sweep(technology=CMOS035)
            .over(Axis.configuration(PAPER_FIG3_CONFIGURATIONS))
            .over(Axis.temperature(TEMPS))
            .plan()
        )
        tiling = plan_tiles(plan, max_tile_elements=1)
        for tile in tiling.tiles:
            assert tile.bounds_for("configuration") is None

    def test_invalid_budgets_rejected(self):
        plan = sample_sweep().plan()
        with pytest.raises(SweepError):
            plan_tiles(plan, max_tile_elements=0)
        with pytest.raises(SweepError):
            plan_tiles(plan, memory_budget_bytes=4)

    def test_subplan_slices_evaluate_to_dense_slices(self, dense_period):
        plan = sample_sweep().plan()
        tiling = plan_tiles(plan, max_tile_elements=64)
        tile = tiling.tiles[len(tiling.tiles) // 2]
        values = subplan(plan, tile)._execute_dense().values
        assert np.array_equal(values, dense_period.values[tile.slices(tiling.dims)])


# --------------------------------------------------------------------------- #
# tiled-vs-dense bit equality
# --------------------------------------------------------------------------- #


@given(tile_elements=st.integers(min_value=1, max_value=2 * 23 * 17))
@settings(**HYPOTHESIS_SETTINGS)
def test_serial_tiles_bit_match_dense_across_tile_sizes(tile_elements):
    dense = sample_sweep("period").run()
    tiled = sample_sweep("period").run(
        executor="serial", max_tile_elements=tile_elements
    )
    assert_results_equal(tiled, dense)


@given(tile_elements=st.integers(min_value=1, max_value=2 * 23 * 17))
@settings(**HYPOTHESIS_SETTINGS)
def test_endpoint_observable_tiles_bit_match_dense(tile_elements):
    dense = sample_sweep("calibration_error_c").run()
    tiled = sample_sweep("calibration_error_c").run(
        executor="serial", max_tile_elements=tile_elements
    )
    assert_results_equal(tiled, dense)


EXECUTORS = {
    "serial": lambda: SerialExecutor(),
    "process": lambda: ProcessExecutor(max_workers=2),
    "memmap": lambda: MemmapExecutor(memory_budget_bytes=64 * 1024),
}


@pytest.mark.parametrize("backend", sorted(EXECUTORS))
@pytest.mark.parametrize("observable", ["period", "code", "calibration_error_c"])
def test_every_backend_bit_matches_dense(backend, observable):
    dense = sample_sweep(observable).run()
    tiled = sample_sweep(observable).run(
        executor=EXECUTORS[backend](), max_tile_elements=97
    )
    assert_results_equal(tiled, dense)


@pytest.mark.parametrize("backend", sorted(EXECUTORS))
def test_supply_axis_lowering_survives_sample_tiling(backend):
    def build():
        return (
            Sweep(technology=CMOS035, configuration=CONFIGURATION)
            .over(Axis.supply([3.0, 3.3, 3.6]))
            .over(Axis.sample(POPULATION))
            .over(Axis.temperature(TEMPS))
        )

    dense = build().run()
    tiled = build().run(executor=EXECUTORS[backend](), max_tile_elements=113)
    assert_results_equal(tiled, dense)


def test_width_ratio_axis_with_sample_tiling():
    def build():
        return (
            Sweep(technology=CMOS035, configuration=CONFIGURATION)
            .over(Axis.width_ratio([1.0, 2.0]))
            .over(Axis.sample(POPULATION))
            .over(Axis.temperature(TEMPS))
        )

    dense = build().run()
    tiled = build().run(executor="serial", max_tile_elements=51)
    assert_results_equal(tiled, dense)


def test_configuration_axis_without_splittable_axes_still_runs():
    def build():
        return (
            Sweep(technology=CMOS035)
            .over(Axis.configuration(PAPER_FIG3_CONFIGURATIONS))
            .over(Axis.temperature(TEMPS))
            .observe("nonlinearity_percent")
        )

    dense = build().run()
    tiled = build().run(executor="serial", max_tile_elements=1)
    assert_results_equal(tiled, dense)


def test_per_sample_technology_list_payload_tiles():
    from repro.tech import CMOS013, CMOS018, CMOS025

    technologies = [CMOS035, CMOS025, CMOS018, CMOS013, CMOS035]

    def build():
        return (
            Sweep(technology=CMOS035, configuration=CONFIGURATION)
            .over(Axis.sample(technologies))
            .over(Axis.temperature(TEMPS))
        )

    dense = build().run()
    tiled = build().run(executor="serial", max_tile_elements=2 * len(TEMPS))
    assert_results_equal(tiled, dense)


def test_process_backend_streams_out_of_order_assembly(dense_period):
    # Many more tiles than workers: completion order is not submission
    # order, and positional assembly must still be exact.
    tiled = sample_sweep("period").run(
        executor=ProcessExecutor(max_workers=2), max_tile_elements=17
    )
    assert_results_equal(tiled, dense_period)


# --------------------------------------------------------------------------- #
# out-of-core execution
# --------------------------------------------------------------------------- #


def _memmap_backed(array):
    node = array
    while node is not None:
        if isinstance(node, np.memmap):
            return True
        node = getattr(node, "base", None)
    return False


class TestOutOfCore:
    def test_result_exceeding_budget_completes_memmap_backed(self, dense_period):
        # The dense tensor is 23 * 17 * 8 = 3128 bytes; a 1 KiB budget
        # cannot hold it, so the sweep must tile and assemble on disk.
        budget = 1024
        executor = MemmapExecutor(memory_budget_bytes=budget)
        tiled = sample_sweep("period").run(executor=executor)
        assert dense_period.values.nbytes > budget
        assert_results_equal(tiled, dense_period)
        assert _memmap_backed(tiled.values)
        tiling = plan_tiles(sample_sweep("period").plan(), memory_budget_bytes=budget)
        for tile in tiling.tiles:
            assert tile.element_count(tiling.dims, tiling.shape) * 8 <= budget

    def test_explicit_path_keeps_the_artifact(self, tmp_path, dense_period):
        target = tmp_path / "sweep.values"
        executor = MemmapExecutor(path=str(target), memory_budget_bytes=2048)
        tiled = sample_sweep("period").run(executor=executor)
        assert_results_equal(tiled, dense_period)
        assert target.exists()
        on_disk = np.memmap(
            str(target), dtype=np.float64, mode="r", shape=dense_period.values.shape
        )
        assert np.array_equal(np.asarray(on_disk), dense_period.values)

    def test_selection_on_memmap_result_matches_dense(self, dense_period):
        tiled = sample_sweep("period").run(
            executor=MemmapExecutor(memory_budget_bytes=1024)
        )
        label = tiled.coords["temperature"][3]
        assert np.array_equal(
            tiled.select(temperature=label).values,
            dense_period.select(temperature=label).values,
        )

    def test_tiny_budget_rejected(self):
        with pytest.raises(SweepError):
            MemmapExecutor(memory_budget_bytes=4)


# --------------------------------------------------------------------------- #
# streaming reducers
# --------------------------------------------------------------------------- #


class TestStreamingReducers:
    def test_mean_matches_numpy_everywhere(self, dense_period):
        reduced = sample_sweep("period").reduce(
            MeanReducer(), executor="serial", max_tile_elements=29
        )
        assert abs(reduced - float(np.mean(dense_period.values))) < 1e-12 * abs(
            float(np.mean(dense_period.values))
        )

    def test_mean_over_subset_of_dims(self, dense_period):
        reduced = sample_sweep("period").reduce(
            MeanReducer(dims=("sample",)), executor="serial", max_tile_elements=29
        )
        reference = np.mean(dense_period.values, axis=0)
        assert reduced.shape == reference.shape
        assert np.max(np.abs(reduced - reference)) < 1e-12 * np.max(np.abs(reference))

    def test_percentile_is_exact(self, dense_period):
        for q in (5.0, 50.0, 95.0):
            reduced = sample_sweep("period").reduce(
                PercentileReducer(q), executor="serial", max_tile_elements=31
            )
            assert reduced == pytest.approx(
                float(np.percentile(dense_period.values, q)), rel=1e-12
            )

    def test_percentile_over_subset_of_dims(self, dense_period):
        reduced = sample_sweep("period").reduce(
            PercentileReducer(90.0, dims=("sample",), slab_elements=16),
            executor="serial",
            max_tile_elements=43,
        )
        reference = np.percentile(dense_period.values, 90.0, axis=0)
        assert np.allclose(reduced, reference, rtol=1e-12, atol=0.0)

    def test_histogram_matches_numpy(self, dense_period):
        lo = float(np.min(dense_period.values))
        hi = float(np.max(dense_period.values)) * 1.001
        counts, edges = sample_sweep("period").reduce(
            HistogramReducer(bins=13, range=(lo, hi)),
            executor="serial",
            max_tile_elements=37,
        )
        ref_counts, ref_edges = np.histogram(
            dense_period.values.ravel(), bins=13, range=(lo, hi)
        )
        assert np.array_equal(counts, ref_counts)
        assert np.array_equal(edges, ref_edges)
        assert int(counts.sum()) == dense_period.values.size

    def test_named_reducer_mapping_returns_named_results(self, dense_period):
        reduced = sample_sweep("period").reduce(
            {"mean": MeanReducer(), "p50": PercentileReducer(50.0)},
            executor="serial",
            max_tile_elements=64,
        )
        assert set(reduced) == {"mean", "p50"}
        assert reduced["p50"] == pytest.approx(
            float(np.percentile(dense_period.values, 50.0)), rel=1e-12
        )

    def test_reducers_agree_across_backends(self, dense_period):
        reference = float(np.mean(dense_period.values))
        for backend in sorted(EXECUTORS):
            reduced = sample_sweep("period").reduce(
                MeanReducer(), executor=EXECUTORS[backend](), max_tile_elements=64
            )
            assert reduced == pytest.approx(reference, rel=1e-12)

    def test_histogram_requires_explicit_range(self):
        with pytest.raises(SweepError, match="range"):
            HistogramReducer(bins=8)
        with pytest.raises(SweepError):
            HistogramReducer(bins=8, range=(1.0, 1.0))

    def test_reduce_rejects_unknown_dims_and_empty_reducers(self):
        with pytest.raises(SweepError, match="dims"):
            sample_sweep("period").reduce(
                MeanReducer(dims=("site",)), executor="serial", max_tile_elements=64
            )
        with pytest.raises(SweepError):
            sample_sweep("period").reduce(None)
        with pytest.raises(SweepError, match="implement"):
            sample_sweep("period").reduce(object())


# --------------------------------------------------------------------------- #
# backend resolution and the environment knobs
# --------------------------------------------------------------------------- #


class TestResolution:
    def test_no_arguments_is_the_dense_path(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert resolve_executor(None) is None

    def test_names_and_instances_resolve(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("memmap"), MemmapExecutor)
        assert resolve_executor("dense") is None
        executor = ProcessExecutor(max_workers=3)
        assert resolve_executor(executor) is executor

    def test_unknown_name_and_bad_type_rejected(self):
        with pytest.raises(SweepError, match="unknown executor"):
            resolve_executor("gpu")
        with pytest.raises(SweepError, match="Executor"):
            resolve_executor(42)

    def test_env_selects_default_backend(self, monkeypatch, dense_period):
        monkeypatch.setenv(EXECUTOR_ENV, "serial")
        monkeypatch.setenv(TILE_ELEMENTS_ENV, "45")
        tiled = sample_sweep("period").run()
        assert_results_equal(tiled, dense_period)

    def test_env_worker_count_reaches_process_backend(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "process")
        monkeypatch.setenv(WORKERS_ENV, "3")
        executor = resolve_executor(None)
        assert isinstance(executor, ProcessExecutor)
        assert executor.max_workers == 3

    def test_explicit_argument_beats_environment(self, monkeypatch, dense_period):
        monkeypatch.setenv(EXECUTOR_ENV, "process")
        tiled = sample_sweep("period").run(executor="serial", max_tile_elements=50)
        assert_results_equal(tiled, dense_period)

    def test_tile_budget_alone_runs_serial_tiles(self, dense_period):
        tiled = sample_sweep("period").run(max_tile_elements=23)
        assert_results_equal(tiled, dense_period)
        tiled = sample_sweep("period").run(memory_budget_bytes=1024)
        assert_results_equal(tiled, dense_period)
