"""Unit tests for sensitivity, resolution, statistics and Monte-Carlo analysis."""

import numpy as np
import pytest

from repro.analysis import (
    required_window_for_resolution,
    resolution_report,
    run_monte_carlo,
    sensitivity_report,
    summarize,
)
from repro.oscillator import RingConfiguration, TemperatureResponse
from repro.tech import CMOS035, TechnologyError, VariationModel


class TestSensitivityReport:
    def test_linear_response_has_unity_spread(self):
        temps = np.linspace(-50.0, 150.0, 21)
        response = TemperatureResponse("lin", temps, 200e-12 + 1e-12 * (temps + 50.0))
        report = sensitivity_report(response)
        assert report.mean_sensitivity_s_per_k == pytest.approx(1e-12, rel=1e-9)
        assert report.slope_spread_ratio == pytest.approx(1.0, rel=1e-6)

    def test_ring_sensitivity_positive_and_ppm_negative(self, inverter_response):
        report = sensitivity_report(inverter_response)
        assert report.mean_sensitivity_s_per_k > 0.0
        # Frequency falls with temperature, so the ppm/K figure is negative.
        assert report.frequency_sensitivity_ppm_per_k < 0.0

    def test_relative_sensitivity_order_of_magnitude(self, inverter_response):
        report = sensitivity_report(inverter_response)
        # Gate delay tempco at 3.3 V is a fraction of a percent per kelvin.
        assert 1e-3 < report.relative_sensitivity_per_k < 1e-2


class TestResolutionReport:
    def test_resolution_improves_with_longer_window(self, inverter_response):
        short = resolution_report(inverter_response, window_s=1e-6)
        long = resolution_report(inverter_response, window_s=10e-6)
        assert long.temperature_resolution_c < short.temperature_resolution_c

    def test_counts_decrease_with_temperature(self, inverter_response):
        report = resolution_report(inverter_response, window_s=5e-6)
        assert report.count_max > report.count_min

    def test_bits_required_consistent(self, inverter_response):
        report = resolution_report(inverter_response, window_s=5e-6)
        assert 2 ** report.bits_required > report.count_max

    def test_invalid_window_rejected(self, inverter_response):
        with pytest.raises(TechnologyError):
            resolution_report(inverter_response, window_s=0.0)

    def test_required_window_meets_target(self, inverter_response):
        target = 0.05
        window = required_window_for_resolution(inverter_response, target)
        achieved = resolution_report(inverter_response, window).temperature_resolution_c
        assert achieved == pytest.approx(target, rel=1e-6)

    def test_required_window_rejects_nonpositive_target(self, inverter_response):
        with pytest.raises(TechnologyError):
            required_window_for_resolution(inverter_response, 0.0)


class TestSummaryStatistics:
    def test_basic_summary(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0 and stats.maximum == 4.0
        assert stats.minimum <= stats.p05 <= stats.p50 <= stats.p95 <= stats.maximum

    def test_empty_sample_rejected(self):
        with pytest.raises(TechnologyError):
            summarize([])

    def test_nan_rejected(self):
        with pytest.raises(TechnologyError):
            summarize([1.0, float("nan")])

    def test_describe_contains_mean(self):
        assert "mean=" in summarize([1.0, 2.0]).describe("ps")


class TestMonteCarlo:
    @pytest.fixture(scope="class")
    def study(self):
        return run_monte_carlo(
            CMOS035,
            RingConfiguration.parse("2INV+3NAND2"),
            sample_count=8,
            temperatures_c=np.linspace(-50.0, 150.0, 9),
            seed=99,
        )

    def test_sample_count_respected(self, study):
        assert study.sample_count == 8
        assert len(study.responses) == 8

    def test_absolute_period_spreads_more_than_linearity(self, study):
        # The paper's argument: process moves the absolute frequency a lot
        # but the linearity very little.
        period_spread_rel = study.period_at_reference.std / study.period_at_reference.mean
        nl_mean = study.nonlinearity_percent.mean
        assert period_spread_rel > 0.01
        assert nl_mean < 1.0

    def test_every_sample_remains_monotonic(self, study):
        for response in study.responses:
            assert response.is_monotonic()

    def test_seed_reproducibility(self):
        kwargs = dict(
            configuration=RingConfiguration.uniform("INV", 5),
            sample_count=4,
            temperatures_c=np.linspace(-50.0, 150.0, 5),
            seed=7,
        )
        first = run_monte_carlo(CMOS035, **kwargs)
        second = run_monte_carlo(CMOS035, **kwargs)
        assert first.period_at_reference.mean == pytest.approx(
            second.period_at_reference.mean
        )

    def test_invalid_sample_count_rejected(self):
        with pytest.raises(TechnologyError):
            run_monte_carlo(CMOS035, RingConfiguration.uniform("INV", 5), sample_count=1)

    def test_reference_temperature_must_be_inside_range(self):
        with pytest.raises(TechnologyError):
            run_monte_carlo(
                CMOS035,
                RingConfiguration.uniform("INV", 5),
                sample_count=3,
                temperatures_c=[0.0, 50.0, 100.0],
                reference_temperature_c=-40.0,
            )
