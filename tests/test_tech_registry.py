"""The declarative technology registry (repro.tech.registry).

Technology identity is content-addressed: a node is a validated
parameter bundle plus the SHA-256 digest of that bundle, computed at
registration.  The contracts:

* **digest is a pure function of content** — invariant to dict key
  order and JSON round trips, changed by any parameter change;
* **bundles round-trip losslessly** — ``Technology.to_dict`` /
  ``from_dict`` rebuild an equal node, and reject unknown keys,
  foreign versions and malformed fields with a message saying why;
* **re-registration moves the key** — overwriting a name with
  different parameters changes the digest, hence every canonical sweep
  key that mentions the name: stale cached results become unreachable
  instead of wrong, and payloads serialized under the old digest fail
  with a structured mismatch rather than evaluating the wrong physics.
"""

import dataclasses
import json

import pytest

from repro.engine import Axis, Sweep
from repro.engine.sweep import TechnologyMismatchError
from repro.serve import canonical_key
from repro.tech import (
    CMOS018,
    CMOS035,
    Technology,
    TechnologyError,
    TechnologyRegistry,
    TechnologySpec,
    default_registry,
    get_technology,
    get_technology_digest,
    register_technology,
    technology_digest,
)


def reordered(mapping):
    """The same mapping with reversed key order (recursively)."""
    if isinstance(mapping, dict):
        return {key: reordered(mapping[key]) for key in reversed(list(mapping))}
    return mapping


# --------------------------------------------------------------------------- #
# digest
# --------------------------------------------------------------------------- #


class TestDigest:
    def test_digest_is_stable_hex(self):
        digest = technology_digest(CMOS035)
        assert len(digest) == 64
        assert digest == technology_digest(CMOS035)
        assert digest == get_technology_digest("cmos035")

    def test_digest_invariant_to_key_order(self):
        payload = CMOS035.to_dict()
        shuffled = Technology.from_dict(reordered(payload))
        assert technology_digest(shuffled) == technology_digest(CMOS035)

    def test_digest_invariant_to_json_round_trip(self):
        payload = json.loads(json.dumps(CMOS035.to_dict()))
        assert technology_digest(Technology.from_dict(payload)) == technology_digest(
            CMOS035
        )

    def test_digest_changes_with_any_parameter(self):
        base = technology_digest(CMOS035)
        assert technology_digest(CMOS035.with_supply(3.0)) != base
        lowered_vth = CMOS035.with_transistors(
            nmos=CMOS035.nmos.scaled(vth0=CMOS035.nmos.vth0 * 0.9)
        )
        assert technology_digest(lowered_vth) != base
        assert technology_digest(CMOS018) != base

    def test_digest_takes_a_technology(self):
        with pytest.raises(TechnologyError, match="Technology"):
            technology_digest({"name": "cmos035"})


# --------------------------------------------------------------------------- #
# declarative bundles
# --------------------------------------------------------------------------- #


class TestBundleRoundTrip:
    def test_round_trip_is_lossless(self):
        rebuilt = Technology.from_dict(CMOS035.to_dict())
        assert rebuilt == CMOS035

    def test_foreign_version_rejected(self):
        payload = CMOS035.to_dict()
        payload["version"] = 99
        with pytest.raises(TechnologyError, match="version 99"):
            Technology.from_dict(payload)

    def test_unknown_key_rejected(self):
        payload = CMOS035.to_dict()
        payload["leakage_model"] = "bsim4"
        with pytest.raises(TechnologyError, match="leakage_model"):
            Technology.from_dict(payload)

    def test_unknown_transistor_key_rejected(self):
        payload = CMOS035.to_dict()
        payload["nmos"]["fudge"] = 1.0
        with pytest.raises(TechnologyError, match="fudge"):
            Technology.from_dict(payload)

    def test_validation_still_applies(self):
        payload = CMOS035.to_dict()
        payload["vdd"] = 0.1  # below both thresholds
        with pytest.raises(TechnologyError):
            Technology.from_dict(payload)


# --------------------------------------------------------------------------- #
# the registry
# --------------------------------------------------------------------------- #


class TestRegistry:
    def test_spec_carries_payload_and_digest(self):
        spec = default_registry().spec("cmos035")
        assert isinstance(spec, TechnologySpec)
        assert spec.name == "cmos035"
        assert spec.technology is CMOS035
        assert spec.digest == technology_digest(CMOS035)
        assert Technology.from_dict(spec.payload) == CMOS035

    def test_spec_for_requires_value_equality(self):
        registry = default_registry()
        assert registry.spec_for(CMOS035) is registry.spec("cmos035")
        # Same name, different content: no silent name match.
        assert registry.spec_for(CMOS035.with_supply(2.9)) is None

    def test_register_from_plain_bundle(self):
        registry = TechnologyRegistry()
        spec = registry.register(CMOS035.to_dict())
        assert spec.technology == CMOS035
        assert spec.digest == technology_digest(CMOS035)
        assert "cmos035" in registry

    def test_unknown_name_lists_available(self):
        registry = TechnologyRegistry()
        registry.register(CMOS035)
        with pytest.raises(TechnologyError, match="available"):
            registry.spec("cmos007")


class TestReRegistration:
    def sweep_payload_for(self, name):
        return (
            Sweep(technology=get_technology(name), configuration="5INV")
            .over(Axis.temperature([25.0]))
            .to_dict()
        )

    def test_overwrite_moves_digest_and_canonical_key(self):
        name = "regtest_overwrite_node"
        original = dataclasses.replace(CMOS035, name=name)
        register_technology(original)
        try:
            key_before = canonical_key(self.sweep_payload_for(name))
            digest_before = get_technology_digest(name)
            stale_payload = self.sweep_payload_for(name)

            revised = dataclasses.replace(original, vdd=3.0)
            register_technology(revised, overwrite=True)

            assert get_technology_digest(name) != digest_before
            # Every canonical key that mentions the name moves with the
            # digest, so results cached under the old registration are
            # unreachable — never served for the new physics.
            key_after = canonical_key(self.sweep_payload_for(name))
            assert key_after != key_before
            # And a spec serialized under the old registration fails
            # structurally instead of evaluating the wrong node.
            with pytest.raises(TechnologyMismatchError, match="disagree"):
                Sweep.from_dict(stale_payload)
        finally:
            register_technology(original, overwrite=True)

    def test_duplicate_without_overwrite_rejected(self):
        name = "regtest_duplicate_node"
        register_technology(dataclasses.replace(CMOS035, name=name))
        with pytest.raises(TechnologyError, match="overwrite=True"):
            register_technology(dataclasses.replace(CMOS018, name=name))

    def test_unknown_name_in_payload_is_a_mismatch(self):
        payload = (
            Sweep(technology=CMOS035, configuration="5INV")
            .over(Axis.temperature([25.0]))
            .to_dict()
        )
        payload["base"]["technology"] = {
            "name": "cmos_unheard_of",
            "digest": payload["base"]["technology"]["digest"],
        }
        with pytest.raises(TechnologyMismatchError, match="cmos_unheard_of"):
            Sweep.from_dict(payload)

    def test_tampered_inline_bundle_is_a_mismatch(self):
        unregistered = CMOS035.with_supply(2.9)
        payload = (
            Sweep(technology=unregistered, configuration="5INV")
            .over(Axis.temperature([25.0]))
            .to_dict()
        )
        reference = payload["base"]["technology"]
        assert "parameters" in reference
        reference["parameters"]["vdd"] = 3.1  # digest no longer matches
        with pytest.raises(TechnologyMismatchError, match="corrupted or tampered"):
            Sweep.from_dict(payload)
