"""Shared fixtures for the test suite.

Expensive objects (the default cell library, reference rings, the
example floorplan's power map) are session-scoped so the several hundred
tests that need them do not rebuild them over and over.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import default_library
from repro.core import ReadoutConfig, SmartTemperatureSensor
from repro.oscillator import RingConfiguration, RingOscillator, analytical_response
from repro.tech import CMOS035
from repro.thermal import Floorplan, PowerMap


@pytest.fixture(scope="session")
def tech():
    """The paper's 0.35 um technology."""
    return CMOS035


@pytest.fixture(scope="session")
def library(tech):
    """Default standard-cell library for the 0.35 um technology."""
    return default_library(tech)


@pytest.fixture(scope="session")
def inverter_ring(library):
    """The paper's 5-stage inverter ring."""
    return RingOscillator(library, RingConfiguration.uniform("INV", 5))


@pytest.fixture(scope="session")
def mixed_ring(library):
    """A linearised cell-mix ring (2 INV + 3 NAND2)."""
    return RingOscillator(library, RingConfiguration.parse("2INV+3NAND2"))


@pytest.fixture(scope="session")
def paper_temperatures():
    """The nine temperatures marked on the paper's figures."""
    return np.asarray([-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0])


@pytest.fixture(scope="session")
def inverter_response(inverter_ring, paper_temperatures):
    """Temperature response of the inverter ring on the paper grid."""
    return analytical_response(inverter_ring, paper_temperatures)


@pytest.fixture(scope="session")
def mixed_response(mixed_ring, paper_temperatures):
    """Temperature response of the cell-mix ring on the paper grid."""
    return analytical_response(mixed_ring, paper_temperatures)


@pytest.fixture()
def smart_sensor(tech):
    """A freshly built (uncalibrated) smart sensor per test."""
    return SmartTemperatureSensor.from_configuration(
        tech, RingConfiguration.parse("2INV+3NAND2"), readout=ReadoutConfig()
    )


@pytest.fixture(scope="session")
def example_power_map():
    """Rasterised power map of the example processor floorplan."""
    return PowerMap.from_floorplan(Floorplan.example_processor(), nx=16, ny=16)
