"""Shared fixtures for the test suite.

Expensive objects (the default cell library, reference rings, the
example floorplan's power map) are session-scoped so the several hundred
tests that need them do not rebuild them over and over.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import default_library
from repro.core import (
    DynamicThermalManager,
    ReadoutConfig,
    SensorBank,
    SmartTemperatureSensor,
    ThrottlingPolicy,
)
from repro.oscillator import RingConfiguration, RingOscillator, analytical_response
from repro.tech import CMOS035
from repro.thermal import Floorplan, PowerMap, ThermalGrid


@pytest.fixture(scope="session")
def tech():
    """The paper's 0.35 um technology."""
    return CMOS035


@pytest.fixture(scope="session")
def library(tech):
    """Default standard-cell library for the 0.35 um technology."""
    return default_library(tech)


@pytest.fixture(scope="session")
def inverter_ring(library):
    """The paper's 5-stage inverter ring."""
    return RingOscillator(library, RingConfiguration.uniform("INV", 5))


@pytest.fixture(scope="session")
def mixed_ring(library):
    """A linearised cell-mix ring (2 INV + 3 NAND2)."""
    return RingOscillator(library, RingConfiguration.parse("2INV+3NAND2"))


@pytest.fixture(scope="session")
def paper_temperatures():
    """The nine temperatures marked on the paper's figures."""
    return np.asarray([-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0])


@pytest.fixture(scope="session")
def inverter_response(inverter_ring, paper_temperatures):
    """Temperature response of the inverter ring on the paper grid."""
    return analytical_response(inverter_ring, paper_temperatures)


@pytest.fixture(scope="session")
def mixed_response(mixed_ring, paper_temperatures):
    """Temperature response of the cell-mix ring on the paper grid."""
    return analytical_response(mixed_ring, paper_temperatures)


@pytest.fixture()
def smart_sensor(tech):
    """A freshly built (uncalibrated) smart sensor per test."""
    return SmartTemperatureSensor.from_configuration(
        tech, RingConfiguration.parse("2INV+3NAND2"), readout=ReadoutConfig()
    )


@pytest.fixture(scope="session")
def example_power_map():
    """Rasterised power map of the example processor floorplan."""
    return PowerMap.from_floorplan(Floorplan.example_processor(), nx=16, ny=16)


@pytest.fixture(scope="session")
def example_grid(example_power_map):
    """Thermal RC grid matching the example processor's power map."""
    return ThermalGrid.for_power_map(example_power_map)


@pytest.fixture(scope="session")
def uniform_power_map():
    """10 W spread uniformly over an 8x8 mm die on a 12x12 grid."""
    power = PowerMap.zeros(8.0, 8.0, 12, 12)
    power.values_w += 10.0 / (12 * 12)
    return power


@pytest.fixture(scope="session")
def uniform_grid(uniform_power_map):
    """Thermal grid matching the uniform power map."""
    return ThermalGrid.for_power_map(uniform_power_map)


@pytest.fixture(scope="session")
def sensor_floorplan_factory():
    """Builder for the example processor with a k x k sensor grid."""

    def build(columns: int = 2, rows: int = None) -> Floorplan:
        floorplan = Floorplan.example_processor()
        floorplan.add_sensor_grid(columns, rows if rows is not None else columns)
        return floorplan

    return build


@pytest.fixture(scope="session")
def sensor_bank_factory(library, sensor_floorplan_factory):
    """Builder for a sensor bank over the example processor's sites."""

    def build(grid: int = 2, configuration_text: str = "2INV+3NAND2") -> SensorBank:
        floorplan = sensor_floorplan_factory(grid)
        return SensorBank(
            library,
            floorplan.sensor_sites(),
            RingConfiguration.parse(configuration_text),
        )

    return build


@pytest.fixture(scope="session")
def dtm_manager_factory(sensor_floorplan_factory):
    """Builder for a calibrated DTM manager on the example processor."""

    def build(
        policy: ThrottlingPolicy = None,
        grid_resolution: int = 12,
        sensor_grid: int = 2,
    ) -> DynamicThermalManager:
        return DynamicThermalManager(
            CMOS035,
            sensor_floorplan_factory(sensor_grid),
            RingConfiguration.parse("2INV+3NAND2"),
            policy=policy or ThrottlingPolicy(),
            readout=ReadoutConfig(),
            grid_resolution=grid_resolution,
        )

    return build
