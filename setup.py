"""Setuptools shim.

The pyproject.toml carries all metadata; this file exists so that
``pip install -e .`` works with legacy (non-PEP-660) editable installs
on environments that lack the ``wheel`` package.
"""

from setuptools import setup

setup()
