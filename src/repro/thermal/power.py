"""Power maps: dissipated power discretised on the thermal grid."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..tech.parameters import TechnologyError
from .floorplan import Floorplan

__all__ = ["PowerMap"]


@dataclass
class PowerMap:
    """Power dissipation on a regular (ny, nx) grid over the die.

    Attributes
    ----------
    width_mm / height_mm:
        Die dimensions the grid covers.
    values_w:
        Array of shape ``(ny, nx)`` with the power (watts) dissipated in
        each grid cell.
    """

    width_mm: float
    height_mm: float
    values_w: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values_w, dtype=float)
        if values.ndim != 2:
            raise TechnologyError("power map must be two-dimensional")
        if np.any(values < 0.0):
            raise TechnologyError("power values must be non-negative")
        if self.width_mm <= 0.0 or self.height_mm <= 0.0:
            raise TechnologyError("power map dimensions must be positive")
        self.values_w = values

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def zeros(cls, width_mm: float, height_mm: float, nx: int, ny: int) -> "PowerMap":
        """An all-zero power map of the requested resolution."""
        if nx < 2 or ny < 2:
            raise TechnologyError("power map needs at least a 2x2 grid")
        return cls(width_mm, height_mm, np.zeros((ny, nx)))

    @classmethod
    def from_floorplan(cls, floorplan: Floorplan, nx: int = 32, ny: int = 32) -> "PowerMap":
        """Rasterise the floorplan's blocks onto a grid.

        Each block's power is distributed uniformly over the grid cells
        whose centres fall inside the block.
        """
        power = cls.zeros(floorplan.width_mm, floorplan.height_mm, nx, ny)
        for block in floorplan.blocks():
            mask = np.zeros((ny, nx), dtype=bool)
            for row in range(ny):
                for column in range(nx):
                    x, y = power.cell_center(column, row)
                    if block.contains(x, y):
                        mask[row, column] = True
            covered = int(np.count_nonzero(mask))
            if covered == 0:
                # Block smaller than a cell: dump its power into the cell
                # containing its centre.
                column, row = power.cell_index(*block.center)
                power.values_w[row, column] += block.power_w
            else:
                power.values_w[mask] += block.power_w / covered
        return power

    # ------------------------------------------------------------------ #
    # geometry helpers
    # ------------------------------------------------------------------ #

    @property
    def nx(self) -> int:
        return int(self.values_w.shape[1])

    @property
    def ny(self) -> int:
        return int(self.values_w.shape[0])

    @property
    def cell_width_mm(self) -> float:
        return self.width_mm / self.nx

    @property
    def cell_height_mm(self) -> float:
        return self.height_mm / self.ny

    def cell_center(self, column: int, row: int) -> Tuple[float, float]:
        """(x, y) millimetre coordinates of a cell centre."""
        return (
            (column + 0.5) * self.cell_width_mm,
            (row + 0.5) * self.cell_height_mm,
        )

    def cell_index(self, x_mm: float, y_mm: float) -> Tuple[int, int]:
        """(column, row) of the cell containing a point."""
        if not (0.0 <= x_mm <= self.width_mm and 0.0 <= y_mm <= self.height_mm):
            raise TechnologyError(f"point ({x_mm}, {y_mm}) mm lies outside the die")
        column = min(int(x_mm / self.cell_width_mm), self.nx - 1)
        row = min(int(y_mm / self.cell_height_mm), self.ny - 1)
        return column, row

    # ------------------------------------------------------------------ #
    # modification and queries
    # ------------------------------------------------------------------ #

    def add_point_source(self, x_mm: float, y_mm: float, power_w: float) -> None:
        """Add a point heat source (e.g. a running ring oscillator)."""
        if power_w < 0.0:
            raise TechnologyError("point-source power must be non-negative")
        column, row = self.cell_index(x_mm, y_mm)
        self.values_w[row, column] += power_w

    def scaled(self, factor: float) -> "PowerMap":
        """A copy with every cell scaled by ``factor`` (activity scaling)."""
        if factor < 0.0:
            raise TechnologyError("scale factor must be non-negative")
        return PowerMap(self.width_mm, self.height_mm, self.values_w * factor)

    def copy(self) -> "PowerMap":
        return PowerMap(self.width_mm, self.height_mm, self.values_w.copy())

    def total_power_w(self) -> float:
        return float(np.sum(self.values_w))

    def power_density_w_per_mm2(self) -> np.ndarray:
        """Per-cell power density."""
        return self.values_w / (self.cell_width_mm * self.cell_height_mm)
