"""Die floorplan: functional blocks, their power, and sensor sites.

The thermal-mapping feature of the smart unit only makes sense on a die
that actually has temperature gradients.  The floorplan model captures
the minimum needed to create realistic gradients: the die outline, a set
of rectangular functional blocks with their dissipated power (the
workload), and the locations where ring-oscillator sensors are placed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..tech.parameters import TechnologyError

__all__ = ["FunctionalBlock", "SensorSite", "Floorplan"]


@dataclass(frozen=True)
class FunctionalBlock:
    """A rectangular block of logic with uniform power density.

    Coordinates are millimetres with the origin at the die's lower-left
    corner; ``power_w`` is the total power dissipated by the block.
    """

    name: str
    x_mm: float
    y_mm: float
    width_mm: float
    height_mm: float
    power_w: float

    def __post_init__(self) -> None:
        if self.width_mm <= 0.0 or self.height_mm <= 0.0:
            raise TechnologyError(f"block {self.name}: dimensions must be positive")
        if self.power_w < 0.0:
            raise TechnologyError(f"block {self.name}: power must be non-negative")

    @property
    def area_mm2(self) -> float:
        return self.width_mm * self.height_mm

    @property
    def power_density_w_per_mm2(self) -> float:
        return self.power_w / self.area_mm2

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x_mm + 0.5 * self.width_mm, self.y_mm + 0.5 * self.height_mm)

    def contains(self, x_mm: float, y_mm: float) -> bool:
        return (
            self.x_mm <= x_mm <= self.x_mm + self.width_mm
            and self.y_mm <= y_mm <= self.y_mm + self.height_mm
        )


@dataclass(frozen=True)
class SensorSite:
    """A named location where a ring-oscillator sensor is placed."""

    name: str
    x_mm: float
    y_mm: float


class Floorplan:
    """Die outline plus functional blocks plus sensor sites.

    Parameters
    ----------
    width_mm / height_mm:
        Die dimensions.
    name:
        Identifier used in reports.
    """

    def __init__(self, width_mm: float, height_mm: float, name: str = "die") -> None:
        if width_mm <= 0.0 or height_mm <= 0.0:
            raise TechnologyError("die dimensions must be positive")
        self.width_mm = float(width_mm)
        self.height_mm = float(height_mm)
        self.name = name
        self._blocks: Dict[str, FunctionalBlock] = {}
        self._sensor_sites: Dict[str, SensorSite] = {}

    # ------------------------------------------------------------------ #
    # blocks
    # ------------------------------------------------------------------ #

    def add_block(self, block: FunctionalBlock) -> None:
        """Add a functional block; it must fit inside the die."""
        if block.name in self._blocks:
            raise TechnologyError(f"block {block.name!r} already exists")
        if (
            block.x_mm < 0.0
            or block.y_mm < 0.0
            or block.x_mm + block.width_mm > self.width_mm + 1e-9
            or block.y_mm + block.height_mm > self.height_mm + 1e-9
        ):
            raise TechnologyError(f"block {block.name!r} extends outside the die")
        self._blocks[block.name] = block

    def blocks(self) -> List[FunctionalBlock]:
        return list(self._blocks.values())

    def block(self, name: str) -> FunctionalBlock:
        try:
            return self._blocks[name]
        except KeyError as exc:
            raise TechnologyError(f"no block named {name!r}") from exc

    def total_power_w(self) -> float:
        """Total power dissipated by all blocks."""
        return sum(block.power_w for block in self._blocks.values())

    # ------------------------------------------------------------------ #
    # sensor sites
    # ------------------------------------------------------------------ #

    def add_sensor_site(self, site: SensorSite) -> None:
        """Register a sensor location; it must lie inside the die."""
        if site.name in self._sensor_sites:
            raise TechnologyError(f"sensor site {site.name!r} already exists")
        if not (0.0 <= site.x_mm <= self.width_mm and 0.0 <= site.y_mm <= self.height_mm):
            raise TechnologyError(f"sensor site {site.name!r} lies outside the die")
        self._sensor_sites[site.name] = site

    def add_sensor_grid(self, columns: int, rows: int, prefix: str = "s") -> List[SensorSite]:
        """Place a regular grid of sensor sites (the usual mapping layout)."""
        if columns < 1 or rows < 1:
            raise TechnologyError("sensor grid needs at least one row and one column")
        sites: List[SensorSite] = []
        for row in range(rows):
            for column in range(columns):
                x = (column + 0.5) / columns * self.width_mm
                y = (row + 0.5) / rows * self.height_mm
                site = SensorSite(name=f"{prefix}{row}_{column}", x_mm=x, y_mm=y)
                self.add_sensor_site(site)
                sites.append(site)
        return sites

    def sensor_sites(self) -> List[SensorSite]:
        return list(self._sensor_sites.values())

    def sensor_site(self, name: str) -> SensorSite:
        try:
            return self._sensor_sites[name]
        except KeyError as exc:
            raise TechnologyError(f"no sensor site named {name!r}") from exc

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def example_processor(cls, scale_power: float = 1.0) -> "Floorplan":
        """A small processor-like floorplan used by examples and benches.

        Core, cache, and I/O blocks with a strongly non-uniform power
        distribution, producing the hotspot-plus-cool-corner pattern the
        paper's thermal-mapping feature targets.
        """
        plan = cls(width_mm=8.0, height_mm=8.0, name="example_processor")
        plan.add_block(FunctionalBlock("core0", 0.5, 4.5, 3.0, 3.0, 6.0 * scale_power))
        plan.add_block(FunctionalBlock("core1", 4.5, 4.5, 3.0, 3.0, 4.0 * scale_power))
        plan.add_block(FunctionalBlock("l2_cache", 0.5, 0.5, 5.0, 3.0, 1.5 * scale_power))
        plan.add_block(FunctionalBlock("io_ring", 6.0, 0.5, 1.5, 3.0, 0.8 * scale_power))
        plan.add_block(FunctionalBlock("fpu", 3.8, 4.6, 0.6, 2.8, 2.2 * scale_power))
        return plan
