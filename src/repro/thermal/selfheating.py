"""Self-heating of the ring-oscillator sensor.

A free-running ring oscillator dissipates power at the very spot whose
temperature it is supposed to report, biasing the measurement upward.
The paper's smart unit therefore disables the oscillator between
measurements.  This module quantifies that design choice: given a sensor
(its power draw), the die thermal model, and a measurement duty cycle,
it reports the temperature error caused by self-heating — the ablation
study ABL-SELFHEAT in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..tech.parameters import TechnologyError
from .grid import TemperatureMap, ThermalGrid, ThermalGridParameters
from .operator import ThermalOperator
from .power import PowerMap

__all__ = ["SelfHeatingReport", "self_heating_error", "duty_cycle_study"]


@dataclass(frozen=True)
class SelfHeatingReport:
    """Self-heating error of one sensor operating condition.

    Attributes
    ----------
    duty_cycle:
        Fraction of time the oscillator runs.
    oscillator_power_w:
        Power the oscillator draws while running.
    temperature_rise_c:
        Local temperature rise at the sensor site caused by the
        oscillator itself (time-averaged).
    background_temperature_c:
        Temperature at the sensor site without the oscillator running.
    """

    duty_cycle: float
    oscillator_power_w: float
    temperature_rise_c: float
    background_temperature_c: float

    @property
    def measured_temperature_c(self) -> float:
        """Temperature the sensor would actually report."""
        return self.background_temperature_c + self.temperature_rise_c


def self_heating_error(
    background_power: PowerMap,
    sensor_x_mm: float,
    sensor_y_mm: float,
    oscillator_power_w: float,
    duty_cycle: float = 1.0,
    ambient_c: float = 45.0,
    parameters: ThermalGridParameters = ThermalGridParameters(),
) -> SelfHeatingReport:
    """Steady-state self-heating error of a sensor at one die location.

    The time-averaged heating of a duty-cycled oscillator equals the
    steady-state heating of an oscillator drawing ``duty * power`` (the
    thermal time constants are far longer than the measurement window),
    so the duty cycle enters as a simple power scaling.  The baseline
    and with-sensor fields come out of one multi-RHS solve against the
    shared :class:`ThermalOperator` factorization.
    """
    if not 0.0 <= duty_cycle <= 1.0:
        raise TechnologyError("duty cycle must lie in [0, 1]")
    if oscillator_power_w < 0.0:
        raise TechnologyError("oscillator power must be non-negative")

    grid = ThermalGrid.for_power_map(background_power, parameters)
    heated = background_power.copy()
    heated.add_point_source(sensor_x_mm, sensor_y_mm, oscillator_power_w * duty_cycle)
    baseline, with_sensor = ThermalOperator.for_grid(grid).solve_steady_state_multi(
        [background_power, heated], ambient_c
    )
    background_temp = baseline.sample(sensor_x_mm, sensor_y_mm)
    sensor_temp = with_sensor.sample(sensor_x_mm, sensor_y_mm)

    return SelfHeatingReport(
        duty_cycle=duty_cycle,
        oscillator_power_w=oscillator_power_w,
        temperature_rise_c=sensor_temp - background_temp,
        background_temperature_c=background_temp,
    )


def duty_cycle_study(
    background_power: PowerMap,
    sensor_x_mm: float,
    sensor_y_mm: float,
    oscillator_power_w: float,
    duty_cycles=(1.0, 0.5, 0.1, 0.01, 0.001),
    ambient_c: float = 45.0,
    parameters: ThermalGridParameters = ThermalGridParameters(),
    scalar: bool = False,
):
    """Self-heating error versus measurement duty cycle.

    Returns a list of :class:`SelfHeatingReport`, one per duty cycle,
    from free-running (1.0) down to the sparse duty cycles the
    auto-disable controller achieves.

    The thermal network is linear, so the rise caused by ``duty *
    power`` is ``duty`` times the rise caused by the full power: the
    default path therefore runs one *multi-RHS* steady-state solve
    (baseline and full-power stacked against the cached
    :class:`ThermalOperator` factorization) and scales, instead of one
    factorize-and-solve per duty cycle.  ``scalar=True`` keeps the
    solve-per-duty-cycle loop as the reference oracle (the two paths
    agree to solver rounding, far below any physically meaningful
    difference).
    """
    if scalar:
        return [
            self_heating_error(
                background_power,
                sensor_x_mm,
                sensor_y_mm,
                oscillator_power_w,
                duty_cycle=float(duty),
                ambient_c=ambient_c,
                parameters=parameters,
            )
            for duty in duty_cycles
        ]
    if oscillator_power_w < 0.0:
        raise TechnologyError("oscillator power must be non-negative")
    duties = [float(duty) for duty in duty_cycles]
    for duty in duties:
        if not 0.0 <= duty <= 1.0:
            raise TechnologyError("duty cycle must lie in [0, 1]")

    grid = ThermalGrid.for_power_map(background_power, parameters)
    heated = background_power.copy()
    heated.add_point_source(sensor_x_mm, sensor_y_mm, oscillator_power_w)
    baseline, with_sensor = ThermalOperator.for_grid(grid).solve_steady_state_multi(
        [background_power, heated], ambient_c
    )
    background_temp = baseline.sample(sensor_x_mm, sensor_y_mm)
    full_rise = with_sensor.sample(sensor_x_mm, sensor_y_mm) - background_temp

    return [
        SelfHeatingReport(
            duty_cycle=duty,
            oscillator_power_w=oscillator_power_w,
            temperature_rise_c=duty * full_rise,
            background_temperature_c=background_temp,
        )
        for duty in duties
    ]
