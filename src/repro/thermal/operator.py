"""Cached thermal solves: one factorization (or preconditioner), many uses.

Before this module the repository factorized the thermal system in three
independent places — the steady-state solver called
:func:`scipy.sparse.linalg.spsolve` (an implicit factorization) on every
call, and :func:`repro.thermal.solver.solve_transient` and
:meth:`repro.core.thermal_manager.DynamicThermalManager.run` each built
their own ``factorized(C/dt + G)`` backward-Euler system per run.  Every
repeated workload (a thermal-mapping scan per control step, the
self-heating duty-cycle sweep, the managed-versus-unmanaged DTM pair)
therefore paid the symbolic + numeric factorization again for a matrix
that had not changed.

:class:`ThermalOperator` owns those solves instead:

* the steady-state solve of the conductance matrix ``G`` is prepared
  once per grid and serves any number of right-hand sides, including an
  ``(n, k)`` *stack* of power maps in one multi-RHS solve (``G \\ P``),
* the backward-Euler system ``(C/dt + G)`` is prepared once per
  (grid, timestep) pair and handed out as a :class:`ThermalStepper`,
  so every transient integration with the same step reuses it, and
* operators are cached process-wide (LRU, bounded), keyed by the grid's
  *defining* geometry and physical parameters (two :class:`ThermalGrid`
  instances built from the same floorplan resolution produce identical
  matrices, so they share one operator) — which is what lets the
  managed and unmanaged DTM runs, every thermal-map scan of a monitor,
  and every candidate of a placement search share a single prepared
  solve.

Solve methods
-------------

``method`` selects how each SPD system is prepared:

============  =========================================================
``direct``    Sparse-direct factorization (``factorized``); exact, but
              fill-in memory grows super-linearly with the grid.
``iterative`` ILU-preconditioned conjugate gradients (PR 5's fallback).
              Memory stays linear, but ILU is not grid-aware: its
              iteration count grows with resolution and it stalls
              outright on full-die grids (256x256+).
``multigrid`` Geometric-multigrid-preconditioned CG
              (:class:`repro.thermal.multigrid.GeometricMultigrid`):
              one V-cycle per iteration keeps the iteration count
              essentially constant in the grid size (~13 on the grids
              here), so large grids cost the same per unknown as small
              ones.  The default large-grid path.
``auto``      ``direct`` at or below :attr:`iterative_threshold`
              unknowns, ``multigrid`` above it.
============  =========================================================

Both iterative methods run the same **batched block-CG** core: an
``(n, k)`` stack of right-hand sides advances through *one* sparse
matrix-vector product (and one preconditioner application) per
iteration for the whole block, with per-column convergence masking and
per-shape warm starts — so ``ThermalStepper.step``, ``steady_rise`` and
the policy bank stay one solve per step at any grid size instead of
degrading into ``k`` sequential CG runs.

Environment knobs (mirroring the ``REPRO_SWEEP_*`` convention, and
surfaced as ``--thermal-method`` / ``--thermal-iterative-threshold``
flags on the experiment runner):

* ``REPRO_THERMAL_METHOD`` — overrides how ``method="auto"`` requests
  resolve (one of :data:`SOLVE_METHODS`; explicit call-site choices
  still win).
* ``REPRO_THERMAL_ITERATIVE_THRESHOLD`` — overrides
  :attr:`ThermalOperator.iterative_threshold`, the unknown count above
  which ``auto`` stops factorizing.

The solvers in :mod:`repro.thermal.solver`, the self-heating study and
the DTM manager are all thin layers over this class; ``factorized`` is
called nowhere else in the repository (the multigrid coarse solve
excepted).

Concurrency and fork semantics
------------------------------

The process-wide cache is guarded by a :class:`threading.Lock` (and each
operator's lazy factorizations by a per-instance lock), so threaded
callers — a sweep executor streaming tiles, a benchmark harness timing
in a worker thread — cannot corrupt the ``OrderedDict`` mid-evict or
factorize the same matrix twice and drop one copy.

The cache is deliberately **per process**.  Worker processes of a tiled
sweep (:mod:`repro.engine.executors`) each get their own cache — cold
under ``spawn``, a frozen copy-on-write snapshot under ``fork`` — and
warm it from the tiles they execute.  Factorization objects (SuperLU
handles, ILU preconditioners, multigrid hierarchies) hold
foreign-memory state that does not pickle; do **not** ship operators or
steppers across process boundaries — ship the grid (cheap, declarative)
and call :meth:`ThermalOperator.for_grid` on the worker side instead.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import diags
from scipy.sparse.linalg import factorized, spilu

from ..tech.parameters import TechnologyError
from .grid import TemperatureMap, ThermalGrid
from .multigrid import GeometricMultigrid
from .power import PowerMap

__all__ = [
    "ThermalOperator",
    "ThermalStepper",
    "SOLVE_METHODS",
    "METHOD_ENV",
    "THRESHOLD_ENV",
]

#: The solve methods an operator can be asked for (see the module
#: docstring's table).  ``auto`` resolves to ``direct`` at or below
#: :attr:`ThermalOperator.iterative_threshold` unknowns and to
#: ``multigrid`` above it.
SOLVE_METHODS = ("auto", "direct", "iterative", "multigrid")

#: Environment variable overriding how ``method="auto"`` resolves.
METHOD_ENV = "REPRO_THERMAL_METHOD"
#: Environment variable overriding the auto direct/multigrid threshold.
THRESHOLD_ENV = "REPRO_THERMAL_ITERATIVE_THRESHOLD"

#: Process-wide operator cache.  Bounded so a long-running sweep over
#: many distinct grid geometries cannot grow it without limit; eviction
#: is least-recently-*used* (``for_grid`` hits refresh an entry), so an
#: interleaved workload over a few grids — a placement search, a
#: resolution sweep — keeps its hottest operators however they
#: alternate.
_CACHE_LIMIT = 8
#: Backward-Euler solves kept per operator; a what-if sweep over many
#: control intervals on one grid evicts the least-recently-used
#: timestep's factorization (or preconditioner) instead of accumulating
#: one per interval forever.
_TIMESTEP_CACHE_LIMIT = 4
#: Warm-start states kept per iterative solve, keyed by RHS shape (a
#: steady scan and a 16-column policy-bank step on the same operator
#: each keep their own previous solution).
_WARM_START_LIMIT = 4
_OPERATORS: "OrderedDict[Tuple, ThermalOperator]" = OrderedDict()
#: Guards every lookup/insert/evict on :data:`_OPERATORS`.  Plain dict
#: reads are atomic in CPython, but the insert-then-evict sequence in
#: :meth:`ThermalOperator.for_grid` is not — two threads caching
#: distinct grids could interleave ``popitem`` with ``__setitem__`` and
#: evict a just-inserted operator (or blow past the limit).
_CACHE_LOCK = threading.Lock()

#: Relative residual tolerance of the CG solves.  Tight enough that
#: the iterative paths agree with the sparse-direct factorization to
#: better than 1e-8 relative on the thermal systems here (the
#: equivalence bound the tests and benchmarks pin).
_CG_RTOL = 1e-12


class _IterativeSolve:
    """Batched preconditioned-CG drop-in for a ``factorized`` callable.

    Built once per system matrix (like a factorization, minus the
    fill-in): the preconditioner — a geometric-multigrid V-cycle or an
    ILU, per the operator's method — is computed at construction and
    every :meth:`__call__` runs warm-started CG.  Accepts the same
    ``(n,)`` vector or ``(n, k)`` stack a direct factorization does.

    A stack solves as a true **block**: every CG iteration performs one
    sparse matrix-vector product and one preconditioner application on
    the whole ``(n, k)`` array, with scalar recurrences (``alpha``,
    ``beta``) tracked per column.  Columns that reach the tolerance are
    masked out of the updates (their ``alpha`` is zeroed, freezing both
    solution and residual) while the rest keep iterating, so a stack is
    never slower than its hardest column.  ``solve_columns_loop``
    retains the old one-column-at-a-time behaviour as the equivalence
    oracle the batched-RHS benchmark measures against.

    Warm starts are keyed by the RHS shape: the previous ``(n,)``
    steady solution never pollutes the initial guess of an ``(n, 16)``
    policy-bank step (or vice versa), which is exactly the
    cross-caller pollution the old shared ``_last_solution`` suffered.
    """

    def __init__(
        self,
        matrix,
        preconditioner: str = "ilu",
        grid_shape: Optional[Tuple[int, int]] = None,
    ) -> None:
        self._matrix = matrix.tocsr()
        self._size = int(self._matrix.shape[0])
        if preconditioner == "multigrid":
            if grid_shape is None:
                raise TechnologyError(
                    "the multigrid preconditioner needs the grid's (ny, nx)"
                )
            self._preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = (
                GeometricMultigrid(self._matrix, grid_shape)
            )
        elif preconditioner == "ilu":
            self._preconditioner = self._build_ilu()
        else:  # pragma: no cover - guarded by _prepare
            raise TechnologyError(
                f"unknown preconditioner {preconditioner!r}"
            )
        # Jacobi fallback: the diagonal is strictly positive (every cell
        # carries a vertical conductance) and the operator is exactly
        # symmetric, so CG is guaranteed to converge with it even when
        # the (unsymmetric) ILU stalls or cannot be built.
        self._inverse_diagonal = 1.0 / self._matrix.diagonal()
        self._warm_starts: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
        #: CG iterations of the most recent solve (diagnostics/tests).
        self.last_iterations = 0

    def _build_ilu(self) -> Optional[Callable[[np.ndarray], np.ndarray]]:
        # A tight drop tolerance keeps the ILU close to symmetric (CG's
        # theory wants an SPD preconditioner); memory stays linear in
        # the unknown count — fill_factor bounds it by a multiple of
        # the five-point stencil's nonzeros, nothing like direct fill-in.
        try:
            ilu = spilu(self._matrix.tocsc(), drop_tol=1e-6, fill_factor=20.0)
        except (RuntimeError, ValueError, MemoryError):
            return None
        return ilu.solve  # SuperLU solves (n,) and (n, k) alike

    def _jacobi(self, residual: np.ndarray) -> np.ndarray:
        return self._inverse_diagonal[:, np.newaxis] * residual

    def _block_cg(
        self,
        rhs: np.ndarray,
        x0: np.ndarray,
        apply_preconditioner: Callable[[np.ndarray], np.ndarray],
        maxiter: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Preconditioned CG on an ``(n, k)`` block, columns masked
        independently.

        Returns ``(solution, converged)`` where ``converged`` is a
        ``(k,)`` boolean mask; the per-column criterion is
        ``||r_j|| <= rtol * ||b_j||`` (matching scipy's ``cg`` with
        ``atol=0``).  ``maxiter`` caps the iteration count (the
        benchmarks use a small cap to price a known-slow preconditioner
        without waiting for it); the default runs to the system size,
        bounded at 1000.
        """
        matrix = self._matrix
        # Convergence is tested on squared norms (one einsum per
        # iteration instead of a norm reduction and a sqrt).
        tolerance_sq = _CG_RTOL**2 * np.einsum("ij,ij->j", rhs, rhs)
        solution = x0.copy()
        residual = rhs - matrix @ solution
        # Zero right-hand sides have the exact solution zero; count them
        # converged immediately (norm(r) == 0 <= 0) like scipy does.
        active = np.einsum("ij,ij->j", residual, residual) > tolerance_sq
        if not active.any():
            self.last_iterations = 0
            return solution, ~active
        preconditioned = apply_preconditioner(residual)
        direction = preconditioned.copy()
        rho = np.einsum("ij,ij->j", residual, preconditioned)
        iterations = 0
        limit = maxiter if maxiter is not None else min(self._size, 1000)
        for iterations in range(1, limit + 1):
            conjugated = matrix @ direction
            curvature = np.einsum("ij,ij->j", direction, conjugated)
            # Frozen (converged) columns get alpha = 0: their solution,
            # residual and search direction stop changing, at the cost
            # of a dead column riding along in the block products —
            # far cheaper than re-packing the block every iteration.
            step = np.where(
                active & (curvature > 0.0),
                rho / np.where(curvature > 0.0, curvature, 1.0),
                0.0,
            )
            solution += step * direction
            residual -= step * conjugated
            active = np.einsum("ij,ij->j", residual, residual) > tolerance_sq
            if not active.any():
                break
            preconditioned = apply_preconditioner(residual)
            rho_next = np.einsum("ij,ij->j", residual, preconditioned)
            beta = np.where(active, rho_next / np.where(rho != 0.0, rho, 1.0), 0.0)
            direction = preconditioned + beta * direction
            rho = rho_next
        self.last_iterations = iterations
        return solution, ~active

    def _solve_block(self, rhs: np.ndarray, key: Tuple) -> np.ndarray:
        warm = self._warm_starts.get(key)
        if warm is not None and warm.shape == rhs.shape:
            x0 = warm
            self._warm_starts.move_to_end(key)
        else:
            x0 = np.zeros_like(rhs)
        if self._preconditioner is not None:
            solution, converged = self._block_cg(rhs, x0, self._preconditioner)
        else:
            converged = np.zeros(rhs.shape[1], dtype=bool)
        if not converged.all():
            # Retry the unconverged columns (all of them, if the main
            # preconditioner was unavailable) with the guaranteed-SPD
            # Jacobi preconditioner before giving up.
            solution, converged = self._block_cg(rhs, x0, self._jacobi)
            if not converged.all():
                failed = int(np.count_nonzero(~converged))
                raise TechnologyError(
                    f"iterative thermal solve did not converge on {failed} of "
                    f"{rhs.shape[1]} right-hand sides of the "
                    f"{self._size}-unknown system"
                )
        self._warm_starts[key] = solution.copy()
        while len(self._warm_starts) > _WARM_START_LIMIT:
            self._warm_starts.popitem(last=False)
        return solution

    def __call__(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        if rhs.ndim == 1:
            return self._solve_block(rhs[:, np.newaxis], ("vec",))[:, 0]
        return self._solve_block(rhs, ("stack", rhs.shape[1]))

    def solve_columns_loop(self, rhs: np.ndarray) -> np.ndarray:
        """Solve an ``(n, k)`` stack one column at a time (the oracle).

        This is the pre-batching behaviour — ``k`` sequential CG runs,
        each paying its own preconditioner applications — kept as the
        equivalence/benchmark baseline for the block path.  Columns are
        solved cold (no warm-start state is read or written) so the
        comparison is deterministic.
        """
        rhs = np.asarray(rhs, dtype=float)
        if rhs.ndim != 2:
            raise TechnologyError("solve_columns_loop expects an (n, k) stack")
        columns = []
        apply_m = (
            self._preconditioner if self._preconditioner is not None else self._jacobi
        )
        for k in range(rhs.shape[1]):
            column = rhs[:, k : k + 1]
            solution, converged = self._block_cg(
                column, np.zeros_like(column), apply_m
            )
            if not converged.all():
                solution, converged = self._block_cg(
                    column, np.zeros_like(column), self._jacobi
                )
                if not converged.all():
                    raise TechnologyError(
                        f"iterative thermal solve did not converge on column {k} "
                        f"of the {self._size}-unknown system"
                    )
            columns.append(solution[:, 0])
        return np.stack(columns, axis=1)


class ThermalStepper:
    """One backward-Euler integrator bound to a prepared system solve.

    Produced by :meth:`ThermalOperator.stepper`; advances the
    temperature *rise* vector by one timestep per :meth:`step` call.
    The implicit system ``(C/dt + G) x_{n+1} = P + C/dt x_n`` was
    prepared once when the stepper was created (factorized sparse-direct
    or preconditioned CG, per the operator's method), so each step is a
    pair of triangular solves or a warm-started Krylov solve — and an
    ``(n, k)`` stack of states advances in one multi-RHS/block solve
    either way.
    """

    def __init__(
        self,
        grid: ThermalGrid,
        timestep_s: float,
        solve: Callable[[np.ndarray], np.ndarray],
    ) -> None:
        self.grid = grid
        self.timestep_s = float(timestep_s)
        self._solve = solve
        self._capacitance_over_dt = grid.capacitance_vector / self.timestep_s

    def step(self, rise: np.ndarray, power_w: np.ndarray) -> np.ndarray:
        """Advance the flattened temperature-rise state one timestep.

        Parameters
        ----------
        rise:
            Current temperature rise above ambient, flattened to
            ``(nx * ny,)`` — or an ``(nx * ny, k)`` *stack* of states
            (one column per banked policy/workload), advanced through
            one multi-RHS solve.
        power_w:
            Power injected during the step, flattened to the same shape
            (columns broadcast against the capacitance vector).
        """
        rise = np.asarray(rise, dtype=float)
        power = np.asarray(power_w, dtype=float)
        if rise.ndim == 2:
            rhs = power + self._capacitance_over_dt[:, np.newaxis] * rise
        else:
            rhs = power + self._capacitance_over_dt * rise
        return self._solve(rhs)


class ThermalOperator:
    """Cached solver (direct factorizations or CG) for one thermal grid.

    Parameters
    ----------
    grid:
        The thermal RC network.
    method:
        One of :data:`SOLVE_METHODS`.  ``auto`` (the default) picks
        sparse-direct factorization up to
        :attr:`iterative_threshold` unknowns and the multigrid-CG
        path above it; ``direct``/``iterative``/``multigrid`` force the
        choice.  The ``REPRO_THERMAL_METHOD`` environment variable
        overrides how ``auto`` resolves (explicit choices still win),
        and ``REPRO_THERMAL_ITERATIVE_THRESHOLD`` overrides the
        threshold — both read at resolve time, so a runner flag set
        before the first solve takes effect process-wide.
    """

    #: Unknown count above which ``method="auto"`` routes solves through
    #: multigrid-preconditioned CG instead of sparse-direct
    #: factorization.  A class attribute so deployments with more (or
    #: less) memory can retune it (``ThermalOperator.iterative_threshold
    #: = ...``); the ``REPRO_THERMAL_ITERATIVE_THRESHOLD`` environment
    #: variable takes precedence when set.
    iterative_threshold: int = 4096

    def __init__(self, grid: ThermalGrid, method: str = "auto") -> None:
        self.grid = grid
        self.method = self._resolve_method(grid, method)
        self._steady_solve: Optional[Callable[[np.ndarray], np.ndarray]] = None
        self._transient_solves: "OrderedDict[float, Callable[[np.ndarray], np.ndarray]]" = (
            OrderedDict()
        )
        # Guards the lazy factorization caches above: two threads asking
        # a shared operator for the same solve must not factorize twice
        # (wasted work) or interleave the stepper cache's insert/evict.
        self._solve_lock = threading.Lock()

    @classmethod
    def _effective_threshold(cls) -> int:
        raw = os.environ.get(THRESHOLD_ENV)
        if raw is None:
            return cls.iterative_threshold
        try:
            value = int(raw)
        except ValueError:
            raise TechnologyError(
                f"{THRESHOLD_ENV} must be an integer, got {raw!r}"
            ) from None
        if value < 0:
            raise TechnologyError(f"{THRESHOLD_ENV} must be non-negative")
        return value

    @classmethod
    def _resolve_method(cls, grid: ThermalGrid, method: str) -> str:
        if method not in SOLVE_METHODS:
            raise TechnologyError(
                f"unknown solve method {method!r}; choose one of {SOLVE_METHODS}"
            )
        if method == "auto":
            override = os.environ.get(METHOD_ENV)
            if override:
                if override not in SOLVE_METHODS:
                    raise TechnologyError(
                        f"{METHOD_ENV} must be one of {SOLVE_METHODS}, "
                        f"got {override!r}"
                    )
                method = override
        if method != "auto":
            return method
        if grid.nx * grid.ny > cls._effective_threshold():
            return "multigrid"
        return "direct"

    def _prepare(self, matrix) -> Callable[[np.ndarray], np.ndarray]:
        """A solve callable for one SPD system, per the chosen method."""
        if self.method == "multigrid":
            return _IterativeSolve(
                matrix,
                preconditioner="multigrid",
                grid_shape=(self.grid.ny, self.grid.nx),
            )
        if self.method == "iterative":
            return _IterativeSolve(matrix, preconditioner="ilu")
        return factorized(matrix.tocsc())

    # ------------------------------------------------------------------ #
    # the process-wide cache
    # ------------------------------------------------------------------ #

    @classmethod
    def _cache_key(cls, grid: ThermalGrid, method: str = "auto") -> Tuple:
        """The matrix-defining fingerprint of a grid (plus solve method).

        Two grids with equal geometry and physical parameters build
        bit-identical conductance/capacitance matrices, so they may
        share one operator (and therefore one factorization).  The
        *resolved* method joins the key so an explicit
        ``method="iterative"`` request does not hand back a cached
        direct operator (or vice versa).
        """
        return (
            grid.width_mm,
            grid.height_mm,
            grid.nx,
            grid.ny,
            grid.parameters,
            cls._resolve_method(grid, method),
        )

    @classmethod
    def for_grid(cls, grid: ThermalGrid, method: str = "auto") -> "ThermalOperator":
        """The shared operator of a grid (cached process-wide, thread-safe).

        Cache hits refresh the entry's recency (LRU), so a workload
        alternating among a few grids — a placement search, a
        resolution sweep — keeps all of them live instead of evicting
        its hottest operator in insertion order.

        The cache is per process: a forked/spawned sweep worker warms
        its own (see the module docstring) — never pickle an operator
        across a process boundary, re-request it from the grid instead.
        """
        key = cls._cache_key(grid, method)
        with _CACHE_LOCK:
            operator = _OPERATORS.get(key)
            if operator is None:
                operator = cls(grid, method)
                _OPERATORS[key] = operator
                while len(_OPERATORS) > _CACHE_LIMIT:
                    _OPERATORS.popitem(last=False)
            else:
                _OPERATORS.move_to_end(key)
        return operator

    @classmethod
    def clear_cache(cls) -> None:
        """Drop every cached operator (test isolation / memory pressure)."""
        with _CACHE_LOCK:
            _OPERATORS.clear()

    @classmethod
    def cache_size(cls) -> int:
        with _CACHE_LOCK:
            return len(_OPERATORS)

    # ------------------------------------------------------------------ #
    # steady state
    # ------------------------------------------------------------------ #

    def steady_solve(self) -> Callable[[np.ndarray], np.ndarray]:
        """The prepared steady-state solve ``x = G \\ rhs`` (cached)."""
        with self._solve_lock:
            if self._steady_solve is None:
                self._steady_solve = self._prepare(self.grid.conductance_matrix)
            return self._steady_solve

    def steady_rise(self, power_w: np.ndarray) -> np.ndarray:
        """Temperature rise for one or many flattened power vectors.

        ``power_w`` may be a single ``(n,)`` vector or an ``(n, k)``
        stack of right-hand sides; the direct path applies the
        factorization to the whole stack in one multi-RHS solve, the
        iterative paths run one *block* CG (one SpMV per iteration for
        the whole stack).
        """
        rhs = np.asarray(power_w, dtype=float)
        size = self.grid.nx * self.grid.ny
        if rhs.shape[0] != size:
            raise TechnologyError(
                f"right-hand side has {rhs.shape[0]} rows, expected {size} "
                f"for the {self.grid.ny}x{self.grid.nx} grid"
            )
        return self.steady_solve()(rhs)

    def solve_steady_state(
        self, power: PowerMap, ambient_c: float = 45.0
    ) -> TemperatureMap:
        """Steady-state temperature map of one power map (``G \\ P``)."""
        self.grid.check_power_map(power)
        rise = self.steady_rise(power.values_w.reshape(-1))
        values = rise.reshape((self.grid.ny, self.grid.nx)) + ambient_c
        return TemperatureMap(self.grid.width_mm, self.grid.height_mm, values)

    def solve_steady_state_multi(
        self, powers: Sequence[PowerMap], ambient_c: float = 45.0
    ) -> List[TemperatureMap]:
        """Steady-state maps of several power maps in one multi-RHS solve.

        All power maps must match the grid; the stacked ``(n, k)``
        right-hand side goes through the prepared solve once, replacing
        ``k`` independent ``spsolve`` calls (each of which used to
        re-factorize the same matrix).
        """
        maps = list(powers)
        if not maps:
            raise TechnologyError("solve_steady_state_multi needs at least one power map")
        for power in maps:
            self.grid.check_power_map(power)
        stack = np.stack([power.values_w.reshape(-1) for power in maps], axis=1)
        rises = self.steady_rise(stack)
        return [
            TemperatureMap(
                self.grid.width_mm,
                self.grid.height_mm,
                rises[:, k].reshape((self.grid.ny, self.grid.nx)) + ambient_c,
            )
            for k in range(len(maps))
        ]

    # ------------------------------------------------------------------ #
    # transient stepping
    # ------------------------------------------------------------------ #

    def stepper(self, timestep_s: float) -> ThermalStepper:
        """A backward-Euler stepper for this grid at a timestep (cached).

        The ``(C/dt + G)`` solve is keyed by the timestep, so every
        transient run with the same step — every control interval of a
        DTM simulation, every repeat of a study — shares it.
        """
        if timestep_s <= 0.0:
            raise TechnologyError("timestep must be positive")
        dt = float(timestep_s)
        with self._solve_lock:
            solve = self._transient_solves.get(dt)
            if solve is None:
                system = (
                    diags(self.grid.capacitance_vector / dt)
                    + self.grid.conductance_matrix
                )
                solve = self._prepare(system)
                self._transient_solves[dt] = solve
                while len(self._transient_solves) > _TIMESTEP_CACHE_LIMIT:
                    self._transient_solves.popitem(last=False)
            else:
                self._transient_solves.move_to_end(dt)
        return ThermalStepper(self.grid, dt, solve)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThermalOperator({self.grid.ny}x{self.grid.nx}, {self.method}, "
            f"steady={'cached' if self._steady_solve is not None else 'cold'}, "
            f"timesteps={sorted(self._transient_solves)})"
        )
