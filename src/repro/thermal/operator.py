"""Cached thermal solves: one factorization (or preconditioner), many uses.

Before this module the repository factorized the thermal system in three
independent places — the steady-state solver called
:func:`scipy.sparse.linalg.spsolve` (an implicit factorization) on every
call, and :func:`repro.thermal.solver.solve_transient` and
:meth:`repro.core.thermal_manager.DynamicThermalManager.run` each built
their own ``factorized(C/dt + G)`` backward-Euler system per run.  Every
repeated workload (a thermal-mapping scan per control step, the
self-heating duty-cycle sweep, the managed-versus-unmanaged DTM pair)
therefore paid the symbolic + numeric factorization again for a matrix
that had not changed.

:class:`ThermalOperator` owns those solves instead:

* the steady-state factorization of the conductance matrix ``G`` is
  computed once per grid and solves any number of right-hand sides,
  including an ``(n, k)`` *stack* of power maps in one multi-RHS
  triangular solve (``G \\ P``),
* the backward-Euler system ``(C/dt + G)`` is factorized once per
  (grid, timestep) pair and handed out as a :class:`ThermalStepper`,
  so every transient integration with the same step reuses it, and
* operators are cached process-wide, keyed by the grid's *defining*
  geometry and physical parameters (two :class:`ThermalGrid` instances
  built from the same floorplan resolution produce identical matrices,
  so they share one operator) — which is what lets the managed and
  unmanaged DTM runs, and every thermal-map scan of a monitor, share a
  single factorization.

Grids too large to factorize get an **iterative fallback**: above the
configurable :attr:`ThermalOperator.iterative_threshold` unknown count
(or on explicit ``method="iterative"`` request) the steady and
backward-Euler solves route through preconditioned conjugate gradients
(:func:`scipy.sparse.linalg.cg` — both systems are symmetric positive
definite) with an ILU preconditioner (diagonal/Jacobi when the
incomplete factorization is unavailable) and warm-started initial
guesses from the previous solve, keeping memory bounded by the sparse
matrix itself where a sparse-direct factorization's fill-in won't fit.

The solvers in :mod:`repro.thermal.solver`, the self-heating study and
the DTM manager are all thin layers over this class; ``factorized`` is
called nowhere else in the repository.

Concurrency and fork semantics
------------------------------

The process-wide cache is guarded by a :class:`threading.Lock` (and each
operator's lazy factorizations by a per-instance lock), so threaded
callers — a sweep executor streaming tiles, a benchmark harness timing
in a worker thread — cannot corrupt the ``OrderedDict`` mid-evict or
factorize the same matrix twice and drop one copy.

The cache is deliberately **per process**.  Worker processes of a tiled
sweep (:mod:`repro.engine.executors`) each get their own cache — cold
under ``spawn``, a frozen copy-on-write snapshot under ``fork`` — and
warm it from the tiles they execute.  Factorization objects (SuperLU
handles, ILU preconditioners) hold foreign-memory state that does not
pickle; do **not** ship operators or steppers across process
boundaries — ship the grid (cheap, declarative) and call
:meth:`ThermalOperator.for_grid` on the worker side instead.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import diags
from scipy.sparse.linalg import LinearOperator, cg, factorized, spilu

from ..tech.parameters import TechnologyError
from .grid import TemperatureMap, ThermalGrid
from .power import PowerMap

__all__ = ["ThermalOperator", "ThermalStepper", "SOLVE_METHODS"]

#: The solve methods an operator can be asked for.  ``auto`` resolves to
#: ``direct`` (sparse-direct factorization) at or below
#: :attr:`ThermalOperator.iterative_threshold` unknowns and to
#: ``iterative`` (preconditioned CG) above it.
SOLVE_METHODS = ("auto", "direct", "iterative")

#: Process-wide operator cache.  Bounded so a long-running sweep over
#: many distinct grid geometries cannot grow it without limit; the
#: eviction order is insertion order (oldest grid first), which matches
#: the workloads here (a study works one grid at a time).
_CACHE_LIMIT = 8
#: Backward-Euler solves kept per operator; a what-if sweep over many
#: control intervals on one grid evicts the oldest timestep's
#: factorization (or preconditioner) instead of accumulating one per
#: interval forever.
_TIMESTEP_CACHE_LIMIT = 4
_OPERATORS: "OrderedDict[Tuple, ThermalOperator]" = OrderedDict()
#: Guards every lookup/insert/evict on :data:`_OPERATORS`.  Plain dict
#: reads are atomic in CPython, but the insert-then-evict sequence in
#: :meth:`ThermalOperator.for_grid` is not — two threads caching
#: distinct grids could interleave ``popitem`` with ``__setitem__`` and
#: evict a just-inserted operator (or blow past the limit).
_CACHE_LOCK = threading.Lock()

#: Relative residual tolerance of the CG fallback.  Tight enough that
#: the iterative path agrees with the sparse-direct factorization to
#: better than 1e-8 relative on the thermal systems here (the
#: equivalence bound the tests and benchmarks pin).
_CG_RTOL = 1e-12


class _IterativeSolve:
    """Preconditioned-CG drop-in for a ``factorized`` solve callable.

    Built once per system matrix (like a factorization, minus the
    fill-in): the ILU preconditioner is computed at construction and
    every :meth:`__call__` runs warm-started CG from the previous
    solution — for a transient integration that is the previous step's
    state, exactly the guess that makes each step a handful of
    iterations.  Accepts the same ``(n,)`` vector or ``(n, k)`` stack a
    direct factorization does (the stack solves column by column, so
    memory stays bounded).
    """

    def __init__(self, matrix) -> None:
        self._matrix = matrix.tocsr()
        self._size = int(self._matrix.shape[0])
        self._preconditioner = self._build_ilu()
        # Jacobi fallback: the diagonal is strictly positive (every cell
        # carries a vertical conductance) and the operator is exactly
        # symmetric, so CG is guaranteed to converge with it even when
        # the (unsymmetric) ILU stalls or cannot be built.
        inverse_diagonal = 1.0 / self._matrix.diagonal()
        self._jacobi = LinearOperator(
            (self._size, self._size), lambda x: inverse_diagonal * x
        )
        self._last_solution: Optional[np.ndarray] = None

    def _build_ilu(self) -> Optional[LinearOperator]:
        # A tight drop tolerance keeps the ILU close to symmetric (CG's
        # theory wants an SPD preconditioner); memory stays linear in
        # the unknown count — fill_factor bounds it by a multiple of
        # the five-point stencil's nonzeros, nothing like direct fill-in.
        try:
            ilu = spilu(self._matrix.tocsc(), drop_tol=1e-6, fill_factor=20.0)
            return LinearOperator((self._size, self._size), ilu.solve)
        except (RuntimeError, ValueError, MemoryError):
            return None

    def _solve_vector(self, rhs: np.ndarray) -> np.ndarray:
        solution = None
        if self._preconditioner is not None:
            solution, info = cg(
                self._matrix,
                rhs,
                x0=self._last_solution,
                rtol=_CG_RTOL,
                atol=0.0,
                maxiter=min(self._size, 1000),
                M=self._preconditioner,
            )
            if info != 0:
                solution = None
        if solution is None:
            solution, info = cg(
                self._matrix,
                rhs,
                x0=self._last_solution,
                rtol=_CG_RTOL,
                atol=0.0,
                M=self._jacobi,
            )
            if info != 0:
                raise TechnologyError(
                    f"iterative thermal solve did not converge (CG info={info}) "
                    f"on the {self._size}-unknown system"
                )
        self._last_solution = solution
        return solution

    def __call__(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        if rhs.ndim == 1:
            return self._solve_vector(rhs)
        columns = [self._solve_vector(rhs[:, k]) for k in range(rhs.shape[1])]
        return np.stack(columns, axis=1)


class ThermalStepper:
    """One backward-Euler integrator bound to a prepared system solve.

    Produced by :meth:`ThermalOperator.stepper`; advances the
    temperature *rise* vector by one timestep per :meth:`step` call.
    The implicit system ``(C/dt + G) x_{n+1} = P + C/dt x_n`` was
    prepared once when the stepper was created (factorized sparse-direct
    or ILU-preconditioned CG, per the operator's method), so each step
    is a pair of triangular solves or a warm-started Krylov solve.
    """

    def __init__(
        self,
        grid: ThermalGrid,
        timestep_s: float,
        solve: Callable[[np.ndarray], np.ndarray],
    ) -> None:
        self.grid = grid
        self.timestep_s = float(timestep_s)
        self._solve = solve
        self._capacitance_over_dt = grid.capacitance_vector / self.timestep_s

    def step(self, rise: np.ndarray, power_w: np.ndarray) -> np.ndarray:
        """Advance the flattened temperature-rise state one timestep.

        Parameters
        ----------
        rise:
            Current temperature rise above ambient, flattened to
            ``(nx * ny,)`` — or an ``(nx * ny, k)`` *stack* of states
            (one column per banked policy/workload), advanced through
            one multi-RHS solve.
        power_w:
            Power injected during the step, flattened to the same shape
            (columns broadcast against the capacitance vector).
        """
        rise = np.asarray(rise, dtype=float)
        power = np.asarray(power_w, dtype=float)
        if rise.ndim == 2:
            rhs = power + self._capacitance_over_dt[:, np.newaxis] * rise
        else:
            rhs = power + self._capacitance_over_dt * rise
        return self._solve(rhs)


class ThermalOperator:
    """Cached solver (direct factorizations or CG) for one thermal grid.

    Parameters
    ----------
    grid:
        The thermal RC network.
    method:
        One of :data:`SOLVE_METHODS`.  ``auto`` (the default) picks
        sparse-direct factorization up to
        :attr:`iterative_threshold` unknowns and the preconditioned-CG
        fallback above it; ``direct``/``iterative`` force the choice.
    """

    #: Unknown count above which ``method="auto"`` routes solves through
    #: preconditioned CG instead of sparse-direct factorization.  A
    #: class attribute so deployments with more (or less) memory can
    #: retune it: ``ThermalOperator.iterative_threshold = ...``.
    iterative_threshold: int = 4096

    def __init__(self, grid: ThermalGrid, method: str = "auto") -> None:
        self.grid = grid
        self.method = self._resolve_method(grid, method)
        self._steady_solve: Optional[Callable[[np.ndarray], np.ndarray]] = None
        self._transient_solves: "OrderedDict[float, Callable[[np.ndarray], np.ndarray]]" = (
            OrderedDict()
        )
        # Guards the lazy factorization caches above: two threads asking
        # a shared operator for the same solve must not factorize twice
        # (wasted work) or interleave the stepper cache's insert/evict.
        self._solve_lock = threading.Lock()

    @classmethod
    def _resolve_method(cls, grid: ThermalGrid, method: str) -> str:
        if method not in SOLVE_METHODS:
            raise TechnologyError(
                f"unknown solve method {method!r}; choose one of {SOLVE_METHODS}"
            )
        if method != "auto":
            return method
        if grid.nx * grid.ny > cls.iterative_threshold:
            return "iterative"
        return "direct"

    def _prepare(self, matrix) -> Callable[[np.ndarray], np.ndarray]:
        """A solve callable for one SPD system, per the chosen method."""
        if self.method == "iterative":
            return _IterativeSolve(matrix)
        return factorized(matrix.tocsc())

    # ------------------------------------------------------------------ #
    # the process-wide cache
    # ------------------------------------------------------------------ #

    @classmethod
    def _cache_key(cls, grid: ThermalGrid, method: str = "auto") -> Tuple:
        """The matrix-defining fingerprint of a grid (plus solve method).

        Two grids with equal geometry and physical parameters build
        bit-identical conductance/capacitance matrices, so they may
        share one operator (and therefore one factorization).  The
        *resolved* method joins the key so an explicit
        ``method="iterative"`` request does not hand back a cached
        direct operator (or vice versa).
        """
        return (
            grid.width_mm,
            grid.height_mm,
            grid.nx,
            grid.ny,
            grid.parameters,
            cls._resolve_method(grid, method),
        )

    @classmethod
    def for_grid(cls, grid: ThermalGrid, method: str = "auto") -> "ThermalOperator":
        """The shared operator of a grid (cached process-wide, thread-safe).

        The cache is per process: a forked/spawned sweep worker warms
        its own (see the module docstring) — never pickle an operator
        across a process boundary, re-request it from the grid instead.
        """
        key = cls._cache_key(grid, method)
        with _CACHE_LOCK:
            operator = _OPERATORS.get(key)
            if operator is None:
                operator = cls(grid, method)
                _OPERATORS[key] = operator
                while len(_OPERATORS) > _CACHE_LIMIT:
                    _OPERATORS.popitem(last=False)
        return operator

    @classmethod
    def clear_cache(cls) -> None:
        """Drop every cached operator (test isolation / memory pressure)."""
        with _CACHE_LOCK:
            _OPERATORS.clear()

    @classmethod
    def cache_size(cls) -> int:
        with _CACHE_LOCK:
            return len(_OPERATORS)

    # ------------------------------------------------------------------ #
    # steady state
    # ------------------------------------------------------------------ #

    def steady_solve(self) -> Callable[[np.ndarray], np.ndarray]:
        """The prepared steady-state solve ``x = G \\ rhs`` (cached)."""
        with self._solve_lock:
            if self._steady_solve is None:
                self._steady_solve = self._prepare(self.grid.conductance_matrix)
            return self._steady_solve

    def steady_rise(self, power_w: np.ndarray) -> np.ndarray:
        """Temperature rise for one or many flattened power vectors.

        ``power_w`` may be a single ``(n,)`` vector or an ``(n, k)``
        stack of right-hand sides; the direct path applies the
        factorization to the whole stack in one multi-RHS solve, the
        iterative path runs warm-started CG column by column.
        """
        rhs = np.asarray(power_w, dtype=float)
        size = self.grid.nx * self.grid.ny
        if rhs.shape[0] != size:
            raise TechnologyError(
                f"right-hand side has {rhs.shape[0]} rows, expected {size} "
                f"for the {self.grid.ny}x{self.grid.nx} grid"
            )
        return self.steady_solve()(rhs)

    def solve_steady_state(
        self, power: PowerMap, ambient_c: float = 45.0
    ) -> TemperatureMap:
        """Steady-state temperature map of one power map (``G \\ P``)."""
        self.grid.check_power_map(power)
        rise = self.steady_rise(power.values_w.reshape(-1))
        values = rise.reshape((self.grid.ny, self.grid.nx)) + ambient_c
        return TemperatureMap(self.grid.width_mm, self.grid.height_mm, values)

    def solve_steady_state_multi(
        self, powers: Sequence[PowerMap], ambient_c: float = 45.0
    ) -> List[TemperatureMap]:
        """Steady-state maps of several power maps in one multi-RHS solve.

        All power maps must match the grid; the stacked ``(n, k)``
        right-hand side goes through the prepared solve once, replacing
        ``k`` independent ``spsolve`` calls (each of which used to
        re-factorize the same matrix).
        """
        maps = list(powers)
        if not maps:
            raise TechnologyError("solve_steady_state_multi needs at least one power map")
        for power in maps:
            self.grid.check_power_map(power)
        stack = np.stack([power.values_w.reshape(-1) for power in maps], axis=1)
        rises = self.steady_rise(stack)
        return [
            TemperatureMap(
                self.grid.width_mm,
                self.grid.height_mm,
                rises[:, k].reshape((self.grid.ny, self.grid.nx)) + ambient_c,
            )
            for k in range(len(maps))
        ]

    # ------------------------------------------------------------------ #
    # transient stepping
    # ------------------------------------------------------------------ #

    def stepper(self, timestep_s: float) -> ThermalStepper:
        """A backward-Euler stepper for this grid at a timestep (cached).

        The ``(C/dt + G)`` solve is keyed by the timestep, so every
        transient run with the same step — every control interval of a
        DTM simulation, every repeat of a study — shares it.
        """
        if timestep_s <= 0.0:
            raise TechnologyError("timestep must be positive")
        dt = float(timestep_s)
        with self._solve_lock:
            solve = self._transient_solves.get(dt)
            if solve is None:
                system = (
                    diags(self.grid.capacitance_vector / dt)
                    + self.grid.conductance_matrix
                )
                solve = self._prepare(system)
                self._transient_solves[dt] = solve
                while len(self._transient_solves) > _TIMESTEP_CACHE_LIMIT:
                    self._transient_solves.popitem(last=False)
            else:
                self._transient_solves.move_to_end(dt)
        return ThermalStepper(self.grid, dt, solve)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThermalOperator({self.grid.ny}x{self.grid.nx}, {self.method}, "
            f"steady={'cached' if self._steady_solve is not None else 'cold'}, "
            f"timesteps={sorted(self._transient_solves)})"
        )
