"""Cached sparse-direct thermal solves: one factorization, many uses.

Before this module the repository factorized the thermal system in three
independent places — the steady-state solver called
:func:`scipy.sparse.linalg.spsolve` (an implicit factorization) on every
call, and :func:`repro.thermal.solver.solve_transient` and
:meth:`repro.core.thermal_manager.DynamicThermalManager.run` each built
their own ``factorized(C/dt + G)`` backward-Euler system per run.  Every
repeated workload (a thermal-mapping scan per control step, the
self-heating duty-cycle sweep, the managed-versus-unmanaged DTM pair)
therefore paid the symbolic + numeric factorization again for a matrix
that had not changed.

:class:`ThermalOperator` owns those factorizations instead:

* the steady-state factorization of the conductance matrix ``G`` is
  computed once per grid and solves any number of right-hand sides,
  including an ``(n, k)`` *stack* of power maps in one multi-RHS
  triangular solve (``G \\ P``),
* the backward-Euler system ``(C/dt + G)`` is factorized once per
  (grid, timestep) pair and handed out as a :class:`ThermalStepper`,
  so every transient integration with the same step reuses it, and
* operators are cached process-wide, keyed by the grid's *defining*
  geometry and physical parameters (two :class:`ThermalGrid` instances
  built from the same floorplan resolution produce identical matrices,
  so they share one operator) — which is what lets the managed and
  unmanaged DTM runs, and every thermal-map scan of a monitor, share a
  single factorization.

The solvers in :mod:`repro.thermal.solver`, the self-heating study and
the DTM manager are all thin layers over this class; ``factorized`` is
called nowhere else in the repository.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import diags
from scipy.sparse.linalg import factorized

from ..tech.parameters import TechnologyError
from .grid import TemperatureMap, ThermalGrid, ThermalGridParameters
from .power import PowerMap

__all__ = ["ThermalOperator", "ThermalStepper"]

#: Process-wide operator cache.  Bounded so a long-running sweep over
#: many distinct grid geometries cannot grow it without limit; the
#: eviction order is insertion order (oldest grid first), which matches
#: the workloads here (a study works one grid at a time).
_CACHE_LIMIT = 8
#: Backward-Euler factorizations kept per operator; a what-if sweep over
#: many control intervals on one grid evicts the oldest timestep's
#: factorization instead of accumulating one per interval forever.
_TIMESTEP_CACHE_LIMIT = 4
_OPERATORS: "OrderedDict[Tuple, ThermalOperator]" = OrderedDict()


class ThermalStepper:
    """One backward-Euler integrator bound to a factorized system.

    Produced by :meth:`ThermalOperator.stepper`; advances the
    temperature *rise* vector by one timestep per :meth:`step` call.
    The implicit system ``(C/dt + G) x_{n+1} = P + C/dt x_n`` was
    factorized once when the stepper was created, so each step is a
    pair of triangular solves.
    """

    def __init__(
        self,
        grid: ThermalGrid,
        timestep_s: float,
        solve: Callable[[np.ndarray], np.ndarray],
    ) -> None:
        self.grid = grid
        self.timestep_s = float(timestep_s)
        self._solve = solve
        self._capacitance_over_dt = grid.capacitance_vector / self.timestep_s

    def step(self, rise: np.ndarray, power_w: np.ndarray) -> np.ndarray:
        """Advance the flattened temperature-rise vector one timestep.

        Parameters
        ----------
        rise:
            Current temperature rise above ambient, flattened to
            ``(nx * ny,)``.
        power_w:
            Power injected during the step, flattened to the same shape.
        """
        rhs = power_w + self._capacitance_over_dt * rise
        return self._solve(rhs)


class ThermalOperator:
    """Factorization cache and multi-RHS solver for one thermal grid."""

    def __init__(self, grid: ThermalGrid) -> None:
        self.grid = grid
        self._steady_solve: Optional[Callable[[np.ndarray], np.ndarray]] = None
        self._transient_solves: "OrderedDict[float, Callable[[np.ndarray], np.ndarray]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------ #
    # the process-wide cache
    # ------------------------------------------------------------------ #

    @staticmethod
    def _cache_key(grid: ThermalGrid) -> Tuple:
        """The matrix-defining fingerprint of a grid.

        Two grids with equal geometry and physical parameters build
        bit-identical conductance/capacitance matrices, so they may
        share one operator (and therefore one factorization).
        """
        return (
            grid.width_mm,
            grid.height_mm,
            grid.nx,
            grid.ny,
            grid.parameters,
        )

    @classmethod
    def for_grid(cls, grid: ThermalGrid) -> "ThermalOperator":
        """The shared operator of a grid (cached process-wide)."""
        key = cls._cache_key(grid)
        operator = _OPERATORS.get(key)
        if operator is None:
            operator = cls(grid)
            _OPERATORS[key] = operator
            while len(_OPERATORS) > _CACHE_LIMIT:
                _OPERATORS.popitem(last=False)
        return operator

    @classmethod
    def clear_cache(cls) -> None:
        """Drop every cached operator (test isolation / memory pressure)."""
        _OPERATORS.clear()

    @classmethod
    def cache_size(cls) -> int:
        return len(_OPERATORS)

    # ------------------------------------------------------------------ #
    # steady state
    # ------------------------------------------------------------------ #

    def steady_solve(self) -> Callable[[np.ndarray], np.ndarray]:
        """The factorized steady-state solve ``x = G \\ rhs`` (cached)."""
        if self._steady_solve is None:
            self._steady_solve = factorized(self.grid.conductance_matrix.tocsc())
        return self._steady_solve

    def steady_rise(self, power_w: np.ndarray) -> np.ndarray:
        """Temperature rise for one or many flattened power vectors.

        ``power_w`` may be a single ``(n,)`` vector or an ``(n, k)``
        stack of right-hand sides; the factorization is applied to the
        whole stack in one multi-RHS solve.
        """
        rhs = np.asarray(power_w, dtype=float)
        size = self.grid.nx * self.grid.ny
        if rhs.shape[0] != size:
            raise TechnologyError(
                f"right-hand side has {rhs.shape[0]} rows, expected {size} "
                f"for the {self.grid.ny}x{self.grid.nx} grid"
            )
        return self.steady_solve()(rhs)

    def solve_steady_state(
        self, power: PowerMap, ambient_c: float = 45.0
    ) -> TemperatureMap:
        """Steady-state temperature map of one power map (``G \\ P``)."""
        self.grid.check_power_map(power)
        rise = self.steady_rise(power.values_w.reshape(-1))
        values = rise.reshape((self.grid.ny, self.grid.nx)) + ambient_c
        return TemperatureMap(self.grid.width_mm, self.grid.height_mm, values)

    def solve_steady_state_multi(
        self, powers: Sequence[PowerMap], ambient_c: float = 45.0
    ) -> List[TemperatureMap]:
        """Steady-state maps of several power maps in one multi-RHS solve.

        All power maps must match the grid; the stacked ``(n, k)``
        right-hand side goes through the factorization once, replacing
        ``k`` independent ``spsolve`` calls (each of which used to
        re-factorize the same matrix).
        """
        maps = list(powers)
        if not maps:
            raise TechnologyError("solve_steady_state_multi needs at least one power map")
        for power in maps:
            self.grid.check_power_map(power)
        stack = np.stack([power.values_w.reshape(-1) for power in maps], axis=1)
        rises = self.steady_rise(stack)
        return [
            TemperatureMap(
                self.grid.width_mm,
                self.grid.height_mm,
                rises[:, k].reshape((self.grid.ny, self.grid.nx)) + ambient_c,
            )
            for k in range(len(maps))
        ]

    # ------------------------------------------------------------------ #
    # transient stepping
    # ------------------------------------------------------------------ #

    def stepper(self, timestep_s: float) -> ThermalStepper:
        """A backward-Euler stepper for this grid at a timestep (cached).

        The ``(C/dt + G)`` factorization is keyed by the timestep, so
        every transient run with the same step — every control interval
        of a DTM simulation, every repeat of a study — shares it.
        """
        if timestep_s <= 0.0:
            raise TechnologyError("timestep must be positive")
        dt = float(timestep_s)
        solve = self._transient_solves.get(dt)
        if solve is None:
            system = (
                diags(self.grid.capacitance_vector / dt)
                + self.grid.conductance_matrix
            ).tocsc()
            solve = factorized(system)
            self._transient_solves[dt] = solve
            while len(self._transient_solves) > _TIMESTEP_CACHE_LIMIT:
                self._transient_solves.popitem(last=False)
        else:
            self._transient_solves.move_to_end(dt)
        return ThermalStepper(self.grid, dt, solve)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThermalOperator({self.grid.ny}x{self.grid.nx}, "
            f"steady={'cached' if self._steady_solve is not None else 'cold'}, "
            f"timesteps={sorted(self._transient_solves)})"
        )
