"""Geometric multigrid V-cycle preconditioner for the thermal grids.

The thermal systems this repository solves — the steady conductance
matrix ``G`` and the backward-Euler matrix ``C/dt + G`` of a
:class:`~repro.thermal.grid.ThermalGrid` — are symmetric positive
definite five-point stencils on a structured cell-centred grid: the
textbook geometric-multigrid case.  The ILU-CG fallback from the
previous iteration treats them as generic sparse matrices, so its
iteration count (and its setup cost) grows with the grid; a multigrid
preconditioner is *grid-aware* and keeps both essentially constant per
unknown, which is what makes full-die resolutions (256x256, 512x512,
unsteady) as cheap per cell as the small grids.

:class:`GeometricMultigrid` builds the standard hierarchy:

* **prolongation** is bilinear interpolation between cell centres,
  assembled once per level as a sparse Kronecker product of two 1-D
  interpolation matrices (the same arithmetic as
  :func:`repro.thermal.grid.bilinear_sample`, in matrix form),
* **restriction** is its transpose (full weighting up to scale),
* **coarse operators** are Galerkin products ``A_c = P^T A P`` — built
  from the fine matrix itself, so the same hierarchy serves ``G`` and
  every ``C/dt + G`` shift without re-discretising,
* **smoothing** is damped Jacobi (``omega = 0.8``), one sweep before
  and one after each coarse-grid correction, and
* the coarsest level (at or below :data:`COARSE_DIRECT_UNKNOWNS`
  unknowns) is solved exactly with a sparse-direct factorization.

Symmetry and positive definiteness
----------------------------------

Conjugate gradients requires an SPD preconditioner.  A V-cycle with a
symmetric smoother applied in equal pre-/post-counts, transpose-paired
transfer operators and Galerkin coarse operators is symmetric by
construction; it is positive definite whenever the smoother is
convergent in the ``A``-norm.  Damped Jacobi with ``omega < 1``
converges on these matrices because they are strictly diagonally
dominant (every cell carries a positive vertical conductance on top of
its lateral edges), which bounds the spectrum of ``D^{-1} A`` by 2.
``tests/test_thermal_multigrid.py`` property-checks both facts on
randomly sized grids.

Every operation in the cycle — Jacobi sweeps, residuals, restriction,
prolongation, the coarse direct solve — is a sparse-matrix product
against a dense ``(n, k)`` block, so one V-cycle preconditions a whole
stack of right-hand sides at once; this is what keeps the batched
block-CG path of :class:`repro.thermal.operator.ThermalOperator` at one
hierarchy traversal per iteration regardless of how many policies or
power maps ride in the stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import factorized

from ..tech.parameters import TechnologyError

__all__ = [
    "COARSE_DIRECT_UNKNOWNS",
    "GeometricMultigrid",
    "prolongation_1d",
    "prolongation_matrix",
]

#: Unknown count at (or below) which a level is solved sparse-direct
#: instead of coarsening further.  Small enough that the factorization
#: is trivial, large enough that the hierarchy stays shallow.
COARSE_DIRECT_UNKNOWNS = 1024

#: Damping factor of the Jacobi smoother.  For diagonally dominant
#: five-point stencils the spectrum of ``D^{-1} A`` lies in ``(0, 2)``,
#: so any ``omega < 1`` yields a convergent (hence SPD-preserving)
#: smoother; 0.8 is the classical choice that also damps the
#: oscillatory error modes the coarse grid cannot see.
JACOBI_DAMPING = 0.8


def prolongation_1d(fine: int, coarse: int) -> sparse.csr_matrix:
    """1-D linear cell-centre interpolation matrix (``fine x coarse``).

    Maps values at ``coarse`` cell centres onto ``fine`` cell centres of
    the same interval, clamping beyond the outermost coarse centres —
    the 1-D factor of the bilinear prolongation, with the same
    clamped-endpoint convention as
    :func:`repro.thermal.grid.bilinear_sample`.
    """
    if fine < 2 or coarse < 2:
        raise TechnologyError("prolongation needs at least two cells per level")
    if coarse > fine:
        raise TechnologyError("coarse level cannot be finer than the fine level")
    centres = (np.arange(fine) + 0.5) / fine          # fine centres in [0, 1]
    positions = centres * coarse - 0.5                # in coarse-cell units
    lower = np.clip(np.floor(positions), 0, coarse - 2).astype(int)
    weight = np.clip(positions - lower, 0.0, 1.0)
    rows = np.repeat(np.arange(fine), 2)
    cols = np.stack([lower, lower + 1], axis=1).ravel()
    data = np.stack([1.0 - weight, weight], axis=1).ravel()
    return sparse.coo_matrix((data, (rows, cols)), shape=(fine, coarse)).tocsr()


def prolongation_matrix(
    fine_shape: Tuple[int, int], coarse_shape: Tuple[int, int]
) -> sparse.csr_matrix:
    """Bilinear prolongation between two cell-centred grids.

    ``fine_shape`` / ``coarse_shape`` are ``(ny, nx)`` pairs; the
    returned matrix maps row-major flattened coarse fields to row-major
    flattened fine fields (the Kronecker product of the two 1-D
    factors, matching ``index = row * nx + column``).
    """
    fine_ny, fine_nx = fine_shape
    coarse_ny, coarse_nx = coarse_shape
    return sparse.kron(
        prolongation_1d(fine_ny, coarse_ny),
        prolongation_1d(fine_nx, coarse_nx),
        format="csr",
    )


def _coarsen_extent(cells: int) -> int:
    """Next-coarser 1-D extent (halved, floored at two cells)."""
    return max(2, (cells + 1) // 2)


@dataclass(frozen=True)
class _Level:
    """One level of the hierarchy: operator, smoother data, transfers."""

    matrix: sparse.csr_matrix
    #: ``omega / diag(A)`` as an ``(n, 1)`` column, ready to broadcast
    #: against an ``(n, k)`` residual block.
    damped_inverse_diagonal: np.ndarray
    #: Prolongation from the next-coarser level (None on the coarsest).
    prolongation: Optional[sparse.csr_matrix]


class GeometricMultigrid:
    """One V-cycle of geometric multigrid, packaged as a preconditioner.

    Parameters
    ----------
    matrix:
        The fine-level SPD system (``G`` or ``C/dt + G``); any scipy
        sparse format, converted to CSR.
    shape:
        The fine grid's ``(ny, nx)``; the row-major flattening of the
        matrix must match (``ny * nx`` unknowns).
    pre_smooth / post_smooth:
        Damped-Jacobi sweeps before/after the coarse-grid correction.
        Symmetry of the preconditioner requires ``pre == post`` (the
        constructor enforces it).
    """

    def __init__(
        self,
        matrix,
        shape: Tuple[int, int],
        pre_smooth: int = 1,
        post_smooth: int = 1,
    ) -> None:
        ny, nx = int(shape[0]), int(shape[1])
        matrix = sparse.csr_matrix(matrix)
        if matrix.shape != (ny * nx, ny * nx):
            raise TechnologyError(
                f"matrix of shape {matrix.shape} does not match the "
                f"{ny}x{nx} grid ({ny * nx} unknowns)"
            )
        if pre_smooth != post_smooth or pre_smooth < 1:
            raise TechnologyError(
                "pre- and post-smoothing counts must be equal and >= 1 "
                "(the V-cycle is only a symmetric preconditioner then)"
            )
        self.shape = (ny, nx)
        self.smooth_sweeps = int(pre_smooth)
        self._levels: List[_Level] = []

        level_shape = (ny, nx)
        level_matrix = matrix
        while (
            level_shape[0] * level_shape[1] > COARSE_DIRECT_UNKNOWNS
            and min(level_shape) > 2
        ):
            coarse_shape = (
                _coarsen_extent(level_shape[0]),
                _coarsen_extent(level_shape[1]),
            )
            prolong = prolongation_matrix(level_shape, coarse_shape)
            self._levels.append(
                _Level(
                    matrix=level_matrix,
                    damped_inverse_diagonal=(
                        JACOBI_DAMPING / level_matrix.diagonal()
                    )[:, np.newaxis],
                    prolongation=prolong,
                )
            )
            # Galerkin coarse operator: SPD by construction, and valid
            # for any SPD fine matrix (so the same code serves every
            # backward-Euler shift without re-discretising the grid).
            level_matrix = (prolong.T @ level_matrix @ prolong).tocsr()
            level_shape = coarse_shape
        self._levels.append(
            _Level(
                matrix=level_matrix,
                damped_inverse_diagonal=(
                    JACOBI_DAMPING / level_matrix.diagonal()
                )[:, np.newaxis],
                prolongation=None,
            )
        )
        self._coarse_solve = factorized(level_matrix.tocsc())

    @property
    def level_count(self) -> int:
        return len(self._levels)

    @property
    def coarse_unknowns(self) -> int:
        return int(self._levels[-1].matrix.shape[0])

    def _smooth(
        self, level: _Level, solution: np.ndarray, rhs: np.ndarray
    ) -> np.ndarray:
        """``sweeps`` damped-Jacobi iterations on one level (batched).

        Updates ``solution`` in place; the only allocation per sweep is
        the sparse product's output, which is immediately reused as the
        residual buffer (a V-cycle application sits on the hot path of
        every block-CG iteration, so temporary ``(n, k)`` arrays are
        worth avoiding).
        """
        for _ in range(self.smooth_sweeps):
            self._smooth_once(level, solution, rhs)
        return solution

    def _cycle(self, depth: int, rhs: np.ndarray) -> np.ndarray:
        """One V-cycle at ``depth`` with a zero initial guess."""
        level = self._levels[depth]
        if level.prolongation is None:
            return self._coarse_solve(rhs)
        # Pre-smooth: the first sweep from a zero guess collapses to a
        # diagonal scaling of the RHS, then the general form.
        solution = level.damped_inverse_diagonal * rhs
        for _ in range(self.smooth_sweeps - 1):
            self._smooth_once(level, solution, rhs)
        residual = level.matrix @ solution
        np.subtract(rhs, residual, out=residual)
        correction = self._cycle(depth + 1, level.prolongation.T @ residual)
        solution += level.prolongation @ correction
        return self._smooth(level, solution, rhs)

    def _smooth_once(
        self, level: _Level, solution: np.ndarray, rhs: np.ndarray
    ) -> None:
        update = level.matrix @ solution
        np.subtract(rhs, update, out=update)
        update *= level.damped_inverse_diagonal
        solution += update

    def __call__(self, rhs: np.ndarray) -> np.ndarray:
        """Apply one V-cycle to an ``(n,)`` vector or ``(n, k)`` stack.

        The application is a fixed linear operation (no convergence
        test, no data-dependent branching), which is what CG's theory
        requires of a preconditioner.
        """
        rhs = np.asarray(rhs, dtype=float)
        single = rhs.ndim == 1
        block = rhs[:, np.newaxis] if single else rhs
        result = self._cycle(0, block)
        return result[:, 0] if single else result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extents = " -> ".join(
            f"{lvl.matrix.shape[0]}" for lvl in self._levels
        )
        return f"GeometricMultigrid({self.shape[0]}x{self.shape[1]}: {extents})"
