"""Equivalent RC network of the die (compact thermal model).

The junction temperature the ring-oscillator sensor reads is set by the
power map and the die's heat-spreading behaviour.  The standard compact
model — the thermal analogue of an electrical RC network — is used:

* the die is discretised into the same grid as the power map,
* each cell has a *vertical* thermal conductance to the ambient
  (representing the die, die-attach, package and heatsink path),
* adjacent cells are connected by *lateral* conductances through the
  silicon, which is what spreads hotspots, and
* each cell has a heat capacity, giving the transient time constants
  needed by the self-heating and duty-cycling studies.

The defaults correspond to a package with a forced-air heatsink
(junction-to-ambient around 4 K/W for an 8x8 mm die), representative of
the 10-15 W processors of the 0.35 um era the paper targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import sparse

from ..tech.parameters import TechnologyError
from .power import PowerMap

__all__ = ["ThermalGridParameters", "ThermalGrid", "TemperatureMap", "bilinear_sample"]


def bilinear_sample(values, width_mm: float, height_mm: float, xs_mm, ys_mm) -> np.ndarray:
    """Bilinear gather of die points from one or many temperature fields.

    ``values`` is an ``(..., ny, nx)`` stack of fields on the same die;
    ``xs_mm`` / ``ys_mm`` are point coordinate arrays of a common shape
    ``pts``.  Returns an ``(..., *pts)`` array of interpolated values —
    the arithmetic is exactly :meth:`TemperatureMap.sample_points`
    applied per field, which lets the banked DTM loop read every
    policy's sensor sites from its own field in one gather while
    bit-matching the scalar path.
    """
    values = np.asarray(values, dtype=float)
    xs = np.asarray(xs_mm, dtype=float)
    ys = np.asarray(ys_mm, dtype=float)
    if values.ndim < 2:
        raise TechnologyError("field stack must carry trailing (ny, nx) dimensions")
    if xs.shape != ys.shape:
        raise TechnologyError("x and y coordinate arrays must match in shape")
    if np.any(xs < 0.0) or np.any(xs > width_mm) or np.any(
        ys < 0.0
    ) or np.any(ys > height_mm):
        raise TechnologyError("a sample point lies outside the die")
    ny, nx = values.shape[-2], values.shape[-1]
    # Continuous cell-centre coordinates.
    cell_w = width_mm / nx
    cell_h = height_mm / ny
    fx = xs / cell_w - 0.5
    fy = ys / cell_h - 0.5
    x0 = np.clip(np.floor(fx), 0, nx - 2).astype(int)
    y0 = np.clip(np.floor(fy), 0, ny - 2).astype(int)
    tx = np.clip(fx - x0, 0.0, 1.0)
    ty = np.clip(fy - y0, 0.0, 1.0)
    v00 = values[..., y0, x0]
    v01 = values[..., y0, x0 + 1]
    v10 = values[..., y0 + 1, x0]
    v11 = values[..., y0 + 1, x0 + 1]
    return (
        v00 * (1 - tx) * (1 - ty)
        + v01 * tx * (1 - ty)
        + v10 * (1 - tx) * ty
        + v11 * tx * ty
    )


@dataclass(frozen=True)
class ThermalGridParameters:
    """Physical parameters of the compact thermal model.

    Attributes
    ----------
    die_thickness_mm:
        Silicon thickness available for lateral spreading.
    silicon_conductivity_w_per_mk:
        Thermal conductivity of silicon (~150 W/m/K at room temperature).
    package_resistance_k_mm2_per_w:
        Area-specific junction-to-ambient resistance.  The whole-die
        junction-to-ambient resistance is this value divided by the die
        area; 250 K.mm^2/W over an 8x8 mm die gives ~3.9 K/W, typical for
        a forced-air heatsink on a 10-15 W processor of the 0.35 um era.
    volumetric_heat_capacity_j_per_mm3k:
        Volumetric heat capacity of silicon (1.63e-3 J/mm^3/K).
    """

    die_thickness_mm: float = 0.5
    silicon_conductivity_w_per_mk: float = 150.0
    package_resistance_k_mm2_per_w: float = 250.0
    volumetric_heat_capacity_j_per_mm3k: float = 1.63e-3

    def __post_init__(self) -> None:
        if self.die_thickness_mm <= 0.0:
            raise TechnologyError("die thickness must be positive")
        if self.silicon_conductivity_w_per_mk <= 0.0:
            raise TechnologyError("silicon conductivity must be positive")
        if self.package_resistance_k_mm2_per_w <= 0.0:
            raise TechnologyError("package resistance must be positive")
        if self.volumetric_heat_capacity_j_per_mm3k <= 0.0:
            raise TechnologyError("heat capacity must be positive")


@dataclass(frozen=True)
class TemperatureMap:
    """Temperatures (deg C) on the thermal grid."""

    width_mm: float
    height_mm: float
    values_c: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values_c, dtype=float)
        if values.ndim != 2:
            raise TechnologyError("temperature map must be two-dimensional")
        object.__setattr__(self, "values_c", values)

    @property
    def nx(self) -> int:
        return int(self.values_c.shape[1])

    @property
    def ny(self) -> int:
        return int(self.values_c.shape[0])

    def max_c(self) -> float:
        return float(np.max(self.values_c))

    def min_c(self) -> float:
        return float(np.min(self.values_c))

    def mean_c(self) -> float:
        return float(np.mean(self.values_c))

    def gradient_c(self) -> float:
        """Largest on-die temperature difference."""
        return self.max_c() - self.min_c()

    def sample(self, x_mm: float, y_mm: float) -> float:
        """Bilinearly interpolated temperature at a point on the die."""
        if not (0.0 <= x_mm <= self.width_mm and 0.0 <= y_mm <= self.height_mm):
            raise TechnologyError(f"point ({x_mm}, {y_mm}) mm lies outside the die")
        return float(self.sample_points(x_mm, y_mm))

    def sample_points(self, xs_mm, ys_mm) -> np.ndarray:
        """Vectorized bilinear interpolation over arrays of die coordinates.

        One gather for the whole point set — the form the sensor-bank
        scan uses to read every site's junction temperature from a
        solved field at once.  The scalar :meth:`sample` is this with a
        zero-dimensional point.
        """
        return bilinear_sample(self.values_c, self.width_mm, self.height_mm, xs_mm, ys_mm)

    def hotspot_location(self) -> Tuple[float, float]:
        """(x, y) millimetre coordinates of the hottest cell centre."""
        row, column = np.unravel_index(int(np.argmax(self.values_c)), self.values_c.shape)
        cell_w = self.width_mm / self.nx
        cell_h = self.height_mm / self.ny
        return ((column + 0.5) * cell_w, (row + 0.5) * cell_h)


class ThermalGrid:
    """Discretised thermal RC network matching a power map's grid.

    Parameters
    ----------
    width_mm / height_mm:
        Die dimensions.
    nx / ny:
        Grid resolution (must match the power maps used with it).
    parameters:
        Physical parameters of the compact model.
    """

    def __init__(
        self,
        width_mm: float,
        height_mm: float,
        nx: int,
        ny: int,
        parameters: ThermalGridParameters = ThermalGridParameters(),
    ) -> None:
        if nx < 2 or ny < 2:
            raise TechnologyError("thermal grid needs at least a 2x2 resolution")
        if width_mm <= 0.0 or height_mm <= 0.0:
            raise TechnologyError("die dimensions must be positive")
        self.width_mm = float(width_mm)
        self.height_mm = float(height_mm)
        self.nx = int(nx)
        self.ny = int(ny)
        self.parameters = parameters
        self._conductance = self._build_conductance_matrix()
        self._capacitance = self._build_capacitance_vector()

    @classmethod
    def for_power_map(
        cls, power: PowerMap, parameters: ThermalGridParameters = ThermalGridParameters()
    ) -> "ThermalGrid":
        """Build a grid matching a power map's geometry and resolution."""
        return cls(power.width_mm, power.height_mm, power.nx, power.ny, parameters)

    # ------------------------------------------------------------------ #
    # matrix construction
    # ------------------------------------------------------------------ #

    def _index(self, column: int, row: int) -> int:
        return row * self.nx + column

    @property
    def cell_width_mm(self) -> float:
        return self.width_mm / self.nx

    @property
    def cell_height_mm(self) -> float:
        return self.height_mm / self.ny

    @property
    def cell_area_mm2(self) -> float:
        return self.cell_width_mm * self.cell_height_mm

    def vertical_conductance_w_per_k(self) -> float:
        """Cell-to-ambient conductance through the package path."""
        return self.cell_area_mm2 / self.parameters.package_resistance_k_mm2_per_w

    def lateral_conductance_w_per_k(self, horizontal: bool) -> float:
        """Cell-to-neighbour conductance through the silicon."""
        k_si = self.parameters.silicon_conductivity_w_per_mk / 1000.0  # W/mm/K
        thickness = self.parameters.die_thickness_mm
        if horizontal:
            cross_section = self.cell_height_mm * thickness
            length = self.cell_width_mm
        else:
            cross_section = self.cell_width_mm * thickness
            length = self.cell_height_mm
        return k_si * cross_section / length

    def cell_heat_capacity_j_per_k(self) -> float:
        """Heat capacity of one grid cell."""
        volume = self.cell_area_mm2 * self.parameters.die_thickness_mm
        return volume * self.parameters.volumetric_heat_capacity_j_per_mm3k

    def _build_conductance_matrix(self) -> sparse.csr_matrix:
        """Vectorized COO assembly of the five-point stencil.

        Replaces a per-cell ``lil_matrix`` loop whose Python overhead
        dominated large-grid construction (seconds at 256x256, minutes
        at 512x512 — exactly the full-die resolutions the multigrid
        solve path exists for).  Each diagonal term is accumulated in
        the same order the loop used (below-neighbour, left-neighbour,
        vertical, right-neighbour, above-neighbour), so the assembled
        matrix is bit-identical to the historical one.
        """
        nx, ny = self.nx, self.ny
        size = nx * ny
        g_vertical = self.vertical_conductance_w_per_k()
        g_h = self.lateral_conductance_w_per_k(horizontal=True)
        g_v = self.lateral_conductance_w_per_k(horizontal=False)
        index = np.arange(size).reshape(ny, nx)

        diagonal = np.zeros((ny, nx))
        diagonal[1:, :] += g_v       # edge to the cell below
        diagonal[:, 1:] += g_h       # edge to the cell on the left
        diagonal += g_vertical       # package path to ambient
        diagonal[:, :-1] += g_h      # edge to the cell on the right
        diagonal[:-1, :] += g_v      # edge to the cell above

        left = index[:, :-1].ravel()
        right = index[:, 1:].ravel()
        below = index[:-1, :].ravel()
        above = index[1:, :].ravel()
        rows = np.concatenate([index.ravel(), left, right, below, above])
        cols = np.concatenate([index.ravel(), right, left, above, below])
        data = np.concatenate(
            [
                diagonal.ravel(),
                np.full(left.size, -g_h),
                np.full(right.size, -g_h),
                np.full(below.size, -g_v),
                np.full(above.size, -g_v),
            ]
        )
        return sparse.coo_matrix((data, (rows, cols)), shape=(size, size)).tocsr()

    def _build_capacitance_vector(self) -> np.ndarray:
        return np.full(self.nx * self.ny, self.cell_heat_capacity_j_per_k())

    # ------------------------------------------------------------------ #
    # access used by the solver
    # ------------------------------------------------------------------ #

    @property
    def conductance_matrix(self) -> sparse.csr_matrix:
        """Sparse conductance matrix G such that ``G * dT = P``."""
        return self._conductance

    @property
    def capacitance_vector(self) -> np.ndarray:
        """Per-cell heat capacities (J/K)."""
        return self._capacitance

    def junction_to_ambient_resistance_k_per_w(self) -> float:
        """Effective whole-die junction-to-ambient resistance.

        Computed for uniform power injection; a quick sanity figure for
        comparing the model against package datasheet values.
        """
        total_vertical = self.vertical_conductance_w_per_k() * self.nx * self.ny
        return 1.0 / total_vertical

    def check_power_map(self, power: PowerMap) -> None:
        """Validate that a power map matches this grid's geometry."""
        if power.nx != self.nx or power.ny != self.ny:
            raise TechnologyError(
                f"power map resolution {power.ny}x{power.nx} does not match the "
                f"thermal grid {self.ny}x{self.nx}"
            )
        if abs(power.width_mm - self.width_mm) > 1e-9 or abs(power.height_mm - self.height_mm) > 1e-9:
            raise TechnologyError("power map dimensions do not match the thermal grid")
