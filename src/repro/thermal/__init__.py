"""Die thermal substrate: floorplan, power maps, RC grid, solvers."""

from .floorplan import Floorplan, FunctionalBlock, SensorSite
from .power import PowerMap
from .grid import TemperatureMap, ThermalGrid, ThermalGridParameters
from .multigrid import GeometricMultigrid
from .operator import SOLVE_METHODS, ThermalOperator, ThermalStepper
from .solver import TransientThermalResult, solve_steady_state, solve_transient
from .selfheating import SelfHeatingReport, duty_cycle_study, self_heating_error

__all__ = [
    "Floorplan",
    "FunctionalBlock",
    "SensorSite",
    "PowerMap",
    "TemperatureMap",
    "ThermalGrid",
    "ThermalGridParameters",
    "GeometricMultigrid",
    "SOLVE_METHODS",
    "ThermalOperator",
    "ThermalStepper",
    "TransientThermalResult",
    "solve_steady_state",
    "solve_transient",
    "SelfHeatingReport",
    "duty_cycle_study",
    "self_heating_error",
]
