"""Steady-state and transient solvers for the thermal grid.

Both solvers are thin layers over
:class:`repro.thermal.operator.ThermalOperator`, which owns (and caches,
process-wide) the sparse-direct factorizations: repeated steady-state
solves on the same grid geometry — a thermal-mapping scan per workload,
the self-heating duty-cycle pair — reuse one factorization of ``G``, and
repeated transient runs with the same timestep reuse one factorization
of the backward-Euler system ``(C/dt + G)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..tech.parameters import TechnologyError
from .grid import TemperatureMap, ThermalGrid
from .operator import ThermalOperator
from .power import PowerMap

__all__ = ["solve_steady_state", "TransientThermalResult", "solve_transient"]


def solve_steady_state(
    grid: ThermalGrid, power: PowerMap, ambient_c: float = 45.0, method: str = "auto"
) -> TemperatureMap:
    """Steady-state junction temperatures for a constant power map.

    Solves ``G * dT = P`` for the temperature rise above ambient and adds
    the ambient temperature.  ``ambient_c`` represents the local ambient
    (board/package) temperature, not the room.  The prepared solve comes
    from the shared :class:`ThermalOperator` cache, so repeated solves on
    equal grids cost one factorization total; ``method`` picks the solve
    (``auto``/``direct``/``iterative``/``multigrid`` — grids above the
    operator's unknown-count threshold route through geometric-multigrid
    preconditioned CG automatically, keeping both memory and iteration
    count bounded where a factorization's fill-in won't fit).
    """
    return ThermalOperator.for_grid(grid, method).solve_steady_state(power, ambient_c)


@dataclass(frozen=True)
class TransientThermalResult:
    """Sampled evolution of the die temperature field."""

    times_s: np.ndarray
    maps: Tuple[TemperatureMap, ...]

    def __post_init__(self) -> None:
        if len(self.maps) != np.asarray(self.times_s).size:
            raise TechnologyError("times and temperature maps must align")

    @property
    def final(self) -> TemperatureMap:
        return self.maps[-1]

    def max_trace_c(self) -> np.ndarray:
        """Peak die temperature at every stored time point."""
        return np.asarray([m.max_c() for m in self.maps])

    def at_time(self, time_s: float) -> TemperatureMap:
        """Temperature map at the stored time closest to ``time_s``."""
        times = np.asarray(self.times_s)
        index = int(np.argmin(np.abs(times - time_s)))
        return self.maps[index]


def solve_transient(
    grid: ThermalGrid,
    power_of_time: Callable[[float], PowerMap],
    duration_s: float,
    timestep_s: float,
    ambient_c: float = 45.0,
    initial: Optional[TemperatureMap] = None,
    store_every: int = 1,
    method: str = "auto",
) -> TransientThermalResult:
    """Integrate the thermal network over time (backward Euler).

    Parameters
    ----------
    grid:
        The thermal network.
    power_of_time:
        Callback returning the power map at a given time; used to model
        duty-cycled oscillators and workload changes.
    duration_s:
        Total simulated time.
    timestep_s:
        Integration step; thermal time constants are milliseconds, so
        steps of 0.1-1 ms are typical.
    ambient_c:
        Ambient temperature (also the default initial condition).
    initial:
        Starting temperature field; uniform ambient when omitted.
    store_every:
        Keep every n-th step in the result.
    method:
        Solve method (``auto``/``direct``/``iterative``/``multigrid``);
        ``auto`` switches to multigrid-preconditioned CG above the
        operator's unknown-count threshold, keeping full-die resolutions
        one warm-started block solve per step.
    """
    if duration_s <= 0.0 or timestep_s <= 0.0:
        raise TechnologyError("duration and timestep must be positive")
    if store_every < 1:
        raise TechnologyError("store_every must be >= 1")
    steps = int(np.ceil(duration_s / timestep_s))
    if steps < 1:
        raise TechnologyError("duration must span at least one timestep")

    size = grid.nx * grid.ny
    stepper = ThermalOperator.for_grid(grid, method).stepper(timestep_s)

    if initial is None:
        state = np.zeros(size)
    else:
        if initial.values_c.shape != (grid.ny, grid.nx):
            raise TechnologyError("initial temperature map does not match the grid")
        state = (initial.values_c - ambient_c).reshape(-1)

    times: List[float] = [0.0]
    maps: List[TemperatureMap] = [
        TemperatureMap(grid.width_mm, grid.height_mm, state.reshape((grid.ny, grid.nx)) + ambient_c)
    ]

    for step in range(1, steps + 1):
        time = step * timestep_s
        power = power_of_time(time)
        grid.check_power_map(power)
        state = stepper.step(state, power.values_w.reshape(-1))
        if step % store_every == 0 or step == steps:
            times.append(time)
            maps.append(
                TemperatureMap(
                    grid.width_mm,
                    grid.height_mm,
                    state.reshape((grid.ny, grid.nx)) + ambient_c,
                )
            )
    return TransientThermalResult(times_s=np.asarray(times), maps=tuple(maps))
