"""Junction-diode model for the analogue baseline temperature sensor.

The paper's introduction contrasts the proposed cell-based sensor with
the diode/BJT sensors used in the Pentium 4 and in the PowerPC thermal
assist unit.  To let the benchmark harness make that comparison, this
module provides a classic diode model with the standard temperature
dependence of the saturation current, plus the delta-VBE (PTAT)
measurement principle used by real analogue smart sensors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..tech.parameters import TechnologyError, celsius_to_kelvin
from ..tech.temperature import thermal_voltage

__all__ = ["DiodeParameters", "DiodeModel"]

#: Silicon bandgap voltage at 0 K (V), used in the saturation-current law.
SILICON_BANDGAP_EV = 1.17


@dataclass(frozen=True)
class DiodeParameters:
    """Parameters of a p-n junction used as a thermal diode.

    Attributes
    ----------
    saturation_current_a:
        Saturation current at the reference temperature (A).
    ideality:
        Ideality factor ``n`` (1.0 for an ideal junction, slightly more
        for real parasitic diodes).
    xti:
        Saturation-current temperature exponent (3 for a classic diode).
    reference_temperature_k:
        Temperature at which ``saturation_current_a`` is quoted.
    series_resistance_ohm:
        Parasitic series resistance; converts to a small error term at
        the bias currents used by thermal sensing.
    """

    saturation_current_a: float = 1.0e-14
    ideality: float = 1.006
    xti: float = 3.0
    reference_temperature_k: float = 300.15
    series_resistance_ohm: float = 2.0

    def __post_init__(self) -> None:
        if self.saturation_current_a <= 0.0:
            raise TechnologyError("saturation current must be positive")
        if self.ideality < 1.0:
            raise TechnologyError("ideality factor must be >= 1")
        if self.reference_temperature_k <= 0.0:
            raise TechnologyError("reference temperature must be positive kelvin")


class DiodeModel:
    """Forward-biased diode evaluated as a temperature transducer."""

    def __init__(self, params: DiodeParameters = DiodeParameters()) -> None:
        self.params = params

    def saturation_current(self, temp_k: float) -> float:
        """Saturation current (A) at ``temp_k`` using the bandgap law."""
        if temp_k <= 0.0:
            raise TechnologyError("temperature must be positive kelvin")
        p = self.params
        t_ref = p.reference_temperature_k
        vt_ref = thermal_voltage(t_ref)
        vt = thermal_voltage(temp_k)
        ratio = temp_k / t_ref
        exponent = (SILICON_BANDGAP_EV / p.ideality) * (1.0 / vt_ref - 1.0 / vt)
        return p.saturation_current_a * ratio ** (p.xti / p.ideality) * math.exp(exponent)

    def forward_voltage(self, current_a: float, temp_k: float) -> float:
        """Forward voltage (V) at a given bias current and temperature.

        Includes the ohmic drop across the series resistance.  The
        forward voltage has the familiar roughly -2 mV/K slope, which is
        the signal an analogue thermal sensor digitises.
        """
        if current_a <= 0.0:
            raise TechnologyError("bias current must be positive")
        isat = self.saturation_current(temp_k)
        vt = thermal_voltage(temp_k)
        voltage = self.params.ideality * vt * math.log(current_a / isat + 1.0)
        return voltage + current_a * self.params.series_resistance_ohm

    def forward_voltage_celsius(self, current_a: float, temp_c: float) -> float:
        """Convenience wrapper taking the temperature in Celsius."""
        return self.forward_voltage(current_a, celsius_to_kelvin(temp_c))

    def delta_vbe(self, current_low_a: float, current_high_a: float, temp_k: float) -> float:
        """PTAT voltage: difference of forward voltages at two bias currents.

        ``delta_vbe = n * kT/q * ln(I_high / I_low)`` is proportional to
        absolute temperature and is the quantity real analogue smart
        sensors convert to digital; the series-resistance error term is
        included so the baseline is not unrealistically ideal.
        """
        if current_high_a <= current_low_a:
            raise TechnologyError("current_high_a must exceed current_low_a")
        v_high = self.forward_voltage(current_high_a, temp_k)
        v_low = self.forward_voltage(current_low_a, temp_k)
        return v_high - v_low

    def temperature_from_delta_vbe(
        self, delta_vbe: float, current_low_a: float, current_high_a: float
    ) -> float:
        """Invert :meth:`delta_vbe` (ignoring series resistance) to kelvin."""
        if delta_vbe <= 0.0:
            raise TechnologyError("delta_vbe must be positive")
        log_ratio = math.log(current_high_a / current_low_a)
        # delta_vbe = n * (k/q) * T * ln(ratio)  (ideal part)
        return delta_vbe / (self.params.ideality * 8.617333262e-5 * log_ratio)
