"""MOSFET device model (Sakurai--Newton alpha-power law).

The same I--V model backs both layers of the library:

* the transistor-level circuit simulator (:mod:`repro.circuit`), which
  integrates the ring-oscillator differential equations to produce
  waveforms like the paper's Fig. 1, and
* the analytical gate-delay model (:mod:`repro.delay`), which evaluates
  the saturation current directly to compute propagation delays for the
  large temperature sweeps behind Fig. 2 / Fig. 3.

Using one model for both keeps the two evaluation paths qualitatively
consistent: whatever curvature the delay-versus-temperature
characteristic has analytically is also what the simulated oscillator
shows.

Model summary
-------------

With overdrive ``vov = vgs - vth(T)`` (all magnitudes, the polarity is
applied by the calling code or the circuit element):

* saturation current   ``Id0 = W * pc(T) * vov ** alpha(T)``
* saturation voltage   ``Vdsat = (alpha / 2) * vov``
* linear region        ``Id = Id0 * (2 - vds / Vdsat) * (vds / Vdsat)``
* saturation region    ``Id = Id0 * (1 + lambda * (vds - Vdsat))``
* subthreshold         exponential roll-off below ``vov = 0``

``pc(T)`` is the drive coefficient ``mu(T) * Cox / (2 L)`` expressed per
micron of width, normalised by a 1 V reference so the units stay
consistent for non-integer ``alpha``.  Temperature enters through
``mu(T)``, ``vth(T)`` and ``alpha(T)`` (see :mod:`repro.tech.temperature`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..tech.parameters import Technology, TechnologyError, TransistorParameters
from ..tech.temperature import DeviceAtTemperature, device_at, thermal_voltage

__all__ = ["DeviceSizing", "MosfetModel", "MosfetOperatingPoint"]

#: Voltage normalisation used so that ``vov ** alpha`` has consistent
#: units for non-integer alpha.
V_NORM = 1.0

#: Channel-length-modulation coefficient (1/V); small, keeps the output
#: conductance finite in saturation which helps the DC solver converge.
DEFAULT_LAMBDA = 0.05

#: Subthreshold leakage floor per micron of width (A/um) at vov = 0.
DEFAULT_I0_LEAK = 1.0e-9


@dataclass(frozen=True)
class DeviceSizing:
    """Drawn geometry of one transistor instance.

    Attributes
    ----------
    width_um:
        Total drawn width in micrometres (all fingers combined).
    length_um:
        Drawn channel length; ``None`` uses the technology's minimum
        length, which is what standard cells do.
    """

    width_um: float
    length_um: Optional[float] = None

    def __post_init__(self) -> None:
        if self.width_um <= 0.0:
            raise TechnologyError("transistor width must be positive")
        if self.length_um is not None and self.length_um <= 0.0:
            raise TechnologyError("transistor length must be positive")

    def length_or(self, default: float) -> float:
        return self.length_um if self.length_um is not None else default


@dataclass(frozen=True)
class MosfetOperatingPoint:
    """Drain current and small-signal conductances at one bias point."""

    ids: float
    gm: float
    gds: float
    vdsat: float
    region: str


class MosfetModel:
    """Alpha-power-law MOSFET evaluated at a fixed junction temperature.

    Voltages passed to :meth:`ids` are *magnitudes in the device's own
    frame*: for a PMOS, ``vgs`` is the source-to-gate voltage and
    ``vds`` the source-to-drain voltage, both positive when the device
    is conducting.  The circuit elements perform the frame conversion.

    Parameters
    ----------
    params:
        Transistor parameters of the device type.
    sizing:
        Drawn geometry.
    temperature_k:
        Junction temperature in kelvin.
    lambda_channel:
        Channel-length modulation (1/V).
    """

    def __init__(
        self,
        params: TransistorParameters,
        sizing: DeviceSizing,
        temperature_k: float,
        lambda_channel: float = DEFAULT_LAMBDA,
        leak_per_um: float = DEFAULT_I0_LEAK,
    ) -> None:
        self.params = params
        self.sizing = sizing
        self.temperature_k = float(temperature_k)
        self.lambda_channel = float(lambda_channel)
        self.leak_per_um = float(leak_per_um)
        self._device: DeviceAtTemperature = device_at(params, temperature_k)
        self._length = sizing.length_or(params.channel_length_um)
        self._vt_thermal = thermal_voltage(temperature_k)
        # Subthreshold slope factor n = S / (kT/q * ln 10); ~1.4 for 85 mV/dec.
        self._n_sub = params.subthreshold_slope_mv_per_dec / (
            1000.0 * self._vt_thermal * math.log(10.0)
        )
        self._n_sub = max(self._n_sub, 1.0)

    @classmethod
    def from_technology(
        cls,
        tech: Technology,
        polarity: str,
        width_um: float,
        temperature_k: float,
        length_um: Optional[float] = None,
    ) -> "MosfetModel":
        """Build a model for a device of the given polarity and width."""
        return cls(
            tech.transistor(polarity),
            DeviceSizing(width_um=width_um, length_um=length_um),
            temperature_k,
        )

    # ------------------------------------------------------------------ #
    # temperature-dependent derived quantities
    # ------------------------------------------------------------------ #

    @property
    def vth(self) -> float:
        """Threshold-voltage magnitude at the model temperature."""
        return self._device.vth

    @property
    def alpha(self) -> float:
        """Velocity-saturation index at the model temperature."""
        return self._device.alpha

    @property
    def width_um(self) -> float:
        return self.sizing.width_um

    def drive_coefficient(self) -> float:
        """``pc(T)`` in A / (um * V^alpha): drive current per um at 1 V overdrive."""
        kprime = self._device.process_transconductance  # A/V^2 for W = L
        return 0.5 * kprime / self._length * V_NORM ** (2.0 - self._device.alpha)

    def saturation_current(self, vgs: float) -> float:
        """Saturation drain current (A) at gate overdrive ``vgs - vth``."""
        vov = vgs - self._device.vth
        if vov <= 0.0:
            return self._subthreshold_current(vov, vds=1.0)
        return self.sizing.width_um * self.drive_coefficient() * vov ** self._device.alpha

    def vdsat(self, vgs: float) -> float:
        """Saturation drain voltage (V)."""
        vov = vgs - self._device.vth
        if vov <= 0.0:
            return 0.0
        return 0.5 * self._device.alpha * vov

    def _subthreshold_current(self, vov: float, vds: float) -> float:
        i0 = self.leak_per_um * self.sizing.width_um
        exponent = vov / (self._n_sub * self._vt_thermal)
        exponent = min(exponent, 0.0)
        drain_term = 1.0 - math.exp(-max(vds, 0.0) / self._vt_thermal)
        return i0 * math.exp(exponent) * drain_term

    # ------------------------------------------------------------------ #
    # full I--V surface
    # ------------------------------------------------------------------ #

    def ids(self, vgs: float, vds: float) -> float:
        """Drain current (A) at the given bias (magnitudes, own frame).

        Negative ``vds`` is handled by symmetry (source and drain swap),
        which the transient simulator relies on when a pass-gate-like
        condition appears momentarily during switching.
        """
        if vds < 0.0:
            # Swap source/drain: the "gate-to-source" voltage becomes
            # gate-to-(new source at old drain).
            return -self.ids(vgs - vds, -vds)
        vov = vgs - self._device.vth
        if vov <= 0.0:
            return self._subthreshold_current(vov, vds)
        id0 = self.sizing.width_um * self.drive_coefficient() * vov ** self._device.alpha
        vdsat = 0.5 * self._device.alpha * vov
        if vds >= vdsat:
            return id0 * (1.0 + self.lambda_channel * (vds - vdsat))
        ratio = vds / vdsat
        return id0 * ratio * (2.0 - ratio)

    def operating_point(self, vgs: float, vds: float) -> MosfetOperatingPoint:
        """Current and numerically evaluated small-signal conductances."""
        delta = 1.0e-4
        ids = self.ids(vgs, vds)
        gm = (self.ids(vgs + delta, vds) - self.ids(vgs - delta, vds)) / (2 * delta)
        gds = (self.ids(vgs, vds + delta) - self.ids(vgs, vds - delta)) / (2 * delta)
        vov = vgs - self._device.vth
        if vov <= 0.0:
            region = "subthreshold"
        elif vds >= self.vdsat(vgs):
            region = "saturation"
        else:
            region = "linear"
        return MosfetOperatingPoint(
            ids=ids, gm=gm, gds=max(gds, 0.0), vdsat=self.vdsat(vgs), region=region
        )

    # ------------------------------------------------------------------ #
    # capacitances
    # ------------------------------------------------------------------ #

    def gate_capacitance(self) -> float:
        """Total gate (input) capacitance in farads."""
        return self._device.gate_cap_f_per_um * self.sizing.width_um

    def drain_capacitance(self) -> float:
        """Drain junction + Miller-doubled overlap capacitance in farads."""
        return (
            self._device.junction_cap_f_per_um + 2.0 * self._device.overlap_cap_f_per_um
        ) * self.sizing.width_um

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MosfetModel({self.params.polarity}, W={self.sizing.width_um:.2f}um, "
            f"T={self.temperature_k:.1f}K)"
        )
