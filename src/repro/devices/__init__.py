"""Device models: MOSFET (alpha-power law), thermal diode, passives."""

from .mosfet import DeviceSizing, MosfetModel, MosfetOperatingPoint
from .diode import DiodeModel, DiodeParameters
from .passives import CapacitorSpec, ResistorSpec

__all__ = [
    "DeviceSizing",
    "MosfetModel",
    "MosfetOperatingPoint",
    "DiodeModel",
    "DiodeParameters",
    "CapacitorSpec",
    "ResistorSpec",
]
