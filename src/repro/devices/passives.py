"""Passive component values with first-order temperature dependence.

Resistors and capacitors appear in two places in the reproduction: as
explicit load elements in the transistor-level simulator, and as the
thermal-network elements of the die model (where "resistance" is
thermal resistance in K/W and "capacitance" is heat capacity in J/K).
Both uses share the simple linear temperature-coefficient model below.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tech.parameters import TechnologyError

__all__ = ["ResistorSpec", "CapacitorSpec"]


@dataclass(frozen=True)
class ResistorSpec:
    """A resistor with a linear temperature coefficient.

    ``value(T) = nominal * (1 + tc1 * (T - T_ref))``
    """

    nominal_ohm: float
    tc1_per_k: float = 0.0
    reference_temperature_k: float = 300.15

    def __post_init__(self) -> None:
        if self.nominal_ohm <= 0.0:
            raise TechnologyError("resistance must be positive")

    def value_at(self, temp_k: float) -> float:
        """Resistance (ohm) at temperature ``temp_k``."""
        factor = 1.0 + self.tc1_per_k * (temp_k - self.reference_temperature_k)
        if factor <= 0.0:
            raise TechnologyError(
                "temperature coefficient drives the resistance non-positive"
            )
        return self.nominal_ohm * factor

    def conductance_at(self, temp_k: float) -> float:
        """Conductance (siemens) at temperature ``temp_k``."""
        return 1.0 / self.value_at(temp_k)


@dataclass(frozen=True)
class CapacitorSpec:
    """A capacitor with a linear temperature coefficient."""

    nominal_f: float
    tc1_per_k: float = 0.0
    reference_temperature_k: float = 300.15

    def __post_init__(self) -> None:
        if self.nominal_f <= 0.0:
            raise TechnologyError("capacitance must be positive")

    def value_at(self, temp_k: float) -> float:
        """Capacitance (farad) at temperature ``temp_k``."""
        factor = 1.0 + self.tc1_per_k * (temp_k - self.reference_temperature_k)
        if factor <= 0.0:
            raise TechnologyError(
                "temperature coefficient drives the capacitance non-positive"
            )
        return self.nominal_f * factor
