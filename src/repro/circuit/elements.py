"""Circuit elements and their MNA stamps.

Every element knows how to add its (linearised) contribution to the MNA
matrix ``G`` and right-hand side ``rhs`` given the current Newton
iterate of the node voltages.  Capacitors use a backward-Euler companion
model during transient analysis and stamp nothing during DC analysis.
MOSFETs are linearised around the iterate (``gm``, ``gds`` and an
equivalent current source), which is the standard Newton-Raphson
treatment.

Index convention: node index ``-1`` is ground; stamps silently skip any
row/column with a negative index.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..devices.mosfet import MosfetModel

__all__ = [
    "SimulationError",
    "StampContext",
    "CircuitElement",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "PulseVoltageSource",
    "CurrentSource",
    "Mosfet",
    "GROUND_NAMES",
]

#: Node names treated as the ground reference.
GROUND_NAMES = {"0", "gnd", "vss", "ground"}

#: Small conductance added from every node to ground to keep the MNA
#: matrix well conditioned even for momentarily floating nodes.
GMIN = 1.0e-12


class SimulationError(RuntimeError):
    """Raised for malformed circuits or non-convergent analyses."""


@dataclass
class StampContext:
    """Per-iteration information handed to the element stamps.

    Attributes
    ----------
    voltages:
        Current Newton iterate of the node voltages (ground excluded).
    previous_voltages:
        Node voltages at the previous accepted time point, or ``None``
        during DC analysis.
    timestep:
        Transient timestep in seconds, or ``None`` during DC analysis.
    source_scale:
        Ramping factor in [0, 1] applied to independent sources during
        DC source stepping (helps Newton converge from a cold start).
    """

    voltages: np.ndarray
    previous_voltages: Optional[np.ndarray] = None
    timestep: Optional[float] = None
    source_scale: float = 1.0
    time: float = 0.0

    @property
    def is_transient(self) -> bool:
        return self.timestep is not None

    def voltage(self, index: int) -> float:
        """Voltage at a node index (ground reads as 0 V)."""
        if index < 0:
            return 0.0
        return float(self.voltages[index])

    def previous_voltage(self, index: int) -> float:
        if index < 0 or self.previous_voltages is None:
            return 0.0
        return float(self.previous_voltages[index])


def _add(matrix: np.ndarray, row: int, col: int, value: float) -> None:
    if row >= 0 and col >= 0:
        matrix[row, col] += value


def _add_rhs(rhs: np.ndarray, row: int, value: float) -> None:
    if row >= 0:
        rhs[row] += value


@dataclass
class CircuitElement:
    """Base class: an element connected to a set of node indices."""

    name: str

    def nodes(self) -> Tuple[int, ...]:
        raise NotImplementedError

    def stamp(
        self,
        matrix: np.ndarray,
        rhs: np.ndarray,
        context: StampContext,
        branch_index: Optional[int] = None,
    ) -> None:
        raise NotImplementedError

    def requires_branch(self) -> bool:
        """Whether the element adds an MNA branch-current unknown."""
        return False


@dataclass
class Resistor(CircuitElement):
    node_a: int = -1
    node_b: int = -1
    ohms: float = 1.0

    def __post_init__(self) -> None:
        if self.ohms <= 0.0:
            raise SimulationError(f"resistor {self.name}: resistance must be positive")

    def nodes(self) -> Tuple[int, ...]:
        return (self.node_a, self.node_b)

    def stamp(self, matrix, rhs, context, branch_index=None) -> None:
        g = 1.0 / self.ohms
        _add(matrix, self.node_a, self.node_a, g)
        _add(matrix, self.node_b, self.node_b, g)
        _add(matrix, self.node_a, self.node_b, -g)
        _add(matrix, self.node_b, self.node_a, -g)


@dataclass
class Capacitor(CircuitElement):
    node_a: int = -1
    node_b: int = -1
    farads: float = 1.0e-15

    def __post_init__(self) -> None:
        if self.farads <= 0.0:
            raise SimulationError(f"capacitor {self.name}: capacitance must be positive")

    def nodes(self) -> Tuple[int, ...]:
        return (self.node_a, self.node_b)

    def stamp(self, matrix, rhs, context, branch_index=None) -> None:
        if not context.is_transient:
            return
        geq = self.farads / context.timestep
        v_prev = context.previous_voltage(self.node_a) - context.previous_voltage(
            self.node_b
        )
        ieq = geq * v_prev
        _add(matrix, self.node_a, self.node_a, geq)
        _add(matrix, self.node_b, self.node_b, geq)
        _add(matrix, self.node_a, self.node_b, -geq)
        _add(matrix, self.node_b, self.node_a, -geq)
        _add_rhs(rhs, self.node_a, ieq)
        _add_rhs(rhs, self.node_b, -ieq)


@dataclass
class VoltageSource(CircuitElement):
    node_a: int = -1  # positive terminal
    node_b: int = -1  # negative terminal
    voltage: float = 0.0

    def nodes(self) -> Tuple[int, ...]:
        return (self.node_a, self.node_b)

    def requires_branch(self) -> bool:
        return True

    def stamp(self, matrix, rhs, context, branch_index=None) -> None:
        if branch_index is None:
            raise SimulationError(
                f"voltage source {self.name}: missing branch index"
            )
        _add(matrix, self.node_a, branch_index, 1.0)
        _add(matrix, branch_index, self.node_a, 1.0)
        _add(matrix, self.node_b, branch_index, -1.0)
        _add(matrix, branch_index, self.node_b, -1.0)
        rhs[branch_index] += self.voltage * context.source_scale


@dataclass
class PulseVoltageSource(CircuitElement):
    """A trapezoidal pulse voltage source (SPICE ``PULSE`` equivalent).

    Used by the cell characterisation benches to apply an input edge with
    a controlled slew.  The waveform starts at ``initial_v``, switches to
    ``pulsed_v`` after ``delay`` with linear ramps of ``rise`` / ``fall``
    seconds, stays high for ``width`` and repeats every ``period`` (no
    repetition if ``period`` is zero or shorter than one pulse).
    """

    node_a: int = -1
    node_b: int = -1
    initial_v: float = 0.0
    pulsed_v: float = 1.0
    delay: float = 0.0
    rise: float = 1.0e-12
    fall: float = 1.0e-12
    width: float = 1.0e-9
    period: float = 0.0

    def nodes(self) -> Tuple[int, ...]:
        return (self.node_a, self.node_b)

    def requires_branch(self) -> bool:
        return True

    def value_at(self, time: float) -> float:
        """Instantaneous source voltage at ``time`` seconds."""
        t = time - self.delay
        if t < 0.0:
            return self.initial_v
        cycle = self.rise + self.width + self.fall
        if self.period > cycle:
            t = t % self.period
        if t < self.rise:
            frac = t / self.rise if self.rise > 0 else 1.0
            return self.initial_v + frac * (self.pulsed_v - self.initial_v)
        if t < self.rise + self.width:
            return self.pulsed_v
        if t < cycle:
            frac = (t - self.rise - self.width) / self.fall if self.fall > 0 else 1.0
            return self.pulsed_v + frac * (self.initial_v - self.pulsed_v)
        return self.initial_v

    def stamp(self, matrix, rhs, context, branch_index=None) -> None:
        if branch_index is None:
            raise SimulationError(
                f"pulse source {self.name}: missing branch index"
            )
        _add(matrix, self.node_a, branch_index, 1.0)
        _add(matrix, branch_index, self.node_a, 1.0)
        _add(matrix, self.node_b, branch_index, -1.0)
        _add(matrix, branch_index, self.node_b, -1.0)
        rhs[branch_index] += self.value_at(context.time) * context.source_scale


@dataclass
class CurrentSource(CircuitElement):
    node_a: int = -1  # current flows out of node_a ...
    node_b: int = -1  # ... and into node_b
    current: float = 0.0

    def nodes(self) -> Tuple[int, ...]:
        return (self.node_a, self.node_b)

    def stamp(self, matrix, rhs, context, branch_index=None) -> None:
        value = self.current * context.source_scale
        _add_rhs(rhs, self.node_a, -value)
        _add_rhs(rhs, self.node_b, value)


@dataclass
class Mosfet(CircuitElement):
    """A MOSFET instance wrapping a :class:`MosfetModel`.

    For NMOS the model frame is used directly (``vgs = Vg - Vs``,
    ``vds = Vd - Vs`` with current flowing drain -> source).  For PMOS
    the frame is mirrored (``vsg``, ``vsd``) and the current direction
    reversed, so the same positive-magnitude model serves both.
    """

    drain: int = -1
    gate: int = -1
    source: int = -1
    model: Optional[MosfetModel] = None

    def __post_init__(self) -> None:
        if self.model is None:
            raise SimulationError(f"mosfet {self.name}: a MosfetModel is required")

    def nodes(self) -> Tuple[int, ...]:
        return (self.drain, self.gate, self.source)

    @property
    def is_pmos(self) -> bool:
        return self.model.params.polarity == "pmos"

    def _bias(self, context: StampContext) -> Tuple[float, float]:
        vd = context.voltage(self.drain)
        vg = context.voltage(self.gate)
        vs = context.voltage(self.source)
        if self.is_pmos:
            return vs - vg, vs - vd
        return vg - vs, vd - vs

    def drain_current(self, context: StampContext) -> float:
        """Signed current flowing into the drain terminal."""
        vgs, vds = self._bias(context)
        ids = self.model.ids(vgs, vds)
        return -ids if self.is_pmos else ids

    def stamp(self, matrix, rhs, context, branch_index=None) -> None:
        vgs, vds = self._bias(context)
        op = self.model.operating_point(vgs, vds)
        gm = max(op.gm, 0.0)
        gds = max(op.gds, GMIN)
        ids = op.ids

        # Equivalent current source of the linearised device (own frame):
        # i = ids - gm * vgs - gds * vds  evaluated at the iterate.
        ieq = ids - gm * vgs - gds * vds

        d, g, s = self.drain, self.gate, self.source

        # The Jacobian (conductance) stamps are identical for NMOS and
        # PMOS when expressed in terms of the real terminal voltages: for
        # the NMOS frame I_ds = f(vg - vs, vd - vs), for the PMOS frame
        # I_sd = f(vs - vg, vs - vd) and the current direction reverses,
        # so both sign flips cancel in the partial derivatives.  Only the
        # constant (equivalent-source) term keeps track of the direction.
        _add(matrix, d, g, gm)
        _add(matrix, d, s, -gm - gds)
        _add(matrix, d, d, gds)
        _add(matrix, s, g, -gm)
        _add(matrix, s, s, gm + gds)
        _add(matrix, s, d, -gds)

        if self.is_pmos:
            # Current ieq flows out of the source node into the drain node.
            _add_rhs(rhs, d, ieq)
            _add_rhs(rhs, s, -ieq)
        else:
            # Current ieq flows out of the drain node into the source node.
            _add_rhs(rhs, d, -ieq)
            _add_rhs(rhs, s, ieq)

        # Leak conductance to ground for numerical robustness.
        _add(matrix, d, d, GMIN)
        _add(matrix, s, s, GMIN)
