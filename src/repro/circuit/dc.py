"""DC operating-point analysis (Newton--Raphson with source stepping)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .elements import SimulationError, StampContext
from .netlist import Circuit

__all__ = ["DCResult", "DCOptions", "solve_dc"]


@dataclass(frozen=True)
class DCOptions:
    """Numerical knobs of the DC solver."""

    max_iterations: int = 200
    tolerance_v: float = 1.0e-7
    max_update_v: float = 0.4
    source_steps: int = 1

    def __post_init__(self) -> None:
        if self.max_iterations <= 0:
            raise SimulationError("max_iterations must be positive")
        if self.tolerance_v <= 0.0:
            raise SimulationError("tolerance_v must be positive")
        if self.source_steps <= 0:
            raise SimulationError("source_steps must be positive")


@dataclass
class DCResult:
    """Converged DC operating point."""

    circuit_name: str
    node_voltages: Dict[str, float]
    branch_currents: Dict[str, float]
    iterations: int
    converged: bool = True

    def voltage(self, node: str) -> float:
        """Voltage of a node by name (ground reads as 0 V)."""
        key = node.strip().lower()
        if key in ("0", "gnd", "vss", "ground"):
            return 0.0
        try:
            return self.node_voltages[key]
        except KeyError as exc:
            raise SimulationError(f"no node named {node!r} in the DC result") from exc

    def supply_current(self, source_name: str) -> float:
        """Branch current of a voltage source (positive flowing out of +)."""
        try:
            return self.branch_currents[source_name]
        except KeyError as exc:
            raise SimulationError(
                f"no voltage source named {source_name!r} in the DC result"
            ) from exc


def _newton_solve(
    circuit: Circuit,
    initial: np.ndarray,
    options: DCOptions,
    source_scale: float,
    previous_voltages: Optional[np.ndarray] = None,
    timestep: Optional[float] = None,
    time: float = 0.0,
) -> tuple:
    """Shared Newton loop used by both DC and (per step) transient analysis.

    Returns ``(solution_vector, iterations, converged)`` where the
    solution vector contains node voltages followed by voltage-source
    branch currents.
    """
    n_nodes = circuit.node_count
    sources = circuit.voltage_sources()
    size = n_nodes + len(sources)
    solution = initial.copy()

    for iteration in range(1, options.max_iterations + 1):
        matrix = np.zeros((size, size))
        rhs = np.zeros(size)
        context = StampContext(
            voltages=solution[:n_nodes],
            previous_voltages=previous_voltages,
            timestep=timestep,
            source_scale=source_scale,
            time=time,
        )
        branch = n_nodes
        for element in circuit.elements:
            if element.requires_branch():
                element.stamp(matrix, rhs, context, branch_index=branch)
                branch += 1
            else:
                element.stamp(matrix, rhs, context)
        # Tiny diagonal regularisation keeps the matrix invertible if a
        # node is momentarily floating (e.g. all devices off).
        matrix[np.arange(n_nodes), np.arange(n_nodes)] += 1.0e-12

        try:
            new_solution = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise SimulationError(
                f"singular MNA matrix while solving circuit {circuit.name!r}"
            ) from exc

        delta = new_solution - solution
        # Damp the voltage update to keep Newton from overshooting the
        # exponential subthreshold region.
        node_delta = delta[:n_nodes]
        max_delta = float(np.max(np.abs(node_delta))) if n_nodes else 0.0
        if max_delta > options.max_update_v:
            scale = options.max_update_v / max_delta
            delta = delta * scale
        solution = solution + delta

        if max_delta < options.tolerance_v:
            return solution, iteration, True

    return solution, options.max_iterations, False


def solve_dc(
    circuit: Circuit,
    options: DCOptions = DCOptions(),
    initial_guess: Optional[Dict[str, float]] = None,
) -> DCResult:
    """Compute the DC operating point of a circuit.

    Uses plain Newton--Raphson; if that fails to converge, the supply
    voltages are ramped in ``source_steps`` increments (source stepping),
    which is usually enough for the small digital circuits in this
    package.

    Parameters
    ----------
    circuit:
        The circuit to solve.
    options:
        Solver options.
    initial_guess:
        Optional starting voltages keyed by node name; unspecified nodes
        start at half of the largest supply voltage.
    """
    circuit.validate()
    n_nodes = circuit.node_count
    sources = circuit.voltage_sources()
    size = n_nodes + len(sources)

    supplies = [
        abs(getattr(s, "voltage", getattr(s, "pulsed_v", 0.0))) for s in sources
    ]
    start_level = 0.5 * max(supplies) if supplies else 0.0
    initial = np.full(size, 0.0)
    initial[:n_nodes] = start_level
    if initial_guess:
        for node, value in initial_guess.items():
            index = circuit.index_of(node)
            if index >= 0:
                initial[index] = value

    schedule = (
        [1.0]
        if options.source_steps == 1
        else list(np.linspace(1.0 / options.source_steps, 1.0, options.source_steps))
    )

    solution = initial
    total_iterations = 0
    converged = False
    for scale in schedule:
        solution, iterations, converged = _newton_solve(
            circuit, solution, options, source_scale=scale
        )
        total_iterations += iterations
        if not converged:
            break

    if not converged and options.source_steps == 1:
        # Retry with source stepping before giving up.
        retry = DCOptions(
            max_iterations=options.max_iterations,
            tolerance_v=options.tolerance_v,
            max_update_v=options.max_update_v,
            source_steps=10,
        )
        return solve_dc(circuit, retry, initial_guess)

    if not converged:
        raise SimulationError(
            f"DC analysis of circuit {circuit.name!r} did not converge "
            f"after {total_iterations} Newton iterations"
        )

    names = circuit.node_names()
    node_voltages = {name: float(solution[i]) for i, name in enumerate(names)}
    branch_currents = {
        source.name: float(solution[n_nodes + i]) for i, source in enumerate(sources)
    }
    return DCResult(
        circuit_name=circuit.name,
        node_voltages=node_voltages,
        branch_currents=branch_currents,
        iterations=total_iterations,
        converged=True,
    )
