"""Waveform post-processing.

The transient simulator produces node-voltage waveforms; everything the
sensor library needs from them — threshold-crossing times, oscillation
period and frequency, duty cycle, propagation delays between two
waveforms — is computed here.  The period extraction is what converts a
simulated ring-oscillator run (paper Fig. 1) into the quantity the
sensor actually digitises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .elements import SimulationError

__all__ = ["Waveform", "propagation_delay"]


@dataclass(frozen=True)
class Waveform:
    """A sampled signal ``value(time)`` with strictly increasing time."""

    times: np.ndarray
    values: np.ndarray
    name: str = "signal"

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        values = np.asarray(self.values, dtype=float)
        if times.ndim != 1 or values.ndim != 1:
            raise SimulationError("waveform arrays must be one-dimensional")
        if times.shape != values.shape:
            raise SimulationError("waveform time and value arrays must match in length")
        if times.size < 2:
            raise SimulationError("a waveform needs at least two samples")
        if np.any(np.diff(times) <= 0.0):
            raise SimulationError("waveform time axis must be strictly increasing")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    @property
    def duration(self) -> float:
        return float(self.times[-1] - self.times[0])

    @property
    def sample_count(self) -> int:
        return int(self.times.size)

    def minimum(self) -> float:
        return float(np.min(self.values))

    def maximum(self) -> float:
        return float(np.max(self.values))

    def amplitude(self) -> float:
        return self.maximum() - self.minimum()

    def value_at(self, time: float) -> float:
        """Linearly interpolated value at an arbitrary time."""
        if time < self.times[0] or time > self.times[-1]:
            raise SimulationError(
                f"time {time} is outside the waveform span "
                f"[{self.times[0]}, {self.times[-1]}]"
            )
        return float(np.interp(time, self.times, self.values))

    def window(self, start: float, stop: float) -> "Waveform":
        """Sub-waveform restricted to ``[start, stop]``."""
        if stop <= start:
            raise SimulationError("window stop must be after start")
        mask = (self.times >= start) & (self.times <= stop)
        if np.count_nonzero(mask) < 2:
            raise SimulationError("window contains fewer than two samples")
        return Waveform(self.times[mask], self.values[mask], name=self.name)

    # ------------------------------------------------------------------ #
    # crossings and periodicity
    # ------------------------------------------------------------------ #

    def crossings(self, threshold: float, direction: str = "rising") -> np.ndarray:
        """Times at which the signal crosses ``threshold``.

        Parameters
        ----------
        threshold:
            Crossing level in volts.
        direction:
            ``"rising"``, ``"falling"`` or ``"both"``.
        """
        if direction not in ("rising", "falling", "both"):
            raise SimulationError(f"unknown crossing direction {direction!r}")
        values = self.values
        above = values >= threshold
        change = np.diff(above.astype(int))
        crossing_times: List[float] = []
        indices = np.nonzero(change != 0)[0]
        for index in indices:
            rising = change[index] > 0
            if direction == "rising" and not rising:
                continue
            if direction == "falling" and rising:
                continue
            v0, v1 = values[index], values[index + 1]
            t0, t1 = self.times[index], self.times[index + 1]
            if v1 == v0:
                crossing_times.append(float(t0))
            else:
                frac = (threshold - v0) / (v1 - v0)
                crossing_times.append(float(t0 + frac * (t1 - t0)))
        return np.asarray(crossing_times)

    def period(
        self, threshold: Optional[float] = None, skip_cycles: int = 1
    ) -> float:
        """Oscillation period estimated from successive rising crossings.

        The first ``skip_cycles`` crossings are discarded so that the
        start-up transient of the oscillator does not bias the estimate.
        """
        if threshold is None:
            threshold = 0.5 * (self.minimum() + self.maximum())
        times = self.crossings(threshold, "rising")
        if times.size < skip_cycles + 2:
            raise SimulationError(
                f"waveform {self.name!r} does not contain enough cycles to "
                f"estimate a period (found {times.size} rising crossings)"
            )
        useful = times[skip_cycles:]
        periods = np.diff(useful)
        return float(np.mean(periods))

    def frequency(self, threshold: Optional[float] = None, skip_cycles: int = 1) -> float:
        """Oscillation frequency in hertz."""
        return 1.0 / self.period(threshold=threshold, skip_cycles=skip_cycles)

    def period_jitter(self, threshold: Optional[float] = None, skip_cycles: int = 1) -> float:
        """Standard deviation of the cycle-to-cycle period (seconds)."""
        if threshold is None:
            threshold = 0.5 * (self.minimum() + self.maximum())
        times = self.crossings(threshold, "rising")
        if times.size < skip_cycles + 3:
            raise SimulationError("not enough cycles to estimate jitter")
        periods = np.diff(times[skip_cycles:])
        return float(np.std(periods))

    def duty_cycle(self, threshold: Optional[float] = None) -> float:
        """Fraction of time the signal spends above the threshold."""
        if threshold is None:
            threshold = 0.5 * (self.minimum() + self.maximum())
        above = self.values >= threshold
        dt = np.diff(self.times)
        # Attribute each interval to the state at its left edge.
        time_above = float(np.sum(dt[above[:-1]]))
        return time_above / self.duration

    def is_oscillating(
        self, minimum_swing_fraction: float = 0.6, supply: Optional[float] = None
    ) -> bool:
        """Heuristic check that the waveform is a healthy oscillation.

        The swing must exceed ``minimum_swing_fraction`` of the supply
        (or of the observed max if no supply is given) and at least three
        rising crossings must be present.
        """
        reference = supply if supply is not None else self.maximum()
        if reference <= 0:
            return False
        if self.amplitude() < minimum_swing_fraction * reference:
            return False
        threshold = 0.5 * (self.minimum() + self.maximum())
        return self.crossings(threshold, "rising").size >= 3

    def resampled(self, sample_count: int) -> "Waveform":
        """Uniformly resampled copy (useful for fixed-size exports)."""
        if sample_count < 2:
            raise SimulationError("sample_count must be at least 2")
        new_times = np.linspace(self.times[0], self.times[-1], sample_count)
        new_values = np.interp(new_times, self.times, self.values)
        return Waveform(new_times, new_values, name=self.name)


def propagation_delay(
    input_wave: Waveform,
    output_wave: Waveform,
    supply: float,
    edge: str = "falling_output",
) -> float:
    """Propagation delay between an input edge and the output response.

    Measured, as usual, between the 50 % points of the input and output
    transitions.  ``edge`` selects which output transition is timed:
    ``"falling_output"`` gives tpHL, ``"rising_output"`` gives tpLH.
    """
    threshold = 0.5 * supply
    if edge == "falling_output":
        output_cross = output_wave.crossings(threshold, "falling")
        input_cross = input_wave.crossings(threshold, "rising")
    elif edge == "rising_output":
        output_cross = output_wave.crossings(threshold, "rising")
        input_cross = input_wave.crossings(threshold, "falling")
    else:
        raise SimulationError(f"unknown edge selector {edge!r}")
    if input_cross.size == 0 or output_cross.size == 0:
        raise SimulationError("waveforms do not contain the requested transitions")
    t_in = input_cross[0]
    later = output_cross[output_cross > t_in]
    if later.size == 0:
        raise SimulationError("output never responds after the input transition")
    return float(later[0] - t_in)
