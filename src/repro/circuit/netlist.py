"""Netlist container for the transistor-level circuit simulator.

The simulator is a small, self-contained modified-nodal-analysis (MNA)
engine: enough to simulate ring oscillators, standard cells driving
capacitive loads, and the small test fixtures used by the cell
characterisation flow — it is not, and does not try to be, a general
SPICE replacement.

A :class:`Circuit` owns a set of named nodes and a list of elements.
Node ``"0"`` (aliases ``"gnd"``, ``"vss"``) is the ground reference and
is always present.  Elements are created through the ``add_*`` helpers
which also perform node registration, so user code never deals with
matrix indices directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..devices.mosfet import MosfetModel
from .elements import (
    Capacitor,
    CircuitElement,
    CurrentSource,
    GROUND_NAMES,
    Mosfet,
    PulseVoltageSource,
    Resistor,
    SimulationError,
    VoltageSource,
)

__all__ = ["Circuit", "SimulationError"]


class Circuit:
    """A flat transistor-level netlist.

    Parameters
    ----------
    name:
        Identifier used in error messages and result labels.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._node_index: Dict[str, int] = {}
        self._node_names: List[str] = []
        self.elements: List[CircuitElement] = []
        self.initial_conditions: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # nodes
    # ------------------------------------------------------------------ #

    @staticmethod
    def _canonical(node: str) -> str:
        node = str(node).strip().lower()
        if node in GROUND_NAMES:
            return "0"
        return node

    def node(self, name: str) -> int:
        """Return the matrix index of a node, registering it if new.

        Ground maps to index ``-1`` and never appears in the MNA system.
        """
        canonical = self._canonical(name)
        if canonical == "0":
            return -1
        if canonical not in self._node_index:
            self._node_index[canonical] = len(self._node_names)
            self._node_names.append(canonical)
        return self._node_index[canonical]

    def node_names(self) -> List[str]:
        """Names of all non-ground nodes in matrix order."""
        return list(self._node_names)

    @property
    def node_count(self) -> int:
        """Number of non-ground nodes."""
        return len(self._node_names)

    def has_node(self, name: str) -> bool:
        canonical = self._canonical(name)
        return canonical == "0" or canonical in self._node_index

    def index_of(self, name: str) -> int:
        """Matrix index of an *existing* node (ground returns -1)."""
        canonical = self._canonical(name)
        if canonical == "0":
            return -1
        try:
            return self._node_index[canonical]
        except KeyError as exc:
            raise SimulationError(
                f"circuit {self.name!r} has no node named {name!r}"
            ) from exc

    # ------------------------------------------------------------------ #
    # element construction helpers
    # ------------------------------------------------------------------ #

    def _register(self, element: CircuitElement) -> CircuitElement:
        self.elements.append(element)
        return element

    def add_resistor(self, node_a: str, node_b: str, ohms: float, name: str = "") -> Resistor:
        """Add a linear resistor between two nodes."""
        element = Resistor(
            name=name or f"R{len(self.elements)}",
            node_a=self.node(node_a),
            node_b=self.node(node_b),
            ohms=ohms,
        )
        return self._register(element)  # type: ignore[return-value]

    def add_capacitor(
        self, node_a: str, node_b: str, farads: float, name: str = ""
    ) -> Capacitor:
        """Add a linear capacitor between two nodes."""
        element = Capacitor(
            name=name or f"C{len(self.elements)}",
            node_a=self.node(node_a),
            node_b=self.node(node_b),
            farads=farads,
        )
        return self._register(element)  # type: ignore[return-value]

    def add_voltage_source(
        self, node_pos: str, node_neg: str, voltage: float, name: str = ""
    ) -> VoltageSource:
        """Add an ideal DC voltage source (used for supply rails)."""
        element = VoltageSource(
            name=name or f"V{len(self.elements)}",
            node_a=self.node(node_pos),
            node_b=self.node(node_neg),
            voltage=voltage,
        )
        return self._register(element)  # type: ignore[return-value]

    def add_pulse_source(
        self,
        node_pos: str,
        node_neg: str,
        initial_v: float,
        pulsed_v: float,
        delay: float = 0.0,
        rise: float = 1.0e-12,
        fall: float = 1.0e-12,
        width: float = 1.0e-9,
        period: float = 0.0,
        name: str = "",
    ) -> PulseVoltageSource:
        """Add a trapezoidal pulse voltage source (input stimulus)."""
        element = PulseVoltageSource(
            name=name or f"VP{len(self.elements)}",
            node_a=self.node(node_pos),
            node_b=self.node(node_neg),
            initial_v=initial_v,
            pulsed_v=pulsed_v,
            delay=delay,
            rise=rise,
            fall=fall,
            width=width,
            period=period,
        )
        return self._register(element)  # type: ignore[return-value]

    def add_current_source(
        self, node_from: str, node_to: str, current: float, name: str = ""
    ) -> CurrentSource:
        """Add an ideal DC current source pushing current from -> to."""
        element = CurrentSource(
            name=name or f"I{len(self.elements)}",
            node_a=self.node(node_from),
            node_b=self.node(node_to),
            current=current,
        )
        return self._register(element)  # type: ignore[return-value]

    def add_mosfet(
        self,
        drain: str,
        gate: str,
        source: str,
        model: MosfetModel,
        name: str = "",
    ) -> Mosfet:
        """Add a MOSFET; polarity is taken from the attached model."""
        element = Mosfet(
            name=name or f"M{len(self.elements)}",
            drain=self.node(drain),
            gate=self.node(gate),
            source=self.node(source),
            model=model,
        )
        return self._register(element)  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # initial conditions
    # ------------------------------------------------------------------ #

    def set_initial_condition(self, node: str, voltage: float) -> None:
        """Pin a node voltage at t = 0 of a transient analysis."""
        canonical = self._canonical(node)
        if canonical == "0":
            raise SimulationError("cannot set an initial condition on ground")
        # Register the node so the IC survives even if set before elements.
        self.node(canonical)
        self.initial_conditions[canonical] = float(voltage)

    def set_initial_conditions(self, conditions: Dict[str, float]) -> None:
        """Pin several node voltages at t = 0."""
        for node, voltage in conditions.items():
            self.set_initial_condition(node, voltage)

    # ------------------------------------------------------------------ #
    # bookkeeping used by the solvers
    # ------------------------------------------------------------------ #

    def voltage_sources(self) -> List[CircuitElement]:
        """Elements that contribute an MNA branch unknown (V and pulse sources)."""
        return [e for e in self.elements if e.requires_branch()]

    def capacitors(self) -> List[Capacitor]:
        return [e for e in self.elements if isinstance(e, Capacitor)]

    def mosfets(self) -> List[Mosfet]:
        return [e for e in self.elements if isinstance(e, Mosfet)]

    def system_size(self) -> int:
        """Dimension of the MNA system: nodes plus voltage-source branches."""
        return self.node_count + len(self.voltage_sources())

    def validate(self) -> None:
        """Basic sanity checks before simulation.

        Raises :class:`SimulationError` if the circuit has no elements,
        no ground-referenced path, or duplicated element names.
        """
        if not self.elements:
            raise SimulationError(f"circuit {self.name!r} has no elements")
        names = [e.name for e in self.elements]
        if len(names) != len(set(names)):
            raise SimulationError(f"circuit {self.name!r} has duplicate element names")
        touches_ground = any(
            -1 in element.nodes() for element in self.elements
        )
        if not touches_ground:
            raise SimulationError(
                f"circuit {self.name!r} has no element connected to ground; "
                "the nodal equations would be singular"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Circuit({self.name!r}, nodes={self.node_count}, "
            f"elements={len(self.elements)})"
        )
