"""Transient analysis (backward Euler with per-step Newton iteration).

The transient engine integrates the circuit equations with a fixed
timestep backward-Euler scheme.  Backward Euler is only first-order
accurate but unconditionally stable and strongly damped, which is the
right trade-off for free-running ring oscillators: the waveform shape
(and therefore the extracted period) converges quickly as the timestep
shrinks, and there is no risk of trapezoidal ringing artefacts.

Oscillators have no stable DC operating point to start from (the DC
solution is the metastable mid-rail point), so the ring-oscillator
builder provides explicit initial conditions that place the ring in a
valid travelling-wave state; :func:`simulate_transient` honours those
via :attr:`repro.circuit.netlist.Circuit.initial_conditions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .dc import DCOptions, _newton_solve, solve_dc
from .elements import SimulationError
from .netlist import Circuit
from .waveform import Waveform

__all__ = ["TransientOptions", "TransientResult", "simulate_transient"]


@dataclass(frozen=True)
class TransientOptions:
    """Numerical knobs of the transient solver.

    Attributes
    ----------
    timestep:
        Fixed integration timestep (seconds).
    max_newton_iterations:
        Newton iterations allowed per timestep.
    newton_tolerance_v:
        Voltage convergence tolerance per timestep.
    use_dc_start:
        If true and the circuit has no explicit initial conditions, a DC
        operating point is computed and used as the starting state.
    store_every:
        Keep every n-th timestep in the result (1 keeps everything).
    """

    timestep: float = 1.0e-12
    max_newton_iterations: int = 60
    newton_tolerance_v: float = 1.0e-6
    use_dc_start: bool = True
    store_every: int = 1

    def __post_init__(self) -> None:
        if self.timestep <= 0.0:
            raise SimulationError("timestep must be positive")
        if self.max_newton_iterations <= 0:
            raise SimulationError("max_newton_iterations must be positive")
        if self.newton_tolerance_v <= 0.0:
            raise SimulationError("newton_tolerance_v must be positive")
        if self.store_every < 1:
            raise SimulationError("store_every must be >= 1")


@dataclass
class TransientResult:
    """Node-voltage waveforms produced by a transient analysis."""

    circuit_name: str
    times: np.ndarray
    voltages: Dict[str, np.ndarray]
    timestep: float
    newton_iterations_total: int

    def waveform(self, node: str) -> Waveform:
        """Waveform of one node by name."""
        key = node.strip().lower()
        if key in ("0", "gnd", "vss", "ground"):
            return Waveform(self.times, np.zeros_like(self.times), name="gnd")
        try:
            return Waveform(self.times, self.voltages[key], name=key)
        except KeyError as exc:
            raise SimulationError(
                f"transient result has no node named {node!r}"
            ) from exc

    def node_names(self) -> List[str]:
        return sorted(self.voltages)

    @property
    def duration(self) -> float:
        return float(self.times[-1] - self.times[0])


def _initial_state(
    circuit: Circuit, options: TransientOptions, supplies_hint: float
) -> np.ndarray:
    """Build the t = 0 solution vector (node voltages + branch currents)."""
    n_nodes = circuit.node_count
    size = circuit.system_size()
    state = np.zeros(size)

    if circuit.initial_conditions:
        # Start from mid-rail and overwrite the pinned nodes.
        state[:n_nodes] = 0.5 * supplies_hint
        for node, voltage in circuit.initial_conditions.items():
            index = circuit.index_of(node)
            if index >= 0:
                state[index] = voltage
        return state

    if options.use_dc_start:
        dc = solve_dc(circuit)
        for index, name in enumerate(circuit.node_names()):
            state[index] = dc.node_voltages[name]
        for offset, source in enumerate(circuit.voltage_sources()):
            state[n_nodes + offset] = dc.branch_currents[source.name]
        return state

    state[:n_nodes] = 0.5 * supplies_hint
    return state


def simulate_transient(
    circuit: Circuit,
    duration: float,
    options: TransientOptions = TransientOptions(),
    record_nodes: Optional[Sequence[str]] = None,
) -> TransientResult:
    """Integrate the circuit for ``duration`` seconds.

    Parameters
    ----------
    circuit:
        The circuit to simulate; its ``initial_conditions`` (if any)
        define the starting state.
    duration:
        Total simulated time in seconds.
    options:
        Solver options (timestep, Newton limits, decimation).
    record_nodes:
        Node names to record; all non-ground nodes by default.

    Returns
    -------
    TransientResult
        Recorded node waveforms.

    Raises
    ------
    SimulationError
        If a timestep fails to converge even after the internal retry
        with a reduced step.
    """
    circuit.validate()
    if duration <= 0.0:
        raise SimulationError("duration must be positive")
    steps = int(np.ceil(duration / options.timestep))
    if steps < 2:
        raise SimulationError("duration must span at least two timesteps")

    n_nodes = circuit.node_count
    names = circuit.node_names()
    if record_nodes is None:
        recorded = list(names)
    else:
        recorded = []
        for node in record_nodes:
            canonical = node.strip().lower()
            circuit.index_of(canonical)  # raises on unknown node
            recorded.append(canonical)

    supplies = [
        abs(getattr(s, "voltage", getattr(s, "pulsed_v", 0.0)))
        for s in circuit.voltage_sources()
    ]
    supplies_hint = max(supplies) if supplies else 1.0

    dc_options = DCOptions(
        max_iterations=options.max_newton_iterations,
        tolerance_v=options.newton_tolerance_v,
        max_update_v=0.5,
    )

    state = _initial_state(circuit, options, supplies_hint)

    stored_times: List[float] = [0.0]
    stored_states: List[np.ndarray] = [state[:n_nodes].copy()]
    newton_total = 0

    time = 0.0
    for step in range(1, steps + 1):
        time = step * options.timestep
        previous_nodes = state[:n_nodes].copy()

        solution, iterations, converged = _newton_solve(
            circuit,
            state,
            dc_options,
            source_scale=1.0,
            previous_voltages=previous_nodes,
            timestep=options.timestep,
            time=time,
        )
        newton_total += iterations

        if not converged:
            # Retry the step with two half steps before giving up.
            half = options.timestep / 2.0
            intermediate, it1, ok1 = _newton_solve(
                circuit, state, dc_options, 1.0, previous_nodes, half,
                time=time - half,
            )
            newton_total += it1
            if ok1:
                solution, it2, converged = _newton_solve(
                    circuit,
                    intermediate,
                    dc_options,
                    1.0,
                    intermediate[:n_nodes].copy(),
                    half,
                    time=time,
                )
                newton_total += it2
            if not converged:
                raise SimulationError(
                    f"transient step at t={time:.3e}s failed to converge for "
                    f"circuit {circuit.name!r}"
                )

        state = solution
        if step % options.store_every == 0 or step == steps:
            stored_times.append(time)
            stored_states.append(state[:n_nodes].copy())

    times = np.asarray(stored_times)
    stacked = np.vstack(stored_states)
    voltages = {
        name: stacked[:, circuit.index_of(name)].copy() for name in recorded
    }
    return TransientResult(
        circuit_name=circuit.name,
        times=times,
        voltages=voltages,
        timestep=options.timestep,
        newton_iterations_total=newton_total,
    )
