"""Transistor-level circuit simulation (MNA, DC and transient)."""

from .elements import (
    Capacitor,
    CircuitElement,
    CurrentSource,
    Mosfet,
    PulseVoltageSource,
    Resistor,
    SimulationError,
    StampContext,
    VoltageSource,
)
from .netlist import Circuit
from .dc import DCOptions, DCResult, solve_dc
from .transient import TransientOptions, TransientResult, simulate_transient
from .waveform import Waveform, propagation_delay

__all__ = [
    "Capacitor",
    "CircuitElement",
    "CurrentSource",
    "Mosfet",
    "PulseVoltageSource",
    "Resistor",
    "SimulationError",
    "StampContext",
    "VoltageSource",
    "Circuit",
    "DCOptions",
    "DCResult",
    "solve_dc",
    "TransientOptions",
    "TransientResult",
    "simulate_transient",
    "Waveform",
    "propagation_delay",
]
