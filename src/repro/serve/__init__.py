"""repro.serve — the sweep engine as a persistent network service.

The batch workflow (:mod:`repro.engine`) pays the full evaluation cost
on every invocation; a *service* amortizes it across requests.  This
package wraps the engine in a long-lived asyncio server speaking
newline-delimited JSON over TCP (stdlib only), with three layers that
turn repeat and concurrent traffic into cheap traffic:

content addressing (:mod:`repro.serve.spec`)
    A sweep spec's canonical form is its round trip through the real
    builder — ``Sweep.from_dict(payload).to_dict()`` — so validation
    and normalization are one step; :func:`canonical_key` hashes the
    canonical encoding with SHA-256.  Semantically identical requests
    collide on the key, however they were spelled.

result caching (:mod:`repro.serve.cache`)
    A byte-bounded LRU over encoded result payloads, keyed on the
    canonical hash, with hit / miss / eviction counters surfaced by the
    ``stats`` op.  Identical sweeps in flight share one evaluation
    (single-flight).

micro-batching (:mod:`repro.serve.batcher`)
    Concurrent point queries (base spec + one temperature) wait a few
    milliseconds, stack onto one shared temperature axis, evaluate as
    a single broadcast, and each receives its slice — bit-identical to
    a solo evaluation because the engine is elementwise in temperature.

Oversized results stream tile by tile
(:func:`~repro.engine.tiling.plan_result_tiles`); the synchronous
:class:`ServeClient` reassembles them transparently.  Start a server
with ``repro-serve`` (or ``python -m repro.serve``), embed one in-
process with :func:`start_server_thread`, and configure either through
the ``REPRO_SERVE_*`` environment knobs documented in
:mod:`repro.serve.server`.
"""

from .batcher import DEFAULT_BATCH_WINDOW_MS, MicroBatcher
from .cache import DEFAULT_CACHE_BYTES, ResultCache
from .client import ServeClient, ServeError
from .server import (
    BATCH_WINDOW_ENV,
    CACHE_BYTES_ENV,
    DEFAULT_HOST,
    DEFAULT_PORT,
    DEFAULT_STREAM_THRESHOLD_BYTES,
    HOST_ENV,
    PORT_ENV,
    STREAM_THRESHOLD_ENV,
    ServerHandle,
    SweepServer,
    main,
    start_server_thread,
)
from .spec import canonical_key, canonical_spec, encode_canonical

__all__ = [
    "BATCH_WINDOW_ENV",
    "CACHE_BYTES_ENV",
    "DEFAULT_BATCH_WINDOW_MS",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_STREAM_THRESHOLD_BYTES",
    "HOST_ENV",
    "MicroBatcher",
    "PORT_ENV",
    "ResultCache",
    "STREAM_THRESHOLD_ENV",
    "ServeClient",
    "ServeError",
    "ServerHandle",
    "SweepServer",
    "canonical_key",
    "canonical_spec",
    "encode_canonical",
    "main",
    "start_server_thread",
]
