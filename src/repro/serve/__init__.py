"""repro.serve — the sweep engine as a persistent network service.

The batch workflow (:mod:`repro.engine`) pays the full evaluation cost
on every invocation; a *service* amortizes it across requests.  This
package wraps the engine in a long-lived asyncio server speaking
newline-delimited JSON over TCP (stdlib only), with four layers that
turn repeat and concurrent traffic into cheap traffic:

content addressing (:mod:`repro.serve.spec`)
    A sweep spec's canonical form is its round trip through the real
    builder — ``Sweep.from_dict(payload).to_dict()`` — so validation
    and normalization are one step; :func:`canonical_key` hashes the
    canonical encoding with SHA-256.  Semantically identical requests
    collide on the key, however they were spelled.

result caching (:mod:`repro.serve.cache`)
    A byte-bounded memory LRU over encoded result payloads, keyed on
    the canonical hash, fronting an optional **disk tier**
    (:class:`DiskCache`, ``REPRO_SERVE_CACHE_DIR``): one atomic file
    per entry, corruption-safe loads, mtime-LRU eviction — so a
    restarted server, or a second host sharing the directory, serves
    previously computed sweeps with zero evaluations.  Identical
    sweeps in flight share one evaluation (single-flight, across
    workers).

coalescing (:mod:`repro.serve.batcher`)
    Concurrent temperature-split work — point queries *and* sweeps
    whose specs differ only along the temperature axis — waits a few
    milliseconds, stacks onto one shared union temperature axis,
    evaluates as a single broadcast, and each request receives its own
    slice — bit-identical to a solo evaluation because the engine is
    elementwise in temperature.

parallel evaluation (the scheduler in :mod:`repro.serve.server`)
    A bounded priority queue (optional per-request ``priority`` /
    ``deadline_ms`` fields, ``busy`` backpressure when full) feeding
    ``REPRO_SERVE_WORKERS`` concurrent evaluation slots over one
    shared process pool, so distinct concurrent sweeps genuinely
    occupy multiple cores.

Oversized results stream tile by tile
(:func:`~repro.engine.tiling.plan_result_tiles`); the synchronous
:class:`ServeClient` reassembles them transparently and retries dead
connections with bounded exponential backoff.  Start a server with
``repro-serve`` (or ``python -m repro.serve``), embed one in-process
with :func:`start_server_thread`, and configure either through the
``REPRO_SERVE_*`` environment knobs documented in
:mod:`repro.serve.server`.
"""

from .batcher import DEFAULT_BATCH_WINDOW_MS, MicroBatcher
from .cache import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_DISK_CACHE_BYTES,
    DiskCache,
    ResultCache,
)
from .client import ServeClient, ServeError
from .server import (
    BATCH_WINDOW_ENV,
    CACHE_BYTES_ENV,
    CACHE_DIR_ENV,
    DEFAULT_HOST,
    DEFAULT_PORT,
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_STREAM_THRESHOLD_BYTES,
    DEFAULT_WORKERS,
    DISK_CACHE_BYTES_ENV,
    HOST_ENV,
    PORT_ENV,
    QUEUE_DEPTH_ENV,
    STREAM_THRESHOLD_ENV,
    ServerHandle,
    SweepServer,
    WORKERS_ENV,
    main,
    start_server_thread,
)
from .spec import canonical_key, canonical_spec, encode_canonical, split_temperature

__all__ = [
    "BATCH_WINDOW_ENV",
    "CACHE_BYTES_ENV",
    "CACHE_DIR_ENV",
    "DEFAULT_BATCH_WINDOW_MS",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_DISK_CACHE_BYTES",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_STREAM_THRESHOLD_BYTES",
    "DEFAULT_WORKERS",
    "DISK_CACHE_BYTES_ENV",
    "DiskCache",
    "HOST_ENV",
    "MicroBatcher",
    "PORT_ENV",
    "QUEUE_DEPTH_ENV",
    "ResultCache",
    "STREAM_THRESHOLD_ENV",
    "ServeClient",
    "ServeError",
    "ServerHandle",
    "SweepServer",
    "WORKERS_ENV",
    "canonical_key",
    "canonical_spec",
    "encode_canonical",
    "main",
    "split_temperature",
    "start_server_thread",
]
