"""End-to-end service smoke: one server, one client, one round trip.

``python -m repro.serve.smoke`` is the CI fast-lane's service check: it
starts a real :class:`~repro.serve.server.SweepServer` on an ephemeral
port (in-process, on a daemon thread), drives it with the synchronous
client, and asserts the service contract end to end —

* a served sweep is byte-identical (post ``to_dict``) to the same
  sweep evaluated locally,
* the repeat request is answered from the cache with zero new engine
  evaluations,
* a point query agrees with the sweep's slice,
* ``shutdown`` stops the server cleanly,
* and, when ``REPRO_SERVE_CACHE_DIR`` is set, a **restarted** server
  on the same cache directory serves the repeat from disk with zero
  evaluations — the warm-restart contract.

The server honors every ``REPRO_SERVE_*`` knob, so the CI lane also
runs this smoke with ``REPRO_SERVE_WORKERS=2`` to cover the
multi-worker scheduler path.  Exit code 0 means the service path works
on this interpreter; any assertion or hang (the thread join is
bounded) fails the step.
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional

from ..engine.sweep import Axis, Sweep
from ..oscillator import RingConfiguration
from ..tech import CMOS035
from .client import ServeClient
from .server import CACHE_DIR_ENV, start_server_thread

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    del argv  # no options: the smoke is deliberately fixed
    sweep = (
        Sweep(technology=CMOS035, configuration=RingConfiguration.parse("5INV"))
        .over(Axis.temperature([-40.0, 25.0, 125.0]))
        .observe("period")
    )
    local = sweep.run().to_dict()

    handle = start_server_thread(port=0)
    try:
        with ServeClient("127.0.0.1", handle.port) as client:
            pong = client.ping()
            assert pong["version"] == Sweep.SCHEMA_VERSION, pong

            served = client.sweep_payload(sweep)
            assert served == local, "served result differs from local evaluation"

            before = client.stats()["evaluations"]
            repeat = client.sweep_payload(sweep)
            after = client.stats()
            assert repeat == local, "cached result differs from local evaluation"
            assert after["evaluations"] == before, (
                f"repeat request re-evaluated: {before} -> {after['evaluations']}"
            )
            assert after["cache"]["hits"] >= 1, after["cache"]

            base = Sweep(
                technology=CMOS035, configuration=RingConfiguration.parse("5INV")
            ).observe("period")
            point = client.point(base, 25.0)
            assert point.select(temperature=25.0).item() == (
                sweep.run().select(temperature=25.0).item()
            ), "point query disagrees with the sweep slice"

            client.shutdown()
    finally:
        handle.stop()
    alive = handle.thread is not None and handle.thread.is_alive()
    assert not alive, "server thread survived shutdown"

    checks = "round trip, cache hit, point query, shutdown"
    if os.environ.get(CACHE_DIR_ENV):
        # Warm restart: a fresh server process state over the same disk
        # cache must serve the repeat without a single evaluation.
        restarted = start_server_thread(port=0)
        try:
            with ServeClient("127.0.0.1", restarted.port) as client:
                warm = client.sweep_payload(sweep)
                assert warm == local, "disk-cached result differs from local"
                stats = client.stats()
                assert stats["evaluations"] == 0, (
                    f"warm restart re-evaluated: {stats['evaluations']}"
                )
                assert stats["cache"]["disk"]["hits"] >= 1, stats["cache"]
                client.shutdown()
        finally:
            restarted.stop()
        checks += ", warm restart from disk"
    print(f"repro.serve smoke: ok ({checks})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
