"""Micro-batching of concurrent point queries onto one broadcast.

The dominant traffic pattern of a sensor-evaluation service is the
*point query*: "this spec, at this one temperature" — a request whose
marginal cost inside the engine is nearly zero (the whole delay stack
is elementwise in temperature, so evaluating 32 temperatures costs
almost the same one broadcast as evaluating 1) but whose fixed cost
(ring construction, population stacking) dominates when each point is
evaluated alone.  The micro-batcher converts concurrency into that
almost-free axis: the first point query for a base spec opens a batch
and starts a short window; every compatible query arriving inside the
window joins it; at the deadline the batch evaluates **once**, with all
the collected temperatures stacked onto a shared ``temperature`` axis,
and each request is answered with its own slice of the shared result.

Because the engine is elementwise in temperature (the tiling layer's
bitwise-identity guarantee, :mod:`repro.engine.tiling`), a batched
point's slice is bit-identical to what a solo evaluation of that point
would have produced — batching changes latency, never values.  (The
endpoint-fit observables couple temperatures and are rejected for
point queries upstream, in the server's request validation.)

Batches are keyed on the *base* spec's canonical hash
(:func:`repro.serve.spec.canonical_key` of the spec without its
temperature axis), so only genuinely compatible queries coalesce.
Duplicate temperatures within a batch share one grid point — the axis
stays duplicate-free as the engine requires — and each duplicate
request still receives its slice.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, List, Mapping, Tuple

from ..engine.sweep import SweepResult

__all__ = ["DEFAULT_BATCH_WINDOW_MS", "MicroBatcher"]

#: Default batching window: long enough to coalesce a concurrent burst,
#: short enough to be invisible next to an evaluation.
DEFAULT_BATCH_WINDOW_MS = 5.0


class _Batch:
    """One open batch: the shared base spec plus the queued points."""

    __slots__ = ("spec", "points")

    def __init__(self, spec: Mapping[str, Any]) -> None:
        self.spec = spec
        self.points: List[Tuple[float, asyncio.Future]] = []


class MicroBatcher:
    """Coalesce concurrent point queries per base spec, per window.

    ``evaluate`` is the async evaluation hook: it receives a serialized
    sweep payload (the base spec with the batch's stacked temperature
    axis appended) and returns the evaluated
    :class:`~repro.engine.sweep.SweepResult`.  The server passes its
    counted, thread-offloaded evaluator, so batch evaluations show up
    in the same evaluation counter as full sweeps.
    """

    def __init__(
        self,
        evaluate: Callable[[Dict[str, Any]], Awaitable[SweepResult]],
        window_ms: float = DEFAULT_BATCH_WINDOW_MS,
    ) -> None:
        if float(window_ms) < 0.0:
            raise ValueError("window_ms must be non-negative")
        self._evaluate = evaluate
        self.window_ms = float(window_ms)
        self._open: Dict[str, _Batch] = {}
        # Counters, reported via the server's ``stats`` op.
        self.batches = 0
        self.batched_points = 0
        self.largest_batch = 0

    async def submit(
        self, base_key: str, spec: Mapping[str, Any], temperature_c: float
    ) -> SweepResult:
        """Queue one point query; resolves to its slice of the batch result.

        The returned result keeps a length-1 temperature axis, so it is
        exactly what a solo sweep of ``spec`` + ``temperature=[t]``
        would have returned.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        batch = self._open.get(base_key)
        if batch is None:
            batch = _Batch(spec)
            self._open[base_key] = batch
            loop.create_task(self._flush_later(base_key))
        batch.points.append((float(temperature_c), future))
        return await future

    async def _flush_later(self, base_key: str) -> None:
        await asyncio.sleep(self.window_ms / 1000.0)
        batch = self._open.pop(base_key)
        # Stack the batch onto one shared, duplicate-free temperature
        # axis (sorted: the canonical grid order, and what makes the
        # batch spec itself deterministic for a given point set).
        temperatures = sorted({t for t, _ in batch.points})
        payload = dict(batch.spec)
        payload["axes"] = list(payload.get("axes", ())) + [
            {"name": "temperature", "coordinates": temperatures}
        ]
        self.batches += 1
        self.batched_points += len(batch.points)
        self.largest_batch = max(self.largest_batch, len(batch.points))
        try:
            result = await self._evaluate(payload)
        except Exception as error:  # noqa: BLE001 - forwarded per request
            for _, future in batch.points:
                if not future.done():
                    future.set_exception(error)
            return
        for temperature, future in batch.points:
            if not future.done():  # pragma: no branch - cancelled clients
                future.set_result(result.select(temperature=[temperature]))

    def stats(self) -> Dict[str, Any]:
        return {
            "batches": self.batches,
            "batched_points": self.batched_points,
            "largest_batch": self.largest_batch,
            "window_ms": self.window_ms,
        }
