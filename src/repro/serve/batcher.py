"""Coalescing of concurrent temperature-split work onto one broadcast.

The dominant traffic pattern of a sensor-evaluation service is
temperature-split repetition: *point queries* ("this spec, at this one
temperature") and *overlapping sweeps* ("this spec, over my grid" from
several experiment fan-outs whose grids differ but whose base spec is
identical).  Both have near-zero marginal cost inside the engine — the
whole delay stack is elementwise in temperature, so evaluating 32
temperatures costs almost the same one broadcast as evaluating 1 — but
full fixed cost (ring construction, population stacking) when each
request is evaluated alone.

The batcher converts concurrency into that almost-free axis.  The
first request for a base spec (the canonical spec *minus* its
temperature axis) opens a batch and starts a short window; every
compatible request arriving inside the window joins it; at the
deadline the batch evaluates **once**, with the union of all the
collected temperature grids stacked onto one shared, sorted,
duplicate-free ``temperature`` axis, and each request is answered with
its own slice of the shared result
(:meth:`~repro.engine.sweep.SweepResult.select` with the request's own
grid, in the request's own order).

Because the engine is elementwise in temperature (the tiling layer's
bitwise-identity guarantee, :mod:`repro.engine.tiling`), a coalesced
request's slice is bit-identical to what a solo evaluation would have
produced — batching changes latency, never values.  (The endpoint-fit
observables couple temperatures and are kept out of the batcher
upstream, in the server's request routing; so are sweeps without an
explicit temperature axis, whose grid is the engine's to choose.)

Batches are keyed on the *base* spec's canonical hash, so only
genuinely compatible requests coalesce — a point query and a full
sweep over the same base land in the same batch.  Scheduling metadata
rides along: a batch evaluates at the highest member priority, and
with the most lenient member deadline (none at all if any member has
none), so coalescing can only ever improve a neighbour's service.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..engine.sweep import SweepResult

__all__ = ["DEFAULT_BATCH_WINDOW_MS", "MicroBatcher"]

#: Default batching window: long enough to coalesce a concurrent burst,
#: short enough to be invisible next to an evaluation.
DEFAULT_BATCH_WINDOW_MS = 5.0


class _Member:
    """One coalesced request: its temperature grid and its future."""

    __slots__ = ("temperatures", "future", "priority", "deadline")

    def __init__(
        self,
        temperatures: Tuple[float, ...],
        future: asyncio.Future,
        priority: int,
        deadline: Optional[float],
    ) -> None:
        self.temperatures = temperatures
        self.future = future
        self.priority = priority
        self.deadline = deadline


class _Batch:
    """One open batch: the shared base spec plus the queued members."""

    __slots__ = ("spec", "members", "timer")

    def __init__(self, spec: Mapping[str, Any]) -> None:
        self.spec = spec
        self.members: List[_Member] = []
        self.timer: Optional[asyncio.Task] = None


class MicroBatcher:
    """Coalesce concurrent temperature-split requests per base spec.

    ``evaluate`` is the async evaluation hook: it receives a serialized
    sweep payload (the base spec with the batch's union temperature
    axis appended) plus the batch's aggregated ``priority`` and
    ``deadline`` keywords, and returns the evaluated
    :class:`~repro.engine.sweep.SweepResult`.  The server passes its
    scheduler-routed, counted evaluator, so batch evaluations share
    the same worker pool, queue and evaluation counter as everything
    else.
    """

    def __init__(
        self,
        evaluate: Callable[..., Awaitable[SweepResult]],
        window_ms: float = DEFAULT_BATCH_WINDOW_MS,
    ) -> None:
        if float(window_ms) < 0.0:
            raise ValueError("window_ms must be non-negative")
        self._evaluate = evaluate
        self.window_ms = float(window_ms)
        self._open: Dict[str, _Batch] = {}
        self._draining: Optional[BaseException] = None
        # Counters, reported via the server's ``stats`` op.
        self.batches = 0
        self.batched_points = 0
        self.coalesced_sweeps = 0
        self.largest_batch = 0

    async def submit(
        self,
        base_key: str,
        spec: Mapping[str, Any],
        temperatures: Sequence[float],
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> SweepResult:
        """Queue one request; resolves to its slice of the batch result.

        ``temperatures`` is the request's own grid — one entry for a
        point query, the full grid for a coalesced sweep.  The returned
        result keeps its temperature axis restricted to exactly that
        grid, in that order, so it is exactly what a solo sweep of
        ``spec`` + ``temperature=temperatures`` would have returned.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        if self._draining is not None:
            future.set_exception(self._draining)
            return await future
        batch = self._open.get(base_key)
        if batch is None:
            batch = _Batch(spec)
            self._open[base_key] = batch
            batch.timer = loop.create_task(self._flush_later(base_key))
        grid = tuple(float(t) for t in temperatures)
        batch.members.append(_Member(grid, future, int(priority), deadline))
        if len(grid) == 1:
            self.batched_points += 1
        else:
            self.coalesced_sweeps += 1
        return await future

    async def _flush_later(self, base_key: str) -> None:
        await asyncio.sleep(self.window_ms / 1000.0)
        batch = self._open.pop(base_key, None)
        if batch is None:  # pragma: no cover - drained underneath the timer
            return
        await self._flush(batch)

    async def _flush(self, batch: _Batch) -> None:
        # Stack the batch onto one shared, duplicate-free temperature
        # axis (sorted: the canonical grid order, and what makes the
        # batch spec itself deterministic for a given member set).
        union = sorted({t for member in batch.members for t in member.temperatures})
        payload = dict(batch.spec)
        payload["axes"] = list(payload.get("axes", ())) + [
            {"name": "temperature", "coordinates": union}
        ]
        priority = max(member.priority for member in batch.members)
        deadlines = [member.deadline for member in batch.members]
        deadline = None if any(d is None for d in deadlines) else max(deadlines)
        self.batches += 1
        self.largest_batch = max(self.largest_batch, len(batch.members))
        try:
            result = await self._evaluate(payload, priority=priority, deadline=deadline)
        except Exception as error:  # noqa: BLE001 - forwarded per request
            for member in batch.members:
                if not member.future.done():
                    member.future.set_exception(error)
            return
        for member in batch.members:
            if not member.future.done():  # pragma: no branch - cancelled clients
                member.future.set_result(
                    result.select(temperature=list(member.temperatures))
                )

    def drain(self, error: BaseException) -> int:
        """Fail every pending member with ``error`` and refuse new work.

        The server's graceful-shutdown hook: open batch windows are
        cancelled and their members resolved immediately with the
        structured shutting-down error — no future is ever abandoned
        to hang a client through the shutdown race.  Returns the
        number of members failed.
        """
        self._draining = error
        failed = 0
        for batch in self._open.values():
            if batch.timer is not None:
                batch.timer.cancel()
            for member in batch.members:
                if not member.future.done():
                    member.future.set_exception(error)
                    failed += 1
        self._open.clear()
        return failed

    def stats(self) -> Dict[str, Any]:
        return {
            "batches": self.batches,
            "batched_points": self.batched_points,
            "coalesced_sweeps": self.coalesced_sweeps,
            "largest_batch": self.largest_batch,
            "window_ms": self.window_ms,
        }
