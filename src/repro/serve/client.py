"""Synchronous client for the sweep service.

A thin blocking wrapper over one TCP connection: it speaks the NDJSON
protocol of :mod:`repro.serve.protocol`, raises :class:`ServeError`
(carrying the structured error ``code``) for server-side rejections,
and reassembles tile-streamed results transparently, so callers always
see the same thing — a result payload byte-identical (post
``to_dict``) to what a local ``Sweep.run()`` would have produced, or
the re-hydrated :class:`~repro.engine.sweep.SweepResult` itself.

Transport failures are structured, never raw socket exceptions: a
server that is down gets a bounded connect-retry loop (exponential
backoff) before ``ServeError("transport", ...)``; a server that stops
answering surfaces as ``ServeError("timeout", ...)`` after the socket
timeout instead of an indefinite hang; and an idempotent request whose
connection died before any response byte arrived is retried once over
a fresh connection (``shutdown`` is never retried — a lost ack may
still have stopped the server).

The client is deliberately stdlib-synchronous (``socket`` +
``makefile``): it is what the tests, the example, the benchmark, and
the runner's smoke path use, none of which want an event loop of
their own.  One client = one connection; concurrency comes from
running several clients (the micro-batcher coalesces across
connections, not within one).
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from ..engine.sweep import Sweep, SweepError, SweepResult

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A structured rejection from the server (or a transport failure).

    ``code`` is the stable protocol error code
    (:data:`repro.serve.protocol.E_BAD_SPEC` et al.), or one of two
    client-side codes: ``"transport"`` for connection-level failures
    and ``"timeout"`` for a server that accepted the request but never
    answered within the socket timeout.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServeClient:
    """One blocking connection to a :class:`~repro.serve.server.SweepServer`.

    ``connect_retries`` failed connection attempts are retried with
    exponential backoff starting at ``retry_backoff_s`` (so a client
    racing a server's startup, or a server mid-restart, connects as
    soon as the socket binds); exhaustion raises a structured
    ``ServeError("transport", ...)`` instead of a raw
    ``ConnectionRefusedError``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7753,
        timeout: float = 60.0,
        connect_retries: int = 3,
        retry_backoff_s: float = 0.05,
    ) -> None:
        if int(connect_retries) < 0:
            raise SweepError("connect_retries must be non-negative")
        if float(retry_backoff_s) < 0.0:
            raise SweepError("retry_backoff_s must be non-negative")
        self._host = host
        self._port = int(port)
        self._timeout = float(timeout)
        self._connect_retries = int(connect_retries)
        self._retry_backoff_s = float(retry_backoff_s)
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._connect()

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #

    def _connect(self) -> None:
        """(Re)open the connection, with bounded exponential backoff."""
        self._teardown()
        backoff = self._retry_backoff_s
        attempts = self._connect_retries + 1
        for attempt in range(attempts):
            try:
                self._sock = socket.create_connection(
                    (self._host, self._port), timeout=self._timeout
                )
                self._file = self._sock.makefile("rwb")
                return
            except OSError as error:
                if attempt + 1 >= attempts:
                    raise ServeError(
                        "transport",
                        f"could not connect to {self._host}:{self._port} after "
                        f"{attempts} attempt(s): {error}",
                    ) from error
                time.sleep(backoff)
                backoff *= 2.0

    def _teardown(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - already dead
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already dead
                pass
            self._sock = None

    def _read_line(self) -> Any:
        try:
            line = self._file.readline()
        except socket.timeout as error:
            raise ServeError(
                "timeout",
                f"no response from {self._host}:{self._port} within "
                f"{self._timeout} s",
            ) from error
        if not line:
            raise ServeError("transport", "server closed the connection")
        try:
            return json.loads(line.decode("utf-8"))
        except ValueError as error:  # pragma: no cover - server bug guard
            raise ServeError("transport", f"unparseable response line: {error}")

    def _request(
        self, message: Mapping[str, Any], retry: bool = True
    ) -> Dict[str, Any]:
        """Send one request; return its ok-envelope (streams reassembled).

        A request whose connection broke before *any* response byte
        arrived is retried once over a fresh connection when ``retry``
        — safe for every idempotent op (the server's result cache makes
        a replayed sweep/point free); ``shutdown`` passes
        ``retry=False``.
        """
        try:
            return self._round_trip(message)
        except ServeError as error:
            if not retry or error.code != "transport":
                raise
            self._connect()
            return self._round_trip(message)

    def _round_trip(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        try:
            self._file.write(
                json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"
            )
            self._file.flush()
        except OSError as error:
            raise ServeError("transport", f"send failed: {error}") from error
        response = self._read_line()
        if not isinstance(response, dict):  # pragma: no cover - server bug guard
            raise ServeError("transport", f"malformed response: {response!r}")
        if not response.get("ok", False):
            error = response.get("error") or {}
            raise ServeError(
                error.get("code", "unknown"), error.get("message", "unknown error")
            )
        if response.get("stream"):
            response["result"] = self._read_stream(response)
            del response["stream"]
        return response

    def _read_stream(self, header: Mapping[str, Any]) -> Dict[str, Any]:
        """Reassemble a tile stream into one result payload.

        Tiles are positional slices of the full tensor
        (:meth:`repro.engine.tiling.Tile.slices` semantics), so
        reassembly is plain slice assignment into an empty array.
        """
        meta = header["meta"]
        dims = tuple(meta["dims"])
        shape = tuple(len(meta["coords"][name]) for name in dims)
        dtype = meta.get("dtype", "float64")
        values = np.empty(shape, dtype=dtype)
        seen = 0
        while True:
            line = self._read_line()
            if line.get("done"):
                break
            bounds = {str(name): (int(start), int(stop)) for name, start, stop in line["bounds"]}
            expression = tuple(
                slice(*bounds[name]) if name in bounds else slice(None)
                for name in dims
            )
            values[expression] = np.asarray(line["values"], dtype=dtype)
            seen += 1
        expected = int(header.get("tile_count", seen))
        if seen != expected:
            raise ServeError(
                "transport", f"tile stream carried {seen} tiles, expected {expected}"
            )
        return {
            "version": meta["version"],
            "observable": meta["observable"],
            "dims": list(dims),
            "coords": meta["coords"],
            "dtype": dtype,
            "values": values.tolist(),
        }

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def ping(self) -> Dict[str, Any]:
        return self._request({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        return self._request({"op": "stats"})["stats"]

    def sweep_payload(
        self,
        spec: Union[Sweep, Mapping[str, Any]],
        priority: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """The served result payload (``SweepResult.to_dict`` form)."""
        message: Dict[str, Any] = {"op": "sweep", "spec": _spec_payload(spec)}
        if priority is not None:
            message["priority"] = int(priority)
        if deadline_ms is not None:
            message["deadline_ms"] = float(deadline_ms)
        response = self._request(message)
        return response["result"]

    def sweep(
        self,
        spec: Union[Sweep, Mapping[str, Any]],
        priority: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> SweepResult:
        """Evaluate a full sweep remotely; returns the re-hydrated result."""
        return SweepResult.from_dict(
            self.sweep_payload(spec, priority=priority, deadline_ms=deadline_ms)
        )

    def point_payload(
        self,
        spec: Union[Sweep, Mapping[str, Any]],
        temperature_c: float,
        priority: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        message: Dict[str, Any] = {
            "op": "point",
            "spec": _spec_payload(spec),
            "temperature_c": float(temperature_c),
        }
        if priority is not None:
            message["priority"] = int(priority)
        if deadline_ms is not None:
            message["deadline_ms"] = float(deadline_ms)
        response = self._request(message)
        return response["result"]

    def point(
        self,
        spec: Union[Sweep, Mapping[str, Any]],
        temperature_c: float,
        priority: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> SweepResult:
        """One micro-batchable point query (base spec + one temperature)."""
        return SweepResult.from_dict(
            self.point_payload(
                spec, temperature_c, priority=priority, deadline_ms=deadline_ms
            )
        )

    def shutdown(self) -> None:
        """Stop the server cleanly (the connection closes afterwards).

        Never retried: a lost acknowledgement may still have stopped
        the server, and replaying the op against a freshly restarted
        one would stop the wrong instance.
        """
        self._request({"op": "shutdown"}, retry=False)

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _spec_payload(spec: Union[Sweep, Mapping[str, Any]]) -> Mapping[str, Any]:
    if isinstance(spec, Sweep):
        return spec.to_dict()
    if isinstance(spec, Mapping):
        return spec
    raise SweepError(
        f"spec must be a Sweep or a serialized spec mapping, got "
        f"{type(spec).__name__}"
    )
