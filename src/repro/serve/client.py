"""Synchronous client for the sweep service.

A thin blocking wrapper over one TCP connection: it speaks the NDJSON
protocol of :mod:`repro.serve.protocol`, raises :class:`ServeError`
(carrying the structured error ``code``) for server-side rejections,
and reassembles tile-streamed results transparently, so callers always
see the same thing — a result payload byte-identical (post
``to_dict``) to what a local ``Sweep.run()`` would have produced, or
the re-hydrated :class:`~repro.engine.sweep.SweepResult` itself.

The client is deliberately stdlib-synchronous (``socket`` +
``makefile``): it is what the tests, the example, the benchmark, and
the runner's smoke path use, none of which want an event loop of
their own.  One client = one connection; concurrency comes from
running several clients (the micro-batcher coalesces across
connections, not within one).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from ..engine.sweep import Sweep, SweepError, SweepResult

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A structured rejection from the server (or a transport failure).

    ``code`` is the stable protocol error code
    (:data:`repro.serve.protocol.E_BAD_SPEC` et al.), or ``"transport"``
    for connection-level failures raised client-side.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServeClient:
    """One blocking connection to a :class:`~repro.serve.server.SweepServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7753, timeout: float = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #

    def _read_line(self) -> Any:
        line = self._file.readline()
        if not line:
            raise ServeError("transport", "server closed the connection")
        try:
            return json.loads(line.decode("utf-8"))
        except ValueError as error:  # pragma: no cover - server bug guard
            raise ServeError("transport", f"unparseable response line: {error}")

    def _request(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        """Send one request; return its ok-envelope (streams reassembled)."""
        self._file.write(
            json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"
        )
        self._file.flush()
        response = self._read_line()
        if not isinstance(response, dict):  # pragma: no cover - server bug guard
            raise ServeError("transport", f"malformed response: {response!r}")
        if not response.get("ok", False):
            error = response.get("error") or {}
            raise ServeError(
                error.get("code", "unknown"), error.get("message", "unknown error")
            )
        if response.get("stream"):
            response["result"] = self._read_stream(response)
            del response["stream"]
        return response

    def _read_stream(self, header: Mapping[str, Any]) -> Dict[str, Any]:
        """Reassemble a tile stream into one result payload.

        Tiles are positional slices of the full tensor
        (:meth:`repro.engine.tiling.Tile.slices` semantics), so
        reassembly is plain slice assignment into an empty array.
        """
        meta = header["meta"]
        dims = tuple(meta["dims"])
        shape = tuple(len(meta["coords"][name]) for name in dims)
        dtype = meta.get("dtype", "float64")
        values = np.empty(shape, dtype=dtype)
        seen = 0
        while True:
            line = self._read_line()
            if line.get("done"):
                break
            bounds = {str(name): (int(start), int(stop)) for name, start, stop in line["bounds"]}
            expression = tuple(
                slice(*bounds[name]) if name in bounds else slice(None)
                for name in dims
            )
            values[expression] = np.asarray(line["values"], dtype=dtype)
            seen += 1
        expected = int(header.get("tile_count", seen))
        if seen != expected:
            raise ServeError(
                "transport", f"tile stream carried {seen} tiles, expected {expected}"
            )
        return {
            "version": meta["version"],
            "observable": meta["observable"],
            "dims": list(dims),
            "coords": meta["coords"],
            "dtype": dtype,
            "values": values.tolist(),
        }

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def ping(self) -> Dict[str, Any]:
        return self._request({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        return self._request({"op": "stats"})["stats"]

    def sweep_payload(
        self, spec: Union[Sweep, Mapping[str, Any]]
    ) -> Dict[str, Any]:
        """The served result payload (``SweepResult.to_dict`` form)."""
        response = self._request({"op": "sweep", "spec": _spec_payload(spec)})
        return response["result"]

    def sweep(self, spec: Union[Sweep, Mapping[str, Any]]) -> SweepResult:
        """Evaluate a full sweep remotely; returns the re-hydrated result."""
        return SweepResult.from_dict(self.sweep_payload(spec))

    def point_payload(
        self, spec: Union[Sweep, Mapping[str, Any]], temperature_c: float
    ) -> Dict[str, Any]:
        response = self._request(
            {
                "op": "point",
                "spec": _spec_payload(spec),
                "temperature_c": float(temperature_c),
            }
        )
        return response["result"]

    def point(
        self, spec: Union[Sweep, Mapping[str, Any]], temperature_c: float
    ) -> SweepResult:
        """One micro-batchable point query (base spec + one temperature)."""
        return SweepResult.from_dict(self.point_payload(spec, temperature_c))

    def shutdown(self) -> None:
        """Stop the server cleanly (the connection closes afterwards)."""
        self._request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _spec_payload(spec: Union[Sweep, Mapping[str, Any]]) -> Mapping[str, Any]:
    if isinstance(spec, Sweep):
        return spec.to_dict()
    if isinstance(spec, Mapping):
        return spec
    raise SweepError(
        f"spec must be a Sweep or a serialized spec mapping, got "
        f"{type(spec).__name__}"
    )
