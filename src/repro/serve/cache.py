"""Result caching for the sweep service: a memory LRU over a disk tier.

The service's working set is "results users keep asking for", whose
sizes span four orders of magnitude (a point query's single value to a
full Monte-Carlo tensor), so the eviction budget is expressed in
*payload bytes*, not entry counts: each entry is charged the size of
its canonical JSON encoding — the same bytes a response line carries —
plus nothing else, and least-recently-*used* entries are evicted until
the budget holds.  An entry larger than the whole budget is simply not
admitted (caching it would evict everything else for a single request).

Two tiers share the canonical spec key (:func:`~repro.serve.spec.canonical_key`):

* The **memory tier** (:class:`ResultCache`) holds decoded payloads,
  answers in microseconds, and dies with the process.
* The optional **disk tier** (:class:`DiskCache`) persists one file per
  entry under a shared directory, so a restarted server — or a second
  host mounting the same directory — serves previously computed sweeps
  with zero evaluations.  Writes are atomic (write to a process-unique
  temp name, then ``os.replace``), loads are corruption-safe (any
  unreadable/unparseable/foreign file is treated as a miss and
  removed, never surfaced to a client), and the byte budget is
  enforced by LRU on file mtime (a disk hit refreshes its file's
  mtime, so recently-served entries survive eviction sweeps).

Because the disk directory outlives any single process — and may be
shared by hosts running different builds — each disk entry is a
*stamped envelope*, not a bare result payload::

    {"spec_version": <Sweep.SCHEMA_VERSION>,
     "tech_digest": <technology digest of the spec, or null>,
     "result": <serialized SweepResult>}

A load validates both stamps: an entry written under a different spec
schema (including any pre-envelope legacy file) or carrying a
different technology digest than the requesting spec is dropped and
the sweep re-evaluated — the cache can never serve a payload computed
under a different idea of the technology than the key claims.

The memory tier always fronts the disk tier: a disk hit is promoted
into memory, and every admission is written through to disk.  Both
tiers are thread-safe — the server touches them from the event loop
while evaluations complete in worker threads, and the hit/miss/eviction
counters (reported by the ``stats`` op and asserted by the service
tests) must not tear.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..engine.sweep import Sweep, SweepError, SweepResult

__all__ = ["DEFAULT_CACHE_BYTES", "DEFAULT_DISK_CACHE_BYTES", "DiskCache", "ResultCache"]

#: Default result-cache budget: 64 MiB of encoded result payloads —
#: thousands of point-query slices, or a handful of full Monte-Carlo
#: tensors.
DEFAULT_CACHE_BYTES = 64 << 20

#: Default disk-tier budget: a restart-surviving archive can afford to
#: be an order of magnitude roomier than the in-memory tier.
DEFAULT_DISK_CACHE_BYTES = 1 << 30

#: Disk-tier entries are ``<key>.json`` (the key is a SHA-256 hex
#: digest, so the name is filesystem-safe by construction); writes land
#: under a ``.tmp``-suffixed process-unique name first.
_ENTRY_SUFFIX = ".json"


class DiskCache:
    """One-file-per-entry persistent payload store under a directory.

    Entries are stamped envelopes (spec schema version + technology
    digest) around the compact JSON encoding of a result payload,
    named by their canonical spec key.  The store is safe against
    concurrent writers (atomic rename; last writer wins — both wrote
    the same bytes for the same key anyway, the key is
    content-addressed), against corruption (a partial/garbled/foreign
    file is a miss, and is deleted so it cannot fail again), and
    against staleness (an envelope whose stamps disagree with the
    requesting spec is dropped, never served).
    """

    def __init__(
        self,
        directory: str,
        max_bytes: int = DEFAULT_DISK_CACHE_BYTES,
    ) -> None:
        if int(max_bytes) < 0:
            raise SweepError("max_bytes must be non-negative")
        self.directory = str(directory)
        self.max_bytes = int(max_bytes)
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._rejected = 0
        self._stale_dropped = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + _ENTRY_SUFFIX)

    def get(
        self, key: str, tech_digest: Optional[str] = None
    ) -> Optional[Tuple[Dict[str, Any], int]]:
        """The ``(payload, stored_size)`` stored for ``key``, or None.

        ``tech_digest`` is the technology digest of the *requesting*
        spec (None for a spec with no registered technology reference);
        an entry stamped with any other digest — or written under a
        different spec schema version, including pre-envelope legacy
        files — is stale: it is dropped and the caller re-evaluates.

        A hit refreshes the entry file's mtime — the disk tier's LRU
        clock — so entries the service keeps serving are the last to
        be evicted.  Any failure to read or validate the file (torn
        write from a crashed process, disk corruption, a stray foreign
        file under the shared directory) is likewise a miss: the
        offender is removed, so a bad file can never crash the server
        or poison a response.
        """
        path = self._path(key)
        stale = False
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
            envelope = json.loads(raw.decode("utf-8"))
            if not isinstance(envelope, dict) or "result" not in envelope:
                raise ValueError("not a stamped cache envelope")
            if (
                envelope.get("spec_version") != Sweep.SCHEMA_VERSION
                or envelope.get("tech_digest") != tech_digest
            ):
                stale = True
                raise ValueError("stale cache envelope")
            payload = envelope["result"]
            if not _looks_like_result(payload):
                raise ValueError("not a serialized sweep result")
        except FileNotFoundError:
            with self._lock:
                self._misses += 1
            return None
        except (OSError, ValueError):
            # Corruption/staleness-safe load: drop the entry and miss.
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - racing cleanup
                pass
            with self._lock:
                self._misses += 1
                if stale:
                    self._stale_dropped += 1
            return None
        try:
            os.utime(path)  # refresh the LRU clock
        except OSError:  # pragma: no cover - entry evicted underneath us
            pass
        with self._lock:
            self._hits += 1
        return payload, len(raw)

    def put(
        self, key: str, encoded: bytes, tech_digest: Optional[str] = None
    ) -> bool:
        """Persist an encoded payload atomically; False when oversized.

        ``encoded`` is the compact JSON encoding of the result payload;
        it is spliced verbatim into the stamped envelope (no decode /
        re-encode of what may be a tens-of-megabytes tensor).  The
        write lands under a process-unique temporary name and is
        renamed into place, so a reader (or a crashed writer) can never
        observe a half-written entry.  After admission the directory is
        swept: oldest-mtime entries are removed until the byte budget
        holds again.
        """
        if len(encoded) > self.max_bytes:
            with self._lock:
                self._rejected += 1
            return False
        stamped = (
            b'{"spec_version":%d,"tech_digest":%s,"result":'
            % (Sweep.SCHEMA_VERSION, json.dumps(tech_digest).encode("utf-8"))
        ) + encoded + b"}"
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                handle.write(stamped)
            os.replace(tmp, path)
        except OSError:
            # A full or read-only cache volume degrades to "no disk
            # tier", never to a failed request.
            try:
                os.remove(tmp)
            except OSError:
                pass
            return False
        self._evict()
        return True

    def _evict(self) -> None:
        """Remove oldest-mtime entries until the byte budget holds."""
        entries = []
        total = 0
        try:
            names = os.listdir(self.directory)
        except OSError:  # pragma: no cover - directory vanished
            return
        for name in names:
            if not name.endswith(_ENTRY_SUFFIX):
                continue
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
            except OSError:  # pragma: no cover - racing eviction
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.max_bytes:
            return
        for _mtime, size, path in sorted(entries):
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - racing eviction
                continue
            with self._lock:
                self._evictions += 1
            total -= size
            if total <= self.max_bytes:
                return

    def stats(self) -> Dict[str, int]:
        entries = 0
        occupied = 0
        try:
            for name in os.listdir(self.directory):
                if not name.endswith(_ENTRY_SUFFIX):
                    continue
                try:
                    occupied += os.stat(os.path.join(self.directory, name)).st_size
                    entries += 1
                except OSError:  # pragma: no cover - racing eviction
                    continue
        except OSError:  # pragma: no cover - directory vanished
            pass
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "rejected": self._rejected,
                "stale_dropped": self._stale_dropped,
                "entries": entries,
                "bytes": occupied,
                "max_bytes": self.max_bytes,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiskCache({self.directory!r}, max_bytes={self.max_bytes})"


def _looks_like_result(payload: Any) -> bool:
    """Cheap structural validation of a decoded disk entry."""
    return (
        isinstance(payload, dict)
        and payload.get("version") == SweepResult.SCHEMA_VERSION
        and isinstance(payload.get("dims"), list)
        and isinstance(payload.get("coords"), dict)
        and "values" in payload
        and isinstance(payload.get("observable"), str)
    )


class ResultCache:
    """An LRU mapping of canonical spec keys to result payloads.

    Values are stored as ``(payload, encoded_size)`` pairs: the decoded
    result mapping (ready to embed in a response envelope) plus the
    byte size it is charged against the budget.  With a ``disk`` tier
    attached, misses fall through to it (promoting hits back into
    memory) and admissions write through, so the cache's contents
    survive the process.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_CACHE_BYTES,
        disk: Optional[DiskCache] = None,
    ) -> None:
        if int(max_bytes) < 0:
            raise SweepError("max_bytes must be non-negative")
        self.max_bytes = int(max_bytes)
        self.disk = disk
        self._entries: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()
        self._lock = threading.Lock()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str, tech_digest: Optional[str] = None) -> Optional[Any]:
        """The cached payload for ``key`` (refreshing its recency), or None.

        Memory first; on a memory miss the disk tier (when attached) is
        consulted — passing ``tech_digest``, the requesting spec's
        technology digest, so a stale disk envelope is dropped rather
        than served — and a disk hit is promoted into the memory tier
        so the next repeat is served without touching the filesystem.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry[0]
            self._misses += 1
        if self.disk is None:
            return None
        persisted = self.disk.get(key, tech_digest)
        if persisted is None:
            return None
        payload, size = persisted
        self._admit(key, payload, size)
        return payload

    def put(
        self,
        key: str,
        payload: Any,
        size_bytes: int,
        encoded: Optional[bytes] = None,
        tech_digest: Optional[str] = None,
    ) -> bool:
        """Admit (or refresh) a payload; returns False when it exceeds
        the whole memory budget and was not admitted there.

        ``encoded`` (the payload's compact JSON bytes, when the caller
        already has them) is written through to the disk tier, stamped
        with ``tech_digest``; without it only the memory tier is
        touched.
        """
        size = int(size_bytes)
        if size < 0:
            raise SweepError("size_bytes must be non-negative")
        if self.disk is not None and encoded is not None:
            self.disk.put(key, encoded, tech_digest)
        return self._admit(key, payload, size)

    def _admit(self, key: str, payload: Any, size: int) -> bool:
        with self._lock:
            if size > self.max_bytes:
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (payload, size)
            self._bytes += size
            while self._bytes > self.max_bytes:
                _evicted_key, (_payload, evicted_size) = self._entries.popitem(
                    last=False
                )
                self._bytes -= evicted_size
                self._evictions += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership probe that does NOT touch recency or counters."""
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/eviction counters plus the current occupancy."""
        with self._lock:
            stats: Dict[str, Any] = {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
            }
        if self.disk is not None:
            stats["disk"] = self.disk.stats()
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"ResultCache({stats['entries']} entries, {stats['bytes']}/"
            f"{stats['max_bytes']} bytes, {stats['hits']} hits)"
        )
