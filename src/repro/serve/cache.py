"""Byte-bounded LRU result cache keyed on canonical spec hashes.

The service's working set is "results users keep asking for", whose
sizes span four orders of magnitude (a point query's single value to a
full Monte-Carlo tensor), so the eviction budget is expressed in
*payload bytes*, not entry counts: each entry is charged the size of
its canonical JSON encoding — the same bytes a response line carries —
plus nothing else, and least-recently-*used* entries are evicted until
the budget holds.  An entry larger than the whole budget is simply not
admitted (caching it would evict everything else for a single request).

The cache is thread-safe: the server touches it from the event loop
while evaluations complete in worker threads, and the hit/miss/eviction
counters (reported by the ``stats`` op and asserted by the service
tests) must not tear.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..engine.sweep import SweepError

__all__ = ["DEFAULT_CACHE_BYTES", "ResultCache"]

#: Default result-cache budget: 64 MiB of encoded result payloads —
#: thousands of point-query slices, or a handful of full Monte-Carlo
#: tensors.
DEFAULT_CACHE_BYTES = 64 << 20


class ResultCache:
    """An LRU mapping of canonical spec keys to result payloads.

    Values are stored as ``(payload, encoded_size)`` pairs: the decoded
    result mapping (ready to embed in a response envelope) plus the
    byte size it is charged against the budget.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if int(max_bytes) < 0:
            raise SweepError("max_bytes must be non-negative")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()
        self._lock = threading.Lock()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> Optional[Any]:
        """The cached payload for ``key`` (refreshing its recency), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def put(self, key: str, payload: Any, size_bytes: int) -> bool:
        """Admit (or refresh) a payload; returns False when it exceeds
        the whole budget and was not admitted."""
        size = int(size_bytes)
        if size < 0:
            raise SweepError("size_bytes must be non-negative")
        with self._lock:
            if size > self.max_bytes:
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (payload, size)
            self._bytes += size
            while self._bytes > self.max_bytes:
                _evicted_key, (_payload, evicted_size) = self._entries.popitem(
                    last=False
                )
                self._bytes -= evicted_size
                self._evictions += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership probe that does NOT touch recency or counters."""
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus the current occupancy."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"ResultCache({stats['entries']} entries, {stats['bytes']}/"
            f"{stats['max_bytes']} bytes, {stats['hits']} hits)"
        )
