"""``python -m repro.serve``: run a sweep-evaluation server."""

from .server import main

if __name__ == "__main__":
    raise SystemExit(main())
