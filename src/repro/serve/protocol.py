"""The service's wire protocol: newline-delimited JSON envelopes.

One request per line, one response per line (or, for oversized
results, a stream: a header line, one line per tile, a terminator) —
the simplest protocol a stdlib socket client can speak while staying
human-debuggable with ``nc``.  Requests are objects with an ``op``
field; responses echo the request's optional ``id`` and carry either
``"ok": true`` plus op-specific fields, or ``"ok": false`` plus a
structured ``error`` object with a stable machine-readable ``code``
(the strings below are API: clients and tests dispatch on them) and a
human-readable ``message``.

Operations
----------

``ping``
    Liveness plus the spec schema version the server reads.
``sweep``
    Evaluate (or serve from cache) a full serialized sweep spec;
    responds with the result payload or a tile stream.
``point``
    A micro-batchable point query: a serialized *base* spec (no
    temperature axis) plus one ``temperature_c``; compatible concurrent
    points coalesce into one broadcast evaluation.
``stats``
    Cache / batcher / scheduler / evaluation counters.
``shutdown``
    Acknowledge, then stop the server cleanly.

Scheduling fields
-----------------

``sweep`` and ``point`` requests accept two optional fields, both
defaulting to today's behavior (no field, no change):

``priority`` (integer, default ``0``)
    Higher-priority requests are evaluated first when the server's
    bounded evaluation queue holds more work than its workers can run
    at once.  Equal priorities evaluate in arrival order.  Requests
    that coalesce into one batch evaluate at the *highest* priority of
    any member.
``deadline_ms`` (positive number, optional)
    A relative time budget, measured from the moment the server reads
    the request.  A request still *queued* when its budget expires is
    failed with the ``deadline-expired`` error code **without being
    evaluated**; an evaluation already running is never aborted.
    Coalesced batches use the most lenient member deadline (and none
    at all if any member has none), so joining a batch can only relax
    a deadline, never tighten a neighbour's.

Backpressure: when the evaluation queue is full, new ``sweep`` /
``point`` requests fail immediately with the ``busy`` error code
instead of growing server memory without bound.  While the server is
shutting down, pending and newly-arriving evaluations fail with
``shutting-down``.

Technology identity
-------------------

A spec's technology references are content-addressed: a registered
node travels as ``{"name": ..., "digest": ...}`` (the digest is the
SHA-256 of its declarative parameter bundle, computed at registration),
an unregistered node inlines its full ``parameters`` bundle alongside
the digest.  The server verifies every digest against its own registry
while canonicalizing the spec; a name the server does not know, or
knows under a *different* digest (two hosts disagreeing about what a
name means), fails with the ``tech-mismatch`` error code instead of
silently evaluating the server's idea of that technology.  Because the
digest is part of the canonical spec, the result cache — including a
disk directory shared across hosts — keys on what the technology *is*,
never on what it is called.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

__all__ = [
    "E_BAD_JSON",
    "E_BAD_REQUEST",
    "E_BAD_SPEC",
    "E_BUSY",
    "E_DEADLINE",
    "E_INTERNAL",
    "E_SHUTTING_DOWN",
    "E_TECH_MISMATCH",
    "E_UNKNOWN_OP",
    "E_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "decode_line",
    "encode_line",
    "error_envelope",
    "ok_envelope",
]

#: Stream-reader line budget: result lines for cached full tensors can
#: reach tens of megabytes before tile streaming kicks in, far past
#: asyncio's 64 KiB default.
MAX_LINE_BYTES = 64 << 20

OPS = ("ping", "sweep", "point", "stats", "shutdown")

# Stable error codes (API — dispatch on these, not on messages).
E_BAD_JSON = "bad-json"  #: the request line was not valid JSON
E_BAD_REQUEST = "bad-request"  #: valid JSON but not a valid request envelope
E_UNKNOWN_OP = "unknown-op"  #: the ``op`` field names no operation
E_BAD_SPEC = "bad-spec"  #: the spec payload failed engine validation
E_VERSION = "version-mismatch"  #: the spec's schema version is not ours
E_TECH_MISMATCH = "tech-mismatch"  #: a technology digest disagrees with the server's registry
E_INTERNAL = "internal"  #: unexpected server-side failure
E_BUSY = "busy"  #: the bounded evaluation queue is full; retry later
E_DEADLINE = "deadline-expired"  #: the request's deadline passed while queued
E_SHUTTING_DOWN = "shutting-down"  #: the server is draining; request not evaluated


def encode_line(payload: Mapping[str, Any]) -> bytes:
    """One protocol line: compact JSON plus the terminating newline."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Any:
    """Parse one protocol line (raises ``ValueError`` on bad JSON)."""
    return json.loads(line.decode("utf-8"))


def ok_envelope(
    op: str, request_id: Optional[Any] = None, **fields: Any
) -> Dict[str, Any]:
    envelope: Dict[str, Any] = {"ok": True, "op": op}
    if request_id is not None:
        envelope["id"] = request_id
    envelope.update(fields)
    return envelope


def error_envelope(
    code: str, message: str, request_id: Optional[Any] = None
) -> Dict[str, Any]:
    envelope: Dict[str, Any] = {
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if request_id is not None:
        envelope["id"] = request_id
    return envelope
