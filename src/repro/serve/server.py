"""The sweep-evaluation server: asyncio streams over NDJSON.

:class:`SweepServer` binds a TCP socket and answers the protocol ops of
:mod:`repro.serve.protocol`.  The evaluation path is deliberately thin
around the existing engine — a request's spec is canonicalized
(:func:`~repro.serve.spec.canonical_spec`, which *is* validation),
content-addressed (:func:`~repro.serve.spec.canonical_key`), looked up
in the two-tier result cache (:class:`~repro.serve.cache.ResultCache`:
a byte-bounded memory LRU over an optional restart-surviving disk
tier), and only on a miss handed to the evaluation scheduler.

The scheduler is what makes the front end *parallel*: a bounded
priority queue feeds ``workers`` concurrent evaluation slots, each
running ``Sweep.from_dict(...).run()`` on a worker thread — and, with
more than one worker, through a shared
:class:`~repro.engine.executors.ProcessExecutor` pool (the PR 6
shared-memory technology-column transport), so concurrent distinct
sweeps genuinely occupy multiple cores.  Requests carry optional
``priority`` / ``deadline_ms`` fields; a full queue answers ``busy``
instead of growing without bound, and a queued request whose deadline
passes is failed with ``deadline-expired`` without being evaluated.

Identical sweeps in flight at the same moment share one evaluation
(single-flight, across workers); concurrent requests that differ only
along the temperature axis — point queries *and* overlapping sweep
grids — coalesce onto one union-grid broadcast
(:class:`~repro.serve.batcher.MicroBatcher`) and are each answered
with their own bitwise-exact slice.  Results whose encoded payload
exceeds the stream threshold leave as a tile stream
(:func:`~repro.engine.tiling.plan_result_tiles`) instead of one giant
line.

Every knob is available both as a constructor argument / CLI flag and
as a ``REPRO_SERVE_*`` environment variable (the flag wins):

========================================  =====================================
variable                                  meaning
========================================  =====================================
``REPRO_SERVE_HOST``                      bind address (default ``127.0.0.1``)
``REPRO_SERVE_PORT``                      bind port (default ``7753``; 0 = ephemeral)
``REPRO_SERVE_WORKERS``                   concurrent evaluation slots (default 1;
                                          >1 routes through a shared process pool)
``REPRO_SERVE_QUEUE_DEPTH``               bounded evaluation-queue depth (beyond
                                          it, requests fail fast with ``busy``)
``REPRO_SERVE_CACHE_BYTES``               memory result-cache budget in payload bytes
``REPRO_SERVE_CACHE_DIR``                 disk-tier directory: results persist across
                                          restarts (and between hosts sharing it)
``REPRO_SERVE_DISK_CACHE_BYTES``          disk-tier byte budget (LRU via mtime)
``REPRO_SERVE_BATCH_WINDOW_MS``           coalescing window in milliseconds
``REPRO_SERVE_STREAM_THRESHOLD_BYTES``    payload size that switches to tiles
========================================  =====================================
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import itertools
import json
import math
import os
import threading
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..engine.executors import ProcessExecutor
from ..engine.sweep import (
    Sweep,
    SweepError,
    SweepResult,
    TechnologyMismatchError,
    _ENDPOINT_OBSERVABLES,
)
from ..engine.tiling import plan_result_tiles
from .batcher import DEFAULT_BATCH_WINDOW_MS, MicroBatcher
from .cache import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_DISK_CACHE_BYTES,
    DiskCache,
    ResultCache,
)
from .protocol import (
    E_BAD_JSON,
    E_BAD_REQUEST,
    E_BAD_SPEC,
    E_BUSY,
    E_DEADLINE,
    E_INTERNAL,
    E_SHUTTING_DOWN,
    E_TECH_MISMATCH,
    E_UNKNOWN_OP,
    E_VERSION,
    MAX_LINE_BYTES,
    OPS,
    decode_line,
    encode_line,
    error_envelope,
    ok_envelope,
)
from .spec import canonical_key, canonical_spec, encode_canonical, split_temperature

__all__ = [
    "BATCH_WINDOW_ENV",
    "CACHE_BYTES_ENV",
    "CACHE_DIR_ENV",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_STREAM_THRESHOLD_BYTES",
    "DEFAULT_WORKERS",
    "DISK_CACHE_BYTES_ENV",
    "HOST_ENV",
    "PORT_ENV",
    "QUEUE_DEPTH_ENV",
    "STREAM_THRESHOLD_ENV",
    "ServerHandle",
    "SweepServer",
    "WORKERS_ENV",
    "main",
    "start_server_thread",
]

HOST_ENV = "REPRO_SERVE_HOST"
PORT_ENV = "REPRO_SERVE_PORT"
WORKERS_ENV = "REPRO_SERVE_WORKERS"
QUEUE_DEPTH_ENV = "REPRO_SERVE_QUEUE_DEPTH"
CACHE_BYTES_ENV = "REPRO_SERVE_CACHE_BYTES"
CACHE_DIR_ENV = "REPRO_SERVE_CACHE_DIR"
DISK_CACHE_BYTES_ENV = "REPRO_SERVE_DISK_CACHE_BYTES"
BATCH_WINDOW_ENV = "REPRO_SERVE_BATCH_WINDOW_MS"
STREAM_THRESHOLD_ENV = "REPRO_SERVE_STREAM_THRESHOLD_BYTES"

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7753

#: Default evaluation concurrency: one slot, evaluated in-process —
#: exactly the pre-scheduler behavior.  More slots route evaluations
#: through a shared process pool of the same size.
DEFAULT_WORKERS = 1

#: Default bound of the evaluation queue.  Deep enough that a burst of
#: fan-out traffic queues instead of failing, shallow enough that a
#: stalled server fails fast (``busy``) rather than accumulating an
#: unbounded backlog of request payloads in memory.
DEFAULT_QUEUE_DEPTH = 128

#: Result payloads at or below this encoded size travel as one response
#: line; larger ones as a tile stream.  1 MiB keeps single lines cheap
#: to buffer while full Monte-Carlo tensors still stream.
DEFAULT_STREAM_THRESHOLD_BYTES = 1 << 20

#: Rough encoded size of one value in a JSON tile line (a float64's
#: shortest round-trip repr plus separators) — converts the stream
#: threshold into a per-tile element budget.
_BYTES_PER_VALUE = 32


def _env_value(name: str, parse, fallback):
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return fallback
    try:
        return parse(raw)
    except ValueError as error:
        raise SweepError(f"{name}={raw!r} is not a valid value: {error}") from error


class _RequestError(Exception):
    """A request-level failure with a stable protocol error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def _shutting_down_error() -> _RequestError:
    return _RequestError(
        E_SHUTTING_DOWN, "server is shutting down; the request was not evaluated"
    )


class _Job:
    """One queued evaluation: payload, deadline and the waiting future."""

    __slots__ = ("payload", "deadline", "future")

    def __init__(
        self,
        payload: Mapping[str, Any],
        deadline: Optional[float],
        future: asyncio.Future,
    ) -> None:
        self.payload = payload
        self.deadline = deadline
        self.future = future


class _EvalScheduler:
    """A bounded priority queue feeding N concurrent evaluation slots.

    Jobs are ``(-priority, seq, job)`` heap entries: higher priorities
    pop first, arrival order breaks ties.  ``submit`` fails fast with
    ``busy`` when the queue is full (backpressure instead of unbounded
    memory growth) and each worker checks a job's deadline *before*
    evaluating — an expired job costs nothing but its queue slot.
    """

    def __init__(self, evaluate, workers: int, queue_depth: int) -> None:
        self._evaluate = evaluate
        self.workers = int(workers)
        self.queue_depth = int(queue_depth)
        if self.workers < 1:
            raise SweepError("workers must be at least 1")
        if self.queue_depth < 1:
            raise SweepError("queue_depth must be at least 1")
        self._queue: Optional[asyncio.PriorityQueue] = None
        self._tasks: List[asyncio.Task] = []
        self._seq = itertools.count()
        self._draining: Optional[_RequestError] = None
        # Counters, reported via the server's ``stats`` op.
        self.scheduled = 0
        self.completed = 0
        self.rejected_busy = 0
        self.expired = 0
        self.peak_queued = 0

    def start(self) -> None:
        """Create the queue and spawn the worker tasks (on a running loop)."""
        self._queue = asyncio.PriorityQueue(maxsize=self.queue_depth)
        self._tasks = [
            asyncio.get_running_loop().create_task(
                self._worker(), name=f"repro-serve-eval-{index}"
            )
            for index in range(self.workers)
        ]

    async def submit(
        self,
        payload: Mapping[str, Any],
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> SweepResult:
        """Queue one evaluation; resolves to its result (or a scheduling error)."""
        if self._draining is not None:
            raise self._draining
        assert self._queue is not None, "scheduler used before start()"
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        job = _Job(payload, deadline, future)
        try:
            self._queue.put_nowait((-int(priority), next(self._seq), job))
        except asyncio.QueueFull:
            self.rejected_busy += 1
            raise _RequestError(
                E_BUSY,
                f"evaluation queue is full ({self.queue_depth} pending); "
                f"retry later or raise the queue depth",
            ) from None
        self.scheduled += 1
        self.peak_queued = max(self.peak_queued, self._queue.qsize())
        return await future

    async def _worker(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            _negative_priority, _seq, job = await self._queue.get()
            if job.future.done():  # requester gone (cancelled connection)
                continue
            if job.deadline is not None and loop.time() >= job.deadline:
                self.expired += 1
                job.future.set_exception(
                    _RequestError(
                        E_DEADLINE,
                        "the request's deadline passed while it was queued; "
                        "it was not evaluated",
                    )
                )
                continue
            try:
                result = await self._evaluate(job.payload)
            except asyncio.CancelledError:
                if not job.future.done():
                    job.future.set_exception(_shutting_down_error())
                raise
            except Exception as error:  # noqa: BLE001 - forwarded per request
                if not job.future.done():
                    job.future.set_exception(error)
            else:
                self.completed += 1
                if not job.future.done():
                    job.future.set_result(result)

    def drain(self, error: _RequestError) -> None:
        """Refuse new work, fail queued jobs, cancel the worker slots."""
        self._draining = error
        if self._queue is not None:
            while True:
                try:
                    _priority, _seq, job = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if not job.future.done():
                    job.future.set_exception(error)
        for task in self._tasks:
            task.cancel()

    def stats(self) -> Dict[str, Any]:
        return {
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "queued": self._queue.qsize() if self._queue is not None else 0,
            "peak_queued": self.peak_queued,
            "scheduled": self.scheduled,
            "completed": self.completed,
            "rejected_busy": self.rejected_busy,
            "expired": self.expired,
        }


class SweepServer:
    """A persistent sweep-evaluation service on one TCP socket.

    ``evaluations`` counts every engine evaluation the server performs
    (full sweeps and coalesced batches alike) — the hook the cache and
    batching tests assert against: a repeat query must leave it
    untouched, eight coalesced points must bump it once, and a restart
    onto a warm disk cache must serve repeats at zero.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        workers: Optional[int] = None,
        queue_depth: Optional[int] = None,
        cache_bytes: Optional[int] = None,
        cache_dir: Optional[str] = None,
        disk_cache_bytes: Optional[int] = None,
        batch_window_ms: Optional[float] = None,
        stream_threshold_bytes: Optional[int] = None,
        run_kwargs: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.host = host if host is not None else _env_value(HOST_ENV, str, DEFAULT_HOST)
        self.port = int(
            port if port is not None else _env_value(PORT_ENV, int, DEFAULT_PORT)
        )
        self.workers = int(
            workers if workers is not None else _env_value(WORKERS_ENV, int, DEFAULT_WORKERS)
        )
        if self.workers < 1:
            raise SweepError("workers must be at least 1")
        if queue_depth is None:
            queue_depth = _env_value(QUEUE_DEPTH_ENV, int, DEFAULT_QUEUE_DEPTH)
        if cache_bytes is None:
            cache_bytes = _env_value(CACHE_BYTES_ENV, int, DEFAULT_CACHE_BYTES)
        if cache_dir is None:
            cache_dir = _env_value(CACHE_DIR_ENV, str, None)
        if disk_cache_bytes is None:
            disk_cache_bytes = _env_value(
                DISK_CACHE_BYTES_ENV, int, DEFAULT_DISK_CACHE_BYTES
            )
        if batch_window_ms is None:
            batch_window_ms = _env_value(
                BATCH_WINDOW_ENV, float, DEFAULT_BATCH_WINDOW_MS
            )
        if stream_threshold_bytes is None:
            stream_threshold_bytes = _env_value(
                STREAM_THRESHOLD_ENV, int, DEFAULT_STREAM_THRESHOLD_BYTES
            )
        self.stream_threshold_bytes = int(stream_threshold_bytes)
        if self.stream_threshold_bytes < 1:
            raise SweepError("stream_threshold_bytes must be at least 1")
        self.cache_dir = cache_dir
        disk = DiskCache(cache_dir, int(disk_cache_bytes)) if cache_dir else None
        self.cache = ResultCache(int(cache_bytes), disk=disk)
        self.batcher = MicroBatcher(self._scheduled_evaluate, float(batch_window_ms))
        # Late binding (not the bound method itself) so a test can
        # swap ``_evaluate_payload`` on the instance to a controlled
        # evaluator and the scheduler picks it up.
        self.scheduler = _EvalScheduler(
            lambda payload: self._evaluate_payload(payload),
            self.workers,
            int(queue_depth),
        )
        self._run_kwargs = dict(run_kwargs or {})
        #: The shared tile executor of a multi-worker server: every
        #: concurrent evaluation submits its tiles to one reused
        #: process pool (PR 6 shared-memory transport), sized to the
        #: worker count, so N slots genuinely occupy N cores.
        self._executor: Optional[ProcessExecutor] = (
            ProcessExecutor(max_workers=self.workers) if self.workers > 1 else None
        )
        self.evaluations = 0
        self.requests = 0
        self._inflight: Dict[str, asyncio.Future] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._stopping = False
        self._active_dispatches = 0
        self._connections: set = set()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind the socket (resolving port 0) and start the scheduler."""
        self._stopped = asyncio.Event()
        self.scheduler.start()
        if self._executor is not None:
            # Pay worker-pool startup now, not on the first request.
            await asyncio.to_thread(self._executor.prewarm)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` op (or :meth:`request_shutdown`)."""
        if self._server is None:
            await self.start()
        try:
            await self._stopped.wait()
        finally:
            await self.aclose()

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (safe from within the loop)."""
        if self._stopped is not None:
            self._stopped.set()

    async def aclose(self) -> None:
        # Ordering matters: stop accepting, then resolve every pending
        # future with the structured shutting-down error, then give the
        # request handlers awaiting those futures a bounded window to
        # write their error responses — only then tear down the
        # connections.  Nothing is abandoned: a client blocked on a
        # batched point or a queued sweep sees ``shutting-down``, not a
        # silent hang.
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        error = _shutting_down_error()
        self.batcher.drain(error)
        self.scheduler.drain(error)
        if self._connections:
            deadline = asyncio.get_running_loop().time() + 5.0
            while (
                self._active_dispatches > 0
                and asyncio.get_running_loop().time() < deadline
            ):
                await asyncio.sleep(0.01)
        # Drain open connections: cancel their handler tasks and wait,
        # so loop teardown never races a half-closed stream.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # ------------------------------------------------------------------ #
    # evaluation (the counted hook)
    # ------------------------------------------------------------------ #

    async def _evaluate_payload(self, payload: Mapping[str, Any]) -> SweepResult:
        """One engine evaluation of a serialized spec, off the event loop."""
        sweep = Sweep.from_dict(payload)
        self.evaluations += 1
        return await asyncio.to_thread(self._run_sweep, sweep)

    def _run_sweep(self, sweep: Sweep) -> SweepResult:
        kwargs = dict(self._run_kwargs)
        if self._executor is not None:
            kwargs.setdefault("executor", self._executor)
        return sweep.run(**kwargs)

    async def _scheduled_evaluate(
        self,
        payload: Mapping[str, Any],
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> SweepResult:
        """The batcher's evaluation hook: route through the scheduler."""
        return await self.scheduler.submit(payload, priority=priority, deadline=deadline)

    async def _sweep_payload(
        self,
        key: str,
        canonical: Dict[str, Any],
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> Tuple[Dict[str, Any], int, bool]:
        """The result payload for a canonical sweep: cache, then engine.

        Returns ``(payload, encoded_size, cached)``.  Concurrent misses
        on the same key share one evaluation (single-flight — the
        registration happens on the event loop before the scheduler or
        batcher ever sees the job, so it holds across workers): the
        first request evaluates, the rest await its future.  A miss
        whose spec carries an explicit temperature axis (and an
        elementwise observable) goes through the coalescer, merging
        with any concurrent sweep or point sharing its base spec;
        everything else is scheduled as an independent evaluation,
        unchanged.
        """
        tech_digest = _tech_digest_of(canonical)
        cached = self.cache.get(key, tech_digest)
        if cached is not None:
            return cached, len(_encode_result(cached)), True
        waiter = self._inflight.get(key)
        if waiter is not None:
            payload, size = await asyncio.shield(waiter)
            return payload, size, True
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        # Mark exceptions retrieved even when no duplicate request ever
        # awaits the future.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._inflight[key] = future
        try:
            base, temperatures = split_temperature(canonical)
            if temperatures and canonical["observable"] not in _ENDPOINT_OBSERVABLES:
                result = await self.batcher.submit(
                    _key_of(base), base, temperatures, priority, deadline
                )
            else:
                result = await self.scheduler.submit(
                    canonical, priority=priority, deadline=deadline
                )
            payload = result.to_dict()
            encoded = _encode_result(payload)
            size = len(encoded)
            self.cache.put(key, payload, size, encoded=encoded, tech_digest=tech_digest)
            future.set_result((payload, size))
            return payload, size, False
        except Exception as error:
            future.set_exception(error)
            raise
        finally:
            self._inflight.pop(key, None)

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        encode_line(
                            error_envelope(
                                E_BAD_REQUEST,
                                f"request line exceeds {MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                keep_going = await self._dispatch(line, writer)
                if not keep_going:
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            # Shutdown cancels open connections; finish closing below
            # instead of ending as a cancelled task (which asyncio's
            # stream machinery would log as an unhandled error).
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _dispatch(self, line: bytes, writer: asyncio.StreamWriter) -> bool:
        """Answer one request line; False ends the connection."""
        self.requests += 1
        self._active_dispatches += 1
        request_id: Optional[Any] = None
        try:
            try:
                message = decode_line(line)
            except ValueError as error:
                raise _RequestError(E_BAD_JSON, f"request is not valid JSON: {error}")
            if not isinstance(message, Mapping):
                raise _RequestError(
                    E_BAD_REQUEST,
                    f"request must be a JSON object, got {type(message).__name__}",
                )
            request_id = message.get("id")
            op = message.get("op")
            if not isinstance(op, str):
                raise _RequestError(E_BAD_REQUEST, "request is missing its 'op' field")
            if op == "ping":
                writer.write(
                    encode_line(
                        ok_envelope("ping", request_id, version=Sweep.SCHEMA_VERSION)
                    )
                )
            elif op == "stats":
                writer.write(encode_line(ok_envelope("stats", request_id, stats=self.stats())))
            elif op == "shutdown":
                writer.write(encode_line(ok_envelope("shutdown", request_id)))
                await writer.drain()
                self.request_shutdown()
                return False
            elif op == "sweep":
                if self._stopping:
                    raise _shutting_down_error()
                await self._handle_sweep(message, request_id, writer)
            elif op == "point":
                if self._stopping:
                    raise _shutting_down_error()
                await self._handle_point(message, request_id, writer)
            else:
                raise _RequestError(
                    E_UNKNOWN_OP, f"unknown op {op!r}; ops are {list(OPS)}"
                )
        except _RequestError as error:
            writer.write(encode_line(error_envelope(error.code, error.message, request_id)))
        except TechnologyMismatchError as error:
            # Before the SweepError catch below (it is one): a digest
            # disagreement is its own stable code, so clients can tell
            # "our registries disagree" from a malformed spec.
            writer.write(
                encode_line(error_envelope(E_TECH_MISMATCH, str(error), request_id))
            )
        except SweepError as error:
            writer.write(encode_line(error_envelope(E_BAD_SPEC, str(error), request_id)))
        except Exception as error:  # noqa: BLE001 - protocol boundary
            writer.write(
                encode_line(
                    error_envelope(
                        E_INTERNAL, f"{type(error).__name__}: {error}", request_id
                    )
                )
            )
        finally:
            self._active_dispatches -= 1
        await writer.drain()
        return True

    def _spec_from(self, message: Mapping[str, Any]) -> Mapping[str, Any]:
        spec = message.get("spec")
        if not isinstance(spec, Mapping):
            raise _RequestError(
                E_BAD_REQUEST,
                f"request needs a 'spec' object, got "
                f"{type(spec).__name__ if spec is not None else 'nothing'}",
            )
        version = spec.get("version")
        if version is not None and version != Sweep.SCHEMA_VERSION:
            raise _RequestError(
                E_VERSION,
                f"spec has schema version {version!r}; this server reads "
                f"version {Sweep.SCHEMA_VERSION}",
            )
        return spec

    def _scheduling_from(
        self, message: Mapping[str, Any]
    ) -> Tuple[int, Optional[float]]:
        """Parse the optional ``priority`` / ``deadline_ms`` fields."""
        priority = message.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise _RequestError(
                E_BAD_REQUEST,
                f"'priority' must be an integer, got {priority!r}",
            )
        deadline_ms = message.get("deadline_ms")
        deadline: Optional[float] = None
        if deadline_ms is not None:
            if (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or not math.isfinite(deadline_ms)
                or deadline_ms <= 0
            ):
                raise _RequestError(
                    E_BAD_REQUEST,
                    f"'deadline_ms' must be a positive finite number of "
                    f"milliseconds, got {deadline_ms!r}",
                )
            deadline = (
                asyncio.get_running_loop().time() + float(deadline_ms) / 1000.0
            )
        return int(priority), deadline

    async def _handle_sweep(
        self,
        message: Mapping[str, Any],
        request_id: Optional[Any],
        writer: asyncio.StreamWriter,
    ) -> None:
        spec = self._spec_from(message)
        priority, deadline = self._scheduling_from(message)
        canonical = canonical_spec(spec)
        key = _key_of(canonical)
        payload, size, cached = await self._sweep_payload(
            key, canonical, priority, deadline
        )
        await self._respond_result(writer, "sweep", request_id, key, payload, size, cached)

    async def _handle_point(
        self,
        message: Mapping[str, Any],
        request_id: Optional[Any],
        writer: asyncio.StreamWriter,
    ) -> None:
        spec = self._spec_from(message)
        priority, deadline = self._scheduling_from(message)
        temperature = message.get("temperature_c")
        if (
            isinstance(temperature, bool)
            or not isinstance(temperature, (int, float))
            or not math.isfinite(temperature)
        ):
            raise _RequestError(
                E_BAD_REQUEST,
                f"point requests need a finite 'temperature_c' number, got "
                f"{temperature!r}",
            )
        base = canonical_spec(spec)
        if any(axis.get("name") == "temperature" for axis in base["axes"]):
            raise _RequestError(
                E_BAD_REQUEST,
                "a point spec must not carry a temperature axis; the query's "
                "'temperature_c' is the point (use op=sweep for a grid)",
            )
        if base["observable"] in _ENDPOINT_OBSERVABLES:
            raise _RequestError(
                E_BAD_REQUEST,
                f"observable {base['observable']!r} couples every temperature "
                f"to the grid endpoints, so point queries cannot be batched; "
                f"use op=sweep with the full temperature grid",
            )
        base_key = _key_of(base)
        full = dict(base)
        full["axes"] = list(base["axes"]) + [
            {"name": "temperature", "coordinates": [float(temperature)]}
        ]
        full_key = _key_of(full)
        tech_digest = _tech_digest_of(full)
        cached = self.cache.get(full_key, tech_digest)
        if cached is not None:
            await self._respond_result(
                writer, "point", request_id, full_key, cached,
                len(_encode_result(cached)), True,
            )
            return
        result = await self.batcher.submit(
            base_key, base, [float(temperature)], priority, deadline
        )
        payload = result.to_dict()
        encoded = _encode_result(payload)
        size = len(encoded)
        self.cache.put(full_key, payload, size, encoded=encoded, tech_digest=tech_digest)
        await self._respond_result(
            writer, "point", request_id, full_key, payload, size, False
        )

    async def _respond_result(
        self,
        writer: asyncio.StreamWriter,
        op: str,
        request_id: Optional[Any],
        key: str,
        payload: Dict[str, Any],
        size: int,
        cached: bool,
    ) -> None:
        """One result line — or a tile stream when the payload is big."""
        dims = tuple(payload["dims"])
        if size <= self.stream_threshold_bytes or not dims:
            writer.write(
                encode_line(
                    ok_envelope(op, request_id, key=key, cached=cached, result=payload)
                )
            )
            await writer.drain()
            return
        shape = tuple(len(payload["coords"][name]) for name in dims)
        values = np.asarray(payload["values"], dtype=payload.get("dtype", "float64"))
        tiles = plan_result_tiles(
            dims, shape, max(1, self.stream_threshold_bytes // _BYTES_PER_VALUE)
        )
        meta = {
            "version": payload["version"],
            "observable": payload["observable"],
            "dims": list(dims),
            "coords": payload["coords"],
            "dtype": payload.get("dtype", "float64"),
        }
        writer.write(
            encode_line(
                ok_envelope(
                    op,
                    request_id,
                    key=key,
                    cached=cached,
                    stream=True,
                    meta=meta,
                    tile_count=len(tiles),
                )
            )
        )
        await writer.drain()
        for tile in tiles:
            writer.write(
                encode_line(
                    {
                        "tile": tile.index,
                        "bounds": [list(bound) for bound in tile.bounds],
                        "values": values[tile.slices(dims)].tolist(),
                    }
                )
            )
            await writer.drain()
        writer.write(encode_line({"done": True, "tiles": len(tiles)}))
        await writer.drain()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, Any]:
        return {
            "evaluations": self.evaluations,
            "requests": self.requests,
            "inflight": len(self._inflight),
            "cache": self.cache.stats(),
            "batcher": self.batcher.stats(),
            "scheduler": self.scheduler.stats(),
        }


def _encode_result(payload: Mapping[str, Any]) -> bytes:
    """The byte size a result payload is charged at (its compact JSON)."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def _key_of(canonical: Mapping[str, Any]) -> str:
    """Key an *already canonical* payload without re-round-tripping it."""
    return hashlib.sha256(encode_canonical(canonical)).hexdigest()


def _tech_digest_of(canonical: Mapping[str, Any]) -> Optional[str]:
    """The technology digest a canonical spec's cache entry is stamped with.

    A base technology reference contributes its registration digest; a
    technology *axis* contributes every node's.  One digest is stamped
    verbatim; several collapse into one SHA-256 over the ordered list
    (the stamp is a single string either way).  A spec with no
    technology reference at all (e.g. a sample-axis population, which
    travels as raw parameter columns) stamps None — the canonical key
    still covers its full content.
    """
    digests: List[str] = []
    technology = canonical["base"].get("technology")
    if technology is not None:
        digests.append(str(technology["digest"]))
    for axis in canonical["axes"]:
        if axis.get("name") == "technology":
            digests.extend(str(node["digest"]) for node in axis["nodes"])
    if not digests:
        return None
    if len(digests) == 1:
        return digests[0]
    return hashlib.sha256(",".join(digests).encode("ascii")).hexdigest()


# --------------------------------------------------------------------------- #
# threaded embedding (tests, benchmarks, the CI smoke step)
# --------------------------------------------------------------------------- #


class ServerHandle:
    """A server running on a daemon thread, stoppable from the caller."""

    def __init__(self, server: SweepServer) -> None:
        self.server = server
        self.thread: Optional[threading.Thread] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 10.0) -> None:
        """Request shutdown (idempotent) and join the serving thread."""
        if self.loop is not None:
            try:
                self.loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed: the server stopped on its own
        if self.thread is not None:
            self.thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def start_server_thread(**kwargs: Any) -> ServerHandle:
    """Start a :class:`SweepServer` on a daemon thread and wait for bind.

    Keyword arguments go to the :class:`SweepServer` constructor;
    ``port=0`` (the default here) binds an ephemeral port, readable as
    ``handle.port`` once this returns.
    """
    kwargs.setdefault("port", 0)
    server = SweepServer(**kwargs)
    handle = ServerHandle(server)
    ready = threading.Event()
    failure: List[BaseException] = []

    def _run() -> None:
        async def _main() -> None:
            try:
                await server.start()
            except BaseException as error:  # noqa: BLE001 - reported to caller
                failure.append(error)
                ready.set()
                return
            handle.loop = asyncio.get_running_loop()
            ready.set()
            try:
                await server._stopped.wait()
            finally:
                await server.aclose()

        asyncio.run(_main())

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    handle.thread = thread
    thread.start()
    if not ready.wait(timeout=30.0):  # pragma: no cover - hung interpreter
        raise SweepError("sweep server failed to start within 30 s")
    if failure:
        raise SweepError(f"sweep server failed to bind: {failure[0]}") from failure[0]
    return handle


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


def main(argv: Optional[List[str]] = None) -> int:
    """`repro-serve` / ``python -m repro.serve``: run a server until stopped."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Persistent sweep-evaluation service: NDJSON over TCP, "
            "multi-worker parallel evaluation, restart-surviving "
            "content-addressed result caching, coalesced sweep and "
            "point queries."
        ),
    )
    parser.add_argument(
        "--host",
        default=None,
        help=f"bind address (default {HOST_ENV} or {DEFAULT_HOST})",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help=f"bind port, 0 for ephemeral (default {PORT_ENV} or {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            f"concurrent evaluation slots; above 1, evaluations route "
            f"through a shared process pool of the same size "
            f"(default {WORKERS_ENV} or {DEFAULT_WORKERS})"
        ),
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        help=(
            f"bounded evaluation-queue depth — beyond it requests fail "
            f"fast with the 'busy' error code "
            f"(default {QUEUE_DEPTH_ENV} or {DEFAULT_QUEUE_DEPTH})"
        ),
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        help=(
            f"memory result-cache budget in payload bytes "
            f"(default {CACHE_BYTES_ENV} or {DEFAULT_CACHE_BYTES})"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            f"disk cache directory — results persist across restarts, "
            f"and servers sharing the directory share the cache "
            f"(default {CACHE_DIR_ENV}; unset = memory only)"
        ),
    )
    parser.add_argument(
        "--disk-cache-bytes",
        type=int,
        default=None,
        help=(
            f"disk-tier byte budget, LRU-evicted via file mtime "
            f"(default {DISK_CACHE_BYTES_ENV} or {DEFAULT_DISK_CACHE_BYTES})"
        ),
    )
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=None,
        help=(
            f"coalescing window for point queries and overlapping "
            f"sweeps, in milliseconds "
            f"(default {BATCH_WINDOW_ENV} or {DEFAULT_BATCH_WINDOW_MS})"
        ),
    )
    parser.add_argument(
        "--stream-threshold-bytes",
        type=int,
        default=None,
        help=(
            f"encoded payload size that switches responses to tile "
            f"streaming (default {STREAM_THRESHOLD_ENV} or "
            f"{DEFAULT_STREAM_THRESHOLD_BYTES})"
        ),
    )
    args = parser.parse_args(argv)

    server = SweepServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        cache_bytes=args.cache_bytes,
        cache_dir=args.cache_dir,
        disk_cache_bytes=args.disk_cache_bytes,
        batch_window_ms=args.batch_window_ms,
        stream_threshold_bytes=args.stream_threshold_bytes,
    )

    async def _serve() -> None:
        await server.start()
        print(f"repro-serve listening on {server.host}:{server.port}", flush=True)
        await server.serve_until_shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
