"""The sweep-evaluation server: asyncio streams over NDJSON.

:class:`SweepServer` binds a TCP socket and answers the protocol ops of
:mod:`repro.serve.protocol`.  The evaluation path is deliberately thin
around the existing engine — a request's spec is canonicalized
(:func:`~repro.serve.spec.canonical_spec`, which *is* validation),
content-addressed (:func:`~repro.serve.spec.canonical_key`), looked up
in the byte-bounded LRU (:class:`~repro.serve.cache.ResultCache`), and
only on a miss handed to ``Sweep.from_dict(...).run()`` on a worker
thread.  Identical sweeps in flight at the same moment share one
evaluation (single-flight); concurrent *point* queries coalesce onto a
shared temperature axis (:class:`~repro.serve.batcher.MicroBatcher`).
Results whose encoded payload exceeds the stream threshold leave as a
tile stream (:func:`~repro.engine.tiling.plan_result_tiles`) instead of
one giant line.

Every knob is available both as a constructor argument / CLI flag and
as a ``REPRO_SERVE_*`` environment variable (the flag wins):

========================================  =====================================
variable                                  meaning
========================================  =====================================
``REPRO_SERVE_HOST``                      bind address (default ``127.0.0.1``)
``REPRO_SERVE_PORT``                      bind port (default ``7753``; 0 = ephemeral)
``REPRO_SERVE_CACHE_BYTES``               result-cache budget in payload bytes
``REPRO_SERVE_BATCH_WINDOW_MS``           micro-batch window in milliseconds
``REPRO_SERVE_STREAM_THRESHOLD_BYTES``    payload size that switches to tiles
========================================  =====================================

The server is single-process: evaluations already parallelize through
the engine's executor knobs (``REPRO_SWEEP_EXECUTOR`` et al.), which a
served deployment sets the same way a batch run would.
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import math
import os
import threading
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..engine.sweep import Sweep, SweepError, SweepResult, _ENDPOINT_OBSERVABLES
from ..engine.tiling import plan_result_tiles
from .batcher import DEFAULT_BATCH_WINDOW_MS, MicroBatcher
from .cache import DEFAULT_CACHE_BYTES, ResultCache
from .protocol import (
    E_BAD_JSON,
    E_BAD_REQUEST,
    E_BAD_SPEC,
    E_INTERNAL,
    E_UNKNOWN_OP,
    E_VERSION,
    MAX_LINE_BYTES,
    OPS,
    decode_line,
    encode_line,
    error_envelope,
    ok_envelope,
)
from .spec import canonical_key, canonical_spec, encode_canonical

__all__ = [
    "BATCH_WINDOW_ENV",
    "CACHE_BYTES_ENV",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_STREAM_THRESHOLD_BYTES",
    "HOST_ENV",
    "PORT_ENV",
    "STREAM_THRESHOLD_ENV",
    "ServerHandle",
    "SweepServer",
    "main",
    "start_server_thread",
]

HOST_ENV = "REPRO_SERVE_HOST"
PORT_ENV = "REPRO_SERVE_PORT"
CACHE_BYTES_ENV = "REPRO_SERVE_CACHE_BYTES"
BATCH_WINDOW_ENV = "REPRO_SERVE_BATCH_WINDOW_MS"
STREAM_THRESHOLD_ENV = "REPRO_SERVE_STREAM_THRESHOLD_BYTES"

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7753

#: Result payloads at or below this encoded size travel as one response
#: line; larger ones as a tile stream.  1 MiB keeps single lines cheap
#: to buffer while full Monte-Carlo tensors still stream.
DEFAULT_STREAM_THRESHOLD_BYTES = 1 << 20

#: Rough encoded size of one value in a JSON tile line (a float64's
#: shortest round-trip repr plus separators) — converts the stream
#: threshold into a per-tile element budget.
_BYTES_PER_VALUE = 32


def _env_value(name: str, parse, fallback):
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return fallback
    try:
        return parse(raw)
    except ValueError as error:
        raise SweepError(f"{name}={raw!r} is not a valid value: {error}") from error


class _RequestError(Exception):
    """A request-level failure with a stable protocol error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


class SweepServer:
    """A persistent sweep-evaluation service on one TCP socket.

    ``evaluations`` counts every engine evaluation the server performs
    (full sweeps and micro-batches alike) — the hook the cache and
    batching tests assert against: a repeat query must leave it
    untouched, eight coalesced points must bump it once.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        cache_bytes: Optional[int] = None,
        batch_window_ms: Optional[float] = None,
        stream_threshold_bytes: Optional[int] = None,
        run_kwargs: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.host = host if host is not None else _env_value(HOST_ENV, str, DEFAULT_HOST)
        self.port = int(
            port if port is not None else _env_value(PORT_ENV, int, DEFAULT_PORT)
        )
        if cache_bytes is None:
            cache_bytes = _env_value(CACHE_BYTES_ENV, int, DEFAULT_CACHE_BYTES)
        if batch_window_ms is None:
            batch_window_ms = _env_value(
                BATCH_WINDOW_ENV, float, DEFAULT_BATCH_WINDOW_MS
            )
        if stream_threshold_bytes is None:
            stream_threshold_bytes = _env_value(
                STREAM_THRESHOLD_ENV, int, DEFAULT_STREAM_THRESHOLD_BYTES
            )
        self.stream_threshold_bytes = int(stream_threshold_bytes)
        if self.stream_threshold_bytes < 1:
            raise SweepError("stream_threshold_bytes must be at least 1")
        self.cache = ResultCache(int(cache_bytes))
        self.batcher = MicroBatcher(self._evaluate_payload, float(batch_window_ms))
        self._run_kwargs = dict(run_kwargs or {})
        self.evaluations = 0
        self.requests = 0
        self._inflight: Dict[str, asyncio.Future] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._connections: set = set()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind the socket (resolving port 0 to the kernel's pick)."""
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` op (or :meth:`request_shutdown`)."""
        if self._server is None:
            await self.start()
        try:
            await self._stopped.wait()
        finally:
            await self.aclose()

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (safe from within the loop)."""
        if self._stopped is not None:
            self._stopped.set()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Drain open connections: cancel their handler tasks and wait,
        # so loop teardown never races a half-closed stream.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # ------------------------------------------------------------------ #
    # evaluation (the counted hook)
    # ------------------------------------------------------------------ #

    async def _evaluate_payload(self, payload: Mapping[str, Any]) -> SweepResult:
        """One engine evaluation of a serialized spec, off the event loop."""
        sweep = Sweep.from_dict(payload)
        self.evaluations += 1
        return await asyncio.to_thread(sweep.run, **self._run_kwargs)

    async def _sweep_payload(self, key: str, canonical: Dict[str, Any]) -> Tuple[Dict[str, Any], int, bool]:
        """The result payload for a canonical sweep: cache, then engine.

        Returns ``(payload, encoded_size, cached)``.  Concurrent misses
        on the same key share one evaluation (single-flight): the first
        request evaluates, the rest await its future.
        """
        cached = self.cache.get(key)
        if cached is not None:
            return cached, len(_encode_result(cached)), True
        waiter = self._inflight.get(key)
        if waiter is not None:
            payload, size = await asyncio.shield(waiter)
            return payload, size, True
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        # Mark exceptions retrieved even when no duplicate request ever
        # awaits the future.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._inflight[key] = future
        try:
            result = await self._evaluate_payload(canonical)
            payload = result.to_dict()
            size = len(_encode_result(payload))
            self.cache.put(key, payload, size)
            future.set_result((payload, size))
            return payload, size, False
        except Exception as error:
            future.set_exception(error)
            raise
        finally:
            self._inflight.pop(key, None)

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        encode_line(
                            error_envelope(
                                E_BAD_REQUEST,
                                f"request line exceeds {MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                keep_going = await self._dispatch(line, writer)
                if not keep_going:
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            # Shutdown cancels open connections; finish closing below
            # instead of ending as a cancelled task (which asyncio's
            # stream machinery would log as an unhandled error).
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _dispatch(self, line: bytes, writer: asyncio.StreamWriter) -> bool:
        """Answer one request line; False ends the connection."""
        self.requests += 1
        request_id: Optional[Any] = None
        try:
            try:
                message = decode_line(line)
            except ValueError as error:
                raise _RequestError(E_BAD_JSON, f"request is not valid JSON: {error}")
            if not isinstance(message, Mapping):
                raise _RequestError(
                    E_BAD_REQUEST,
                    f"request must be a JSON object, got {type(message).__name__}",
                )
            request_id = message.get("id")
            op = message.get("op")
            if not isinstance(op, str):
                raise _RequestError(E_BAD_REQUEST, "request is missing its 'op' field")
            if op == "ping":
                writer.write(
                    encode_line(
                        ok_envelope("ping", request_id, version=Sweep.SCHEMA_VERSION)
                    )
                )
            elif op == "stats":
                writer.write(encode_line(ok_envelope("stats", request_id, stats=self.stats())))
            elif op == "shutdown":
                writer.write(encode_line(ok_envelope("shutdown", request_id)))
                await writer.drain()
                self.request_shutdown()
                return False
            elif op == "sweep":
                await self._handle_sweep(message, request_id, writer)
            elif op == "point":
                await self._handle_point(message, request_id, writer)
            else:
                raise _RequestError(
                    E_UNKNOWN_OP, f"unknown op {op!r}; ops are {list(OPS)}"
                )
        except _RequestError as error:
            writer.write(encode_line(error_envelope(error.code, error.message, request_id)))
        except SweepError as error:
            writer.write(encode_line(error_envelope(E_BAD_SPEC, str(error), request_id)))
        except Exception as error:  # noqa: BLE001 - protocol boundary
            writer.write(
                encode_line(
                    error_envelope(
                        E_INTERNAL, f"{type(error).__name__}: {error}", request_id
                    )
                )
            )
        await writer.drain()
        return True

    def _spec_from(self, message: Mapping[str, Any]) -> Mapping[str, Any]:
        spec = message.get("spec")
        if not isinstance(spec, Mapping):
            raise _RequestError(
                E_BAD_REQUEST,
                f"request needs a 'spec' object, got "
                f"{type(spec).__name__ if spec is not None else 'nothing'}",
            )
        version = spec.get("version")
        if version is not None and version != Sweep.SCHEMA_VERSION:
            raise _RequestError(
                E_VERSION,
                f"spec has schema version {version!r}; this server reads "
                f"version {Sweep.SCHEMA_VERSION}",
            )
        return spec

    async def _handle_sweep(
        self,
        message: Mapping[str, Any],
        request_id: Optional[Any],
        writer: asyncio.StreamWriter,
    ) -> None:
        spec = self._spec_from(message)
        canonical = canonical_spec(spec)
        key = _key_of(canonical)
        payload, size, cached = await self._sweep_payload(key, canonical)
        await self._respond_result(writer, "sweep", request_id, key, payload, size, cached)

    async def _handle_point(
        self,
        message: Mapping[str, Any],
        request_id: Optional[Any],
        writer: asyncio.StreamWriter,
    ) -> None:
        spec = self._spec_from(message)
        temperature = message.get("temperature_c")
        if (
            isinstance(temperature, bool)
            or not isinstance(temperature, (int, float))
            or not math.isfinite(temperature)
        ):
            raise _RequestError(
                E_BAD_REQUEST,
                f"point requests need a finite 'temperature_c' number, got "
                f"{temperature!r}",
            )
        base = canonical_spec(spec)
        if any(axis.get("name") == "temperature" for axis in base["axes"]):
            raise _RequestError(
                E_BAD_REQUEST,
                "a point spec must not carry a temperature axis; the query's "
                "'temperature_c' is the point (use op=sweep for a grid)",
            )
        if base["observable"] in _ENDPOINT_OBSERVABLES:
            raise _RequestError(
                E_BAD_REQUEST,
                f"observable {base['observable']!r} couples every temperature "
                f"to the grid endpoints, so point queries cannot be batched; "
                f"use op=sweep with the full temperature grid",
            )
        base_key = _key_of(base)
        full = dict(base)
        full["axes"] = list(base["axes"]) + [
            {"name": "temperature", "coordinates": [float(temperature)]}
        ]
        full_key = _key_of(full)
        cached = self.cache.get(full_key)
        if cached is not None:
            await self._respond_result(
                writer, "point", request_id, full_key, cached,
                len(_encode_result(cached)), True,
            )
            return
        result = await self.batcher.submit(base_key, base, float(temperature))
        payload = result.to_dict()
        size = len(_encode_result(payload))
        self.cache.put(full_key, payload, size)
        await self._respond_result(
            writer, "point", request_id, full_key, payload, size, False
        )

    async def _respond_result(
        self,
        writer: asyncio.StreamWriter,
        op: str,
        request_id: Optional[Any],
        key: str,
        payload: Dict[str, Any],
        size: int,
        cached: bool,
    ) -> None:
        """One result line — or a tile stream when the payload is big."""
        dims = tuple(payload["dims"])
        if size <= self.stream_threshold_bytes or not dims:
            writer.write(
                encode_line(
                    ok_envelope(op, request_id, key=key, cached=cached, result=payload)
                )
            )
            await writer.drain()
            return
        shape = tuple(len(payload["coords"][name]) for name in dims)
        values = np.asarray(payload["values"], dtype=payload.get("dtype", "float64"))
        tiles = plan_result_tiles(
            dims, shape, max(1, self.stream_threshold_bytes // _BYTES_PER_VALUE)
        )
        meta = {
            "version": payload["version"],
            "observable": payload["observable"],
            "dims": list(dims),
            "coords": payload["coords"],
            "dtype": payload.get("dtype", "float64"),
        }
        writer.write(
            encode_line(
                ok_envelope(
                    op,
                    request_id,
                    key=key,
                    cached=cached,
                    stream=True,
                    meta=meta,
                    tile_count=len(tiles),
                )
            )
        )
        await writer.drain()
        for tile in tiles:
            writer.write(
                encode_line(
                    {
                        "tile": tile.index,
                        "bounds": [list(bound) for bound in tile.bounds],
                        "values": values[tile.slices(dims)].tolist(),
                    }
                )
            )
            await writer.drain()
        writer.write(encode_line({"done": True, "tiles": len(tiles)}))
        await writer.drain()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, Any]:
        return {
            "evaluations": self.evaluations,
            "requests": self.requests,
            "inflight": len(self._inflight),
            "cache": self.cache.stats(),
            "batcher": self.batcher.stats(),
        }


def _encode_result(payload: Mapping[str, Any]) -> bytes:
    """The byte size a result payload is charged at (its compact JSON)."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def _key_of(canonical: Mapping[str, Any]) -> str:
    """Key an *already canonical* payload without re-round-tripping it."""
    return hashlib.sha256(encode_canonical(canonical)).hexdigest()


# --------------------------------------------------------------------------- #
# threaded embedding (tests, benchmarks, the CI smoke step)
# --------------------------------------------------------------------------- #


class ServerHandle:
    """A server running on a daemon thread, stoppable from the caller."""

    def __init__(self, server: SweepServer) -> None:
        self.server = server
        self.thread: Optional[threading.Thread] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 10.0) -> None:
        """Request shutdown (idempotent) and join the serving thread."""
        if self.loop is not None:
            try:
                self.loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed: the server stopped on its own
        if self.thread is not None:
            self.thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def start_server_thread(**kwargs: Any) -> ServerHandle:
    """Start a :class:`SweepServer` on a daemon thread and wait for bind.

    Keyword arguments go to the :class:`SweepServer` constructor;
    ``port=0`` (the default here) binds an ephemeral port, readable as
    ``handle.port`` once this returns.
    """
    kwargs.setdefault("port", 0)
    server = SweepServer(**kwargs)
    handle = ServerHandle(server)
    ready = threading.Event()
    failure: List[BaseException] = []

    def _run() -> None:
        async def _main() -> None:
            try:
                await server.start()
            except BaseException as error:  # noqa: BLE001 - reported to caller
                failure.append(error)
                ready.set()
                return
            handle.loop = asyncio.get_running_loop()
            ready.set()
            try:
                await server._stopped.wait()
            finally:
                await server.aclose()

        asyncio.run(_main())

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    handle.thread = thread
    thread.start()
    if not ready.wait(timeout=30.0):  # pragma: no cover - hung interpreter
        raise SweepError("sweep server failed to start within 30 s")
    if failure:
        raise SweepError(f"sweep server failed to bind: {failure[0]}") from failure[0]
    return handle


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


def main(argv: Optional[List[str]] = None) -> int:
    """`repro-serve` / ``python -m repro.serve``: run a server until stopped."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Persistent sweep-evaluation service: NDJSON over TCP, "
            "content-addressed result caching, micro-batched point queries."
        ),
    )
    parser.add_argument(
        "--host",
        default=None,
        help=f"bind address (default {HOST_ENV} or {DEFAULT_HOST})",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help=f"bind port, 0 for ephemeral (default {PORT_ENV} or {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        help=(
            f"result-cache budget in payload bytes "
            f"(default {CACHE_BYTES_ENV} or {DEFAULT_CACHE_BYTES})"
        ),
    )
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=None,
        help=(
            f"micro-batch window in milliseconds "
            f"(default {BATCH_WINDOW_ENV} or {DEFAULT_BATCH_WINDOW_MS})"
        ),
    )
    parser.add_argument(
        "--stream-threshold-bytes",
        type=int,
        default=None,
        help=(
            f"encoded payload size that switches responses to tile "
            f"streaming (default {STREAM_THRESHOLD_ENV} or "
            f"{DEFAULT_STREAM_THRESHOLD_BYTES})"
        ),
    )
    args = parser.parse_args(argv)

    server = SweepServer(
        host=args.host,
        port=args.port,
        cache_bytes=args.cache_bytes,
        batch_window_ms=args.batch_window_ms,
        stream_threshold_bytes=args.stream_threshold_bytes,
    )

    async def _serve() -> None:
        await server.start()
        print(f"repro-serve listening on {server.host}:{server.port}", flush=True)
        await server.serve_until_shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
