"""Canonical sweep-spec form and its content-addressed key.

The sweep service answers repeat queries from a result cache, which is
only as good as its key: two *semantically identical* requests must
collide, however their payloads were spelled.  The serialized form
(:meth:`repro.engine.sweep.Sweep.to_dict`) already fixes most spelling
freedom, but a payload that arrives off the wire may still differ in
JSON key order, axis declaration order, or numeric dtype (``25`` vs
``25.0``, a numpy scalar vs a Python float).

:func:`canonical_spec` removes all of it by round-tripping the payload
through the real builder — ``Sweep.from_dict(payload).to_dict()`` — so
canonicalization *is* validation: axes come back in
:data:`~repro.engine.sweep.CANONICAL_AXIS_ORDER`, coordinates come back
as plain Python floats/ints, defaults are materialized, and anything
the engine would reject raises :class:`~repro.engine.sweep.SweepError`
right here instead of at evaluation time.  :func:`canonical_key` then
hashes the sorted-key compact JSON encoding of that canonical form with
SHA-256.

Technology references inside the canonical form are themselves
content-addressed: a registered node canonicalizes to its ``{name,
digest}`` reference (the digest of its declarative parameter bundle,
verified against this process's registry during the round trip — a
disagreement raises
:class:`~repro.engine.sweep.TechnologyMismatchError`), and an inline
bundle that matches a registered node collapses to the same reference.
Re-registering a node with different parameters therefore changes every
key that mentions it: stale cache entries become unreachable instead of
wrong.

The key's stability across releases is load-bearing (a canonicalization
drift silently splits the cache in two), so
``tests/test_serve_spec.py`` pins the key of a representative spec to a
committed golden hash.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..engine.sweep import Sweep, SweepError

__all__ = ["canonical_key", "canonical_spec", "encode_canonical", "split_temperature"]


def canonical_spec(spec: Union[Sweep, Mapping[str, Any]]) -> Dict[str, Any]:
    """The canonical plain-data form of a sweep spec.

    Accepts a :class:`~repro.engine.sweep.Sweep` or a serialized spec
    mapping; returns the normalized payload (canonical axis order,
    plain Python scalars, defaults materialized).  Raises
    :class:`~repro.engine.sweep.SweepError` for anything the engine
    could not evaluate.
    """
    if isinstance(spec, Sweep):
        payload = spec.to_dict()
    elif isinstance(spec, Mapping):
        payload = spec
    else:
        raise SweepError(
            f"canonical_spec takes a Sweep or a serialized spec mapping, "
            f"got {type(spec).__name__}"
        )
    return Sweep.from_dict(payload).to_dict()


def encode_canonical(payload: Mapping[str, Any]) -> bytes:
    """The canonical byte encoding of an (already canonical) payload.

    Compact separators and sorted keys, so the encoding is a pure
    function of the payload's content — the exact bytes
    :func:`canonical_key` hashes.
    """
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise SweepError(f"spec payload is not JSON-serializable: {error}") from error


def split_temperature(
    canonical: Mapping[str, Any],
) -> Tuple[Dict[str, Any], Optional[List[float]]]:
    """Split an (already canonical) payload into base spec + temperature grid.

    Returns ``(base, temperatures)``: the payload with its explicit
    ``temperature`` axis removed, and that axis's coordinate list — or
    ``None`` when the payload declares no temperature axis (the grid is
    then the engine's to choose, and the spec is not coalescable).  The
    base is what the server's sweep coalescer keys batches on: two
    requests differing only along the temperature axis share a base.
    """
    axes = canonical.get("axes", ())
    temperatures: Optional[List[float]] = None
    rest: List[Any] = []
    for axis in axes:
        if isinstance(axis, Mapping) and axis.get("name") == "temperature":
            temperatures = [float(t) for t in axis.get("coordinates", ())]
        else:
            rest.append(axis)
    base = dict(canonical)
    base["axes"] = rest
    return base, temperatures


def canonical_key(spec: Union[Sweep, Mapping[str, Any]]) -> str:
    """Content-address a sweep spec: SHA-256 of its canonical encoding.

    Semantically identical specs — same axes in any declaration order,
    same coordinates in any numeric dtype, same base context however
    defaulted — map to the same hex key; any semantic difference maps
    to a different one (modulo SHA-256).  This is the result-cache key
    of the sweep service.
    """
    return hashlib.sha256(encode_canonical(canonical_spec(spec))).hexdigest()
