"""Analytical propagation-delay models (alpha-power law + load models)."""

from .alpha_power import (
    DELAY_FIT_FACTOR,
    DelayModelOptions,
    DriveNetwork,
    StackModel,
    effective_saturation_current,
    gate_delay,
)
from .load import (
    StageLoad,
    input_capacitance,
    output_parasitic_capacitance,
    wire_capacitance,
)

__all__ = [
    "DELAY_FIT_FACTOR",
    "DelayModelOptions",
    "DriveNetwork",
    "StackModel",
    "effective_saturation_current",
    "gate_delay",
    "StageLoad",
    "input_capacitance",
    "output_parasitic_capacitance",
    "wire_capacitance",
]
