"""Analytical gate-delay model based on the alpha-power law.

The temperature sweeps behind the paper's Fig. 2 and Fig. 3 need the
propagation delay of every stage at dozens of temperatures and for many
candidate configurations.  Running the transistor-level transient
simulator for each point would work but is slow, so the library follows
standard practice: a closed-form delay model (this module) backs the
sweeps, and the transient simulator validates it at spot points.

Model
-----

A CMOS gate discharging (or charging) a load ``C_L`` through its
pull-down (pull-up) network is approximated by the Sakurai--Newton
switching model: the output traverses half the supply at roughly the
saturation current of the driving network, giving

``tp = DELAY_FIT_FACTOR * C_L * VDD / I_eff(T)``

``I_eff`` is the saturation current of the switching transistor(s),
corrected for series stacks:

* the drive coefficient is divided by the stack depth (series
  resistance),
* the velocity-saturation index alpha increases towards 2 for stacked
  devices (each device sees a smaller drain-source voltage and is
  therefore less velocity saturated),
* the threshold of the upper devices rises slightly due to body effect.

The stack corrections are what give NAND-like (NMOS stack) and NOR-like
(PMOS stack) gates temperature characteristics that differ from the
inverter — the degree of freedom the paper's cell-based optimisation
exploits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from ..tech.parameters import Technology, TechnologyError, celsius_to_kelvin
from ..tech.temperature import device_at

__all__ = [
    "StackModel",
    "DriveNetwork",
    "effective_saturation_current",
    "gate_delay",
    "DelayModelOptions",
]

#: Fitting factor mapping C*V/I to a 50 % propagation delay.  The exact
#: value only scales absolute delays (it cancels out of the non-linearity
#: metric); 0.52 matches the transient simulator within a few percent for
#: the default inverter.
DELAY_FIT_FACTOR = 0.52


@dataclass(frozen=True)
class StackModel:
    """Empirical corrections applied to series transistor stacks.

    Attributes
    ----------
    alpha_increment_per_level:
        Increase of the velocity-saturation index per additional series
        device (capped at the square-law value of 2).
    threshold_body_factor:
        Relative threshold increase per additional series device,
        modelling the body effect on the devices away from the rail.
    series_derating:
        Extra multiplicative current derating per additional series
        device beyond the ideal 1/depth (accounts for the distributed
        internal node capacitance); 1.0 means ideal.
    """

    alpha_increment_per_level: float = 0.08
    threshold_body_factor: float = 0.045
    series_derating: float = 1.03

    def __post_init__(self) -> None:
        if self.alpha_increment_per_level < 0.0:
            raise TechnologyError("alpha_increment_per_level must be >= 0")
        if self.threshold_body_factor < 0.0:
            raise TechnologyError("threshold_body_factor must be >= 0")
        if self.series_derating < 1.0:
            raise TechnologyError("series_derating must be >= 1")


@dataclass(frozen=True)
class DelayModelOptions:
    """Options shared by all analytical delay evaluations."""

    stack: StackModel = StackModel()
    fit_factor: float = DELAY_FIT_FACTOR

    def __post_init__(self) -> None:
        if self.fit_factor <= 0.0:
            raise TechnologyError("fit_factor must be positive")


@dataclass(frozen=True)
class DriveNetwork:
    """The switching network of one gate transition.

    Attributes
    ----------
    polarity:
        ``"nmos"`` for the pull-down network (high-to-low output
        transition) or ``"pmos"`` for the pull-up network.
    width_um:
        Width of each transistor in the network.
    stack_depth:
        Number of series devices between output and rail (1 for an
        inverter, 2 for a NAND2 pull-down, ...).
    """

    polarity: str
    width_um: float
    stack_depth: int = 1

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise TechnologyError("polarity must be 'nmos' or 'pmos'")
        if self.width_um <= 0.0:
            raise TechnologyError("width_um must be positive")
        if self.stack_depth < 1:
            raise TechnologyError("stack_depth must be at least 1")


def effective_saturation_current(
    tech: Technology,
    network: DriveNetwork,
    temperature_c: Union[float, np.ndarray],
    options: DelayModelOptions = DelayModelOptions(),
) -> Union[float, np.ndarray]:
    """Effective saturation current (A) of a drive network at ``temperature_c``.

    Applies the stack corrections described in the module docstring to
    the alpha-power saturation current of a single device of the
    network's width.  ``temperature_c`` may be an ndarray, in which case
    the current is evaluated elementwise over the whole grid in one call
    (the vectorized batch-evaluation path).

    ``tech`` may also be a stacked population
    (:class:`~repro.tech.stacked.TechnologyArray`), whose parameter
    fields are ``(samples, 1)`` columns: the current then broadcasts
    over the leading sample axis as well, giving a
    ``(samples, temperatures)`` matrix in the same single call.
    """
    params = tech.transistor(network.polarity)
    temp_k = celsius_to_kelvin(temperature_c)
    device = device_at(params, temp_k)

    depth = network.stack_depth
    stack = options.stack

    alpha_raised = device.alpha + stack.alpha_increment_per_level * (depth - 1)
    if isinstance(alpha_raised, np.ndarray):
        alpha_eff = np.minimum(2.0, alpha_raised)
    else:
        alpha_eff = min(2.0, alpha_raised)
    vth_eff = device.vth * (1.0 + stack.threshold_body_factor * (depth - 1))
    overdrive = tech.vdd - vth_eff
    if np.any(np.asarray(overdrive) <= 0.0):
        raise TechnologyError(
            f"supply {tech.vdd} V does not exceed the effective threshold "
            f"{np.max(vth_eff):.3f} V of a depth-{depth} {network.polarity} stack"
        )

    # Drive coefficient per micron: 0.5 * mu(T) * Cox / L, normalised to
    # 1 V overdrive for non-integer alpha (see repro.devices.mosfet).
    kprime = device.process_transconductance
    length = device.channel_length_um
    drive_per_um = 0.5 * kprime / length

    current = network.width_um * drive_per_um * overdrive ** alpha_eff
    divider = depth * stack.series_derating ** (depth - 1)
    return current / divider


def gate_delay(
    tech: Technology,
    network: DriveNetwork,
    load_capacitance_f: Union[float, np.ndarray],
    temperature_c: Union[float, np.ndarray],
    options: DelayModelOptions = DelayModelOptions(),
) -> Union[float, np.ndarray]:
    """Propagation delay (seconds) of one transition.

    ``network.polarity == "nmos"`` gives tpHL (output discharged through
    the pull-down network); ``"pmos"`` gives tpLH.  Passing an ndarray of
    temperatures returns the matching ndarray of delays in one
    vectorized evaluation.  With a stacked technology
    (:class:`~repro.tech.stacked.TechnologyArray`) the load is a
    ``(samples, 1)`` column (gate capacitance varies with the sampled
    oxide capacitance) and the delay broadcasts to a
    ``(samples, temperatures)`` matrix.
    """
    if np.any(np.asarray(load_capacitance_f) <= 0.0):
        raise TechnologyError("load capacitance must be positive")
    current = effective_saturation_current(tech, network, temperature_c, options)
    if np.any(np.asarray(current) <= 0.0):
        raise TechnologyError("effective drive current must be positive")
    return options.fit_factor * load_capacitance_f * tech.vdd / current
