"""Capacitive load models for standard-cell stages.

The delay of a ring-oscillator stage depends on the capacitance hanging
on its output node: the gate capacitance of the next stage's driven
input, the driving cell's own drain (parasitic) capacitance, and a small
amount of local wiring.  These helpers compute each contribution from
the technology parameters so that both the analytical delay model and
the transistor-level netlists use consistent numbers.

All three helpers accept a stacked population
(:class:`~repro.tech.stacked.TechnologyArray`) in place of a scalar
technology, in which case the returned capacitance is a
``(samples, 1)`` column (oxide and wire capacitance vary per sample)
that broadcasts through the delay model's sample axis.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tech.parameters import Technology, TechnologyError

__all__ = ["input_capacitance", "output_parasitic_capacitance", "wire_capacitance", "StageLoad"]


def input_capacitance(tech: Technology, nmos_width_um: float, pmos_width_um: float) -> float:
    """Gate capacitance (F) presented by one input of a CMOS gate.

    One input of a static CMOS gate drives exactly one NMOS and one PMOS
    gate terminal regardless of the gate type; only the widths differ.
    """
    if nmos_width_um <= 0.0 or pmos_width_um <= 0.0:
        raise TechnologyError("transistor widths must be positive")
    return (
        tech.nmos.gate_cap_f_per_um * nmos_width_um
        + tech.pmos.gate_cap_f_per_um * pmos_width_um
    )


def output_parasitic_capacitance(
    tech: Technology,
    nmos_width_um: float,
    pmos_width_um: float,
    nmos_on_output: int = 1,
    pmos_on_output: int = 1,
) -> float:
    """Drain-junction capacitance (F) loading a gate's own output node.

    ``nmos_on_output`` / ``pmos_on_output`` count how many drains of each
    polarity connect to the output (e.g. a NAND2 has 1 NMOS drain — the
    top of the stack — and 2 PMOS drains on the output).
    """
    if nmos_on_output < 0 or pmos_on_output < 0:
        raise TechnologyError("drain counts must be non-negative")
    n_cap = (
        tech.nmos.junction_cap_f_per_um + 2.0 * tech.nmos.overlap_cap_f_per_um
    ) * nmos_width_um * nmos_on_output
    p_cap = (
        tech.pmos.junction_cap_f_per_um + 2.0 * tech.pmos.overlap_cap_f_per_um
    ) * pmos_width_um * pmos_on_output
    return n_cap + p_cap


def wire_capacitance(tech: Technology, length_um: float) -> float:
    """Local interconnect capacitance (F) for a wire of given length."""
    if length_um < 0.0:
        raise TechnologyError("wire length must be non-negative")
    return tech.wire_cap_f_per_um * length_um


@dataclass(frozen=True)
class StageLoad:
    """Decomposition of the load on one oscillator stage's output."""

    next_stage_input_f: float
    self_parasitic_f: float
    wire_f: float

    @property
    def total_f(self) -> float:
        return self.next_stage_input_f + self.self_parasitic_f + self.wire_f
