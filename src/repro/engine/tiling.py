"""Tiling pass: partition a lowered sweep into bounded-memory chunks.

:meth:`~repro.engine.sweep.SweepPlan._execute_dense` materializes the
whole axis product as one in-memory broadcast — fine at paper scale,
a hard wall for production cross products (a configuration x
resolution x sample x temperature sweep at millions of samples is one
multi-gigabyte allocation on one core).  This module is the planning
half of the split: :func:`plan_tiles` partitions the *result index
space* of a validated :class:`~repro.engine.sweep.SweepPlan` into
:class:`Tile` chunks whose dense sub-tensors respect a memory budget,
and :func:`subplan` lowers one tile back into an ordinary ``SweepPlan``
over sliced axes, ready for any executor backend
(:mod:`repro.engine.executors`) to evaluate.

Only *elementwise* axes are split — ``sample`` first (slicing the
struct-of-arrays technology population by rows), then ``temperature``
(slicing the evaluation grid) — because the whole delay stack is
elementwise in those dimensions: a tile's broadcast computes exactly
the same floating-point operations, in the same order, as the
corresponding slice of the dense pass, so tiled results are **bitwise
identical** to dense ones.  The endpoint-fit observables
(``transfer_c`` / ``calibration_error_c`` / ``nonlinearity_percent``)
couple every temperature to the grid's extremes, so for them the
temperature axis is never split (the sample axis still is).  Axes that
re-solve shared state per coordinate (``technology``, ``configuration``,
``resolution``, ``site``, ``width_ratio``) are never split — a
``technology`` axis rides whole inside every tile, its per-node loop
re-entered by the tile's dense evaluation; when none of the splittable
axes is present the sweep is one tile regardless of budget — the budget
is a bound on what tiling *can* bound, not a hard allocation cap.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..tech.stacked import TechnologyArray
from .sweep import _ENDPOINT_OBSERVABLES, Axis, SweepError, SweepPlan

__all__ = [
    "DEFAULT_TILE_ELEMENTS",
    "Tile",
    "TilingPlan",
    "plan_result_tiles",
    "plan_tiles",
    "subplan",
    "tile_index_space",
]

#: Default bound on a tile's dense element count when a tiled execution
#: is requested without an explicit budget: 2^20 float64 elements is an
#: 8 MiB sub-tensor — small enough to stream and pickle cheaply, large
#: enough that per-tile planning overhead stays negligible.
DEFAULT_TILE_ELEMENTS = 1 << 20

#: Result dtype assumed when converting a byte budget into an element
#: budget (``period``/``power`` are float64, ``code`` is int64 — both 8).
_ITEMSIZE = 8

#: The axes a tiling pass may split, in preference order.  Both are
#: purely elementwise through the evaluation stack, which is what makes
#: tiled-vs-dense results bitwise identical; ``sample`` first because
#: populations are the axis that actually grows without bound.
SPLITTABLE_AXES = ("sample", "temperature")


@dataclass(frozen=True)
class Tile:
    """One bounded chunk of a sweep's result index space.

    ``bounds`` maps each *split* axis name to its ``(start, stop)``
    index range; axes absent from ``bounds`` are carried whole.  The
    tile knows nothing about values — it is pure coordinates, cheap to
    pickle to a worker process.
    """

    index: int
    bounds: Tuple[Tuple[str, int, int], ...]

    def bounds_for(self, name: str) -> Optional[Tuple[int, int]]:
        for axis, start, stop in self.bounds:
            if axis == name:
                return (start, stop)
        return None

    def slices(self, dims: Tuple[str, ...]) -> Tuple[slice, ...]:
        """Index expression selecting this tile inside the full tensor."""
        expression = []
        for name in dims:
            span = self.bounds_for(name)
            expression.append(slice(*span) if span else slice(None))
        return tuple(expression)

    def element_count(self, dims: Tuple[str, ...], shape: Tuple[int, ...]) -> int:
        total = 1
        for name, extent in zip(dims, shape):
            span = self.bounds_for(name)
            total *= (span[1] - span[0]) if span else extent
        return total


@dataclass(frozen=True)
class TilingPlan:
    """A sweep plan plus its partition into bounded-memory tiles.

    ``dims`` / ``shape`` / ``coords`` describe the *full* canonical
    result the tiles assemble into; ``tiles`` covers that index space
    exactly once (contiguous blocks along the split axes, dense cross
    product, no overlap).
    """

    plan: SweepPlan
    dims: Tuple[str, ...]
    shape: Tuple[int, ...]
    coords: Dict[str, Tuple[Any, ...]]
    tiles: Tuple[Tile, ...]

    @property
    def total_elements(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    def subplan(self, tile: Tile) -> SweepPlan:
        return subplan(self.plan, tile)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extent = ", ".join(
            f"{name}={size}" for name, size in zip(self.dims, self.shape)
        )
        return f"TilingPlan({extent}; tiles={len(self.tiles)})"


def _splittable_axes(plan: SweepPlan) -> List[str]:
    """The axes of this plan a tiling pass may slice, in split order."""
    names = [axis.name for axis in plan.axes]
    splittable = [name for name in SPLITTABLE_AXES if name in names]
    if plan.observable in _ENDPOINT_OBSERVABLES and "temperature" in splittable:
        # The endpoint fit calibrates every temperature against the
        # grid's extremes; a temperature tile without both endpoints
        # could not reproduce the dense numbers.
        splittable.remove("temperature")
    return splittable


def plan_tiles(
    plan: SweepPlan,
    max_tile_elements: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
) -> TilingPlan:
    """Partition a validated plan into bounded-memory tiles.

    ``max_tile_elements`` bounds each tile's dense sub-tensor directly;
    ``memory_budget_bytes`` is the same bound expressed in bytes (at 8
    bytes per element).  When both are given the tighter one wins; when
    neither is given :data:`DEFAULT_TILE_ELEMENTS` applies.  The bound
    is best-effort: unsplittable axes (everything but ``sample`` and
    ``temperature``) set a floor of one full cross-section per tile.
    """
    budgets = []
    if max_tile_elements is not None:
        if int(max_tile_elements) < 1:
            raise SweepError("max_tile_elements must be at least 1")
        budgets.append(int(max_tile_elements))
    if memory_budget_bytes is not None:
        if int(memory_budget_bytes) < _ITEMSIZE:
            raise SweepError(
                f"memory_budget_bytes must cover at least one "
                f"{_ITEMSIZE}-byte element"
            )
        budgets.append(max(1, int(memory_budget_bytes) // _ITEMSIZE))
    budget = min(budgets) if budgets else DEFAULT_TILE_ELEMENTS

    dims = tuple(axis.name for axis in plan.axes)
    shape = tuple(len(axis) for axis in plan.axes)
    coords = {axis.name: tuple(axis.coordinates) for axis in plan.axes}
    tiles = tile_index_space(dims, shape, _splittable_axes(plan), budget)
    return TilingPlan(plan=plan, dims=dims, shape=shape, coords=coords, tiles=tiles)


def tile_index_space(
    dims: Tuple[str, ...],
    shape: Tuple[int, ...],
    splittable: Sequence[str],
    budget: int,
) -> Tuple[Tile, ...]:
    """Partition an index space into budget-bounded contiguous tiles.

    The chunking core shared by :func:`plan_tiles` (splittable =
    ``sample``/``temperature``, the elementwise plan axes) and
    :func:`plan_result_tiles` (splittable = every axis — slicing a
    *materialized* tensor is always exact).  Axes are shrunk in the
    given ``splittable`` order: the first axis splits first, later axes
    only when a single coordinate of the earlier ones still exceeds the
    budget.  The tiles cover the index space exactly once (a dense
    cross product of contiguous blocks, first-split-axis major).
    """
    sizes = dict(zip(dims, shape))
    total = int(np.prod(shape, dtype=np.int64)) if shape else 1

    chunks: Dict[str, int] = {}
    remaining = total
    for name in splittable:
        if remaining <= budget:
            break
        per_unit = remaining // sizes[name]  # elements per single coordinate
        chunks[name] = max(1, min(sizes[name], budget // max(1, per_unit)))
        remaining = per_unit * chunks[name]

    if not chunks:
        return (Tile(index=0, bounds=()),)

    split_names = [name for name in splittable if name in chunks]
    ranges_per_axis = []
    for name in split_names:
        step = chunks[name]
        ranges_per_axis.append(
            [(start, min(start + step, sizes[name]))
             for start in range(0, sizes[name], step)]
        )
    tile_list: List[Tile] = []
    bounds_stack: List[List[Tuple[str, int, int]]] = [[]]
    for name, ranges in zip(split_names, ranges_per_axis):
        bounds_stack = [
            prefix + [(name, start, stop)]
            for prefix in bounds_stack
            for start, stop in ranges
        ]
    for index, bounds in enumerate(bounds_stack):
        tile_list.append(Tile(index=index, bounds=tuple(bounds)))
    return tuple(tile_list)


def plan_result_tiles(
    dims: Tuple[str, ...],
    shape: Tuple[int, ...],
    max_tile_elements: int,
) -> Tuple[Tile, ...]:
    """Partition a *materialized* result's index space for streaming.

    Unlike :func:`plan_tiles` — which may only split the elementwise
    ``sample``/``temperature`` axes because each tile re-*evaluates* its
    slice — a materialized tensor is pure data, so every axis is
    splittable: a tile is just a contiguous slice expression.  The
    sweep service (:mod:`repro.serve`) streams oversized results tile
    by tile with this, bounding each response line; the client
    reassembles via :meth:`Tile.slices`, positionally, exactly as
    :func:`~repro.engine.executors.run_plan` assembles executor tiles.
    Outer axes split first, so tiles are contiguous slabs of the
    row-major tensor.
    """
    if len(dims) != len(shape):
        raise SweepError(
            f"dims ({len(dims)}) and shape ({len(shape)}) disagree on the "
            f"dimension count"
        )
    if int(max_tile_elements) < 1:
        raise SweepError("max_tile_elements must be at least 1")
    return tile_index_space(dims, shape, list(dims), int(max_tile_elements))


def _slice_sample_axis(axis: Axis, start: int, stop: int) -> Axis:
    """The sample axis restricted to population rows ``[start, stop)``."""
    payload = axis.payload
    if isinstance(payload, TechnologyArray):
        payload = payload.sliced(start, stop)
    else:
        payload = list(payload)[start:stop]
    return Axis("sample", axis.coordinates[start:stop], payload=payload)


def _slice_temperature_axis(axis: Axis, start: int, stop: int) -> Axis:
    return Axis("temperature", axis.coordinates[start:stop])


def subplan(plan: SweepPlan, tile: Tile) -> SweepPlan:
    """Lower one tile back into an ordinary dense-executable plan.

    The returned plan is the original with its ``sample`` /
    ``temperature`` axes sliced to the tile's ranges (coordinates keep
    their global labels, so a tile's own ``SweepResult`` is still
    meaningfully labeled).  Executing it densely computes exactly the
    tile's slice of the full tensor, bit for bit.
    """
    axes = []
    for axis in plan.axes:
        span = tile.bounds_for(axis.name)
        if span is None:
            axes.append(axis)
        elif axis.name == "sample":
            axes.append(_slice_sample_axis(axis, *span))
        elif axis.name == "temperature":
            axes.append(_slice_temperature_axis(axis, *span))
        else:  # pragma: no cover - plan_tiles never splits other axes
            raise SweepError(f"axis {axis.name!r} cannot be tiled")
    return replace(plan, axes=tuple(axes))
