"""Pluggable execution backends for tiled sweeps.

The planner (:mod:`repro.engine.sweep`) lowers a workload, the tiling
pass (:mod:`repro.engine.tiling`) partitions it into bounded-memory
chunks, and this module runs the chunks:

* :class:`SerialExecutor` — evaluates tiles in order, in process.  With
  one tile this is exactly the dense path; with many it is the
  bounded-memory reference backend the others must bit-match.
* :class:`ProcessExecutor` — fans tiles out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  The technology
  population's stacked columns travel to the workers through one POSIX
  shared-memory block (:mod:`multiprocessing.shared_memory`) and are
  rebuilt zero-copy per worker, so the per-tile pickle payload is the
  small plan skeleton — not the population.  Worker pools are reused
  across runs (keyed by start method and size) so repeated sweeps pay
  worker startup once.
* :class:`MemmapExecutor` — the out-of-core backend: tiles run serially
  but the assembled result lives in an ``np.memmap``-backed array, so a
  sweep whose dense tensor exceeds RAM (or the configured
  ``memory_budget_bytes``) still completes, bounded by one tile plus
  the page cache.

:func:`run_plan` is the orchestration entry used by
:meth:`~repro.engine.sweep.SweepPlan.execute` /
:meth:`~repro.engine.sweep.SweepPlan.reduce`: it tiles the plan, streams
``(tile, values)`` pairs out of the backend, assembles them into a
labeled :class:`~repro.engine.sweep.SweepResult` (or feeds streaming
reducers, never materializing the tensor).  :func:`resolve_executor`
maps explicit arguments and the ``REPRO_SWEEP_EXECUTOR`` /
``REPRO_SWEEP_WORKERS`` environment variables (the CI lane's way of
routing the whole test suite through a backend) onto concrete
executors.

Fork/pickle semantics: worker processes never receive thermal
factorizations or operator caches — those are process-local (see
:mod:`repro.thermal.operator`); a worker warms its own cache from the
tiles it executes.  Nested parallelism is disabled inside workers (a
tile evaluates densely even if the environment selects the process
backend).
"""

from __future__ import annotations

import atexit
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor as _PoolImpl
from concurrent.futures import as_completed
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

import multiprocessing
import numpy as np

from ..tech.stacked import (
    TechnologyArray,
    technology_array_from_columns,
    technology_column_arrays,
)
from .sweep import Axis, SweepError, SweepPlan, SweepResult
from .tiling import Tile, TilingPlan, plan_tiles, subplan

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "MemmapExecutor",
    "make_executor",
    "resolve_executor",
    "run_plan",
]

#: Environment variable naming the default backend (``serial`` /
#: ``process`` / ``memmap``; ``dense`` or empty keeps the single-pass
#: in-memory evaluation).  Lets a CI lane or deployment route every
#: ``Sweep.run()`` through a backend without touching call sites.
EXECUTOR_ENV = "REPRO_SWEEP_EXECUTOR"
#: Worker count of an environment-selected process backend.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"
#: Default per-tile element budget when a tiled execution is requested
#: without an explicit ``max_tile_elements`` (the CLI's
#: ``--tile-elements`` flag sets this for a whole experiment run).
TILE_ELEMENTS_ENV = "REPRO_SWEEP_TILE_ELEMENTS"


class Executor:
    """Protocol of a tiled-execution backend.

    ``run_tiles`` streams ``(tile, values)`` pairs — each ``values`` is
    the tile's dense sub-tensor, bitwise identical to the corresponding
    slice of the dense single-pass evaluation; completion order is
    backend-defined (assembly is positional).  ``allocate`` provides
    the full-result storage, letting a backend choose where the
    assembled tensor lives (RAM, memmap, ...).
    """

    name = "abstract"

    def run_tiles(
        self, tiling: TilingPlan
    ) -> Iterator[Tuple[Tile, np.ndarray]]:  # pragma: no cover - protocol
        raise NotImplementedError

    def allocate(self, shape: Tuple[int, ...], dtype: Any) -> np.ndarray:
        return np.empty(shape, dtype=dtype)


class SerialExecutor(Executor):
    """In-order, in-process tile evaluation (the reference backend)."""

    name = "serial"

    def run_tiles(self, tiling: TilingPlan) -> Iterator[Tuple[Tile, np.ndarray]]:
        for tile in tiling.tiles:
            yield tile, subplan(tiling.plan, tile)._execute_dense().values


class MemmapExecutor(SerialExecutor):
    """Out-of-core backend: the assembled result is ``np.memmap``-backed.

    Tiles evaluate serially (each bounded by the tiling budget); their
    values land in a disk-backed array, so the dense result tensor never
    needs to fit in RAM.  With ``path=None`` the backing file is an
    anonymous unlinked temporary (space reclaimed when the result is
    garbage collected); an explicit ``path`` keeps the file as a
    reusable artifact.  ``memory_budget_bytes`` doubles as the default
    tiling budget when the caller gave none.
    """

    name = "memmap"

    def __init__(
        self,
        path: Optional[str] = None,
        memory_budget_bytes: int = 64 << 20,
        dir: Optional[str] = None,
    ) -> None:
        if int(memory_budget_bytes) < 8:
            raise SweepError("memory_budget_bytes must cover at least one element")
        self.path = path
        self.memory_budget_bytes = int(memory_budget_bytes)
        self.dir = dir

    def allocate(self, shape: Tuple[int, ...], dtype: Any) -> np.ndarray:
        if self.path is not None:
            return np.memmap(self.path, dtype=dtype, mode="w+", shape=shape)
        handle = tempfile.TemporaryFile(prefix="sweep-", suffix=".tile", dir=self.dir)
        # TemporaryFile is already unlinked on POSIX: the mapping (and
        # its disk space) disappears with the last reference.
        return np.memmap(handle, dtype=dtype, mode="w+", shape=shape)


# --------------------------------------------------------------------------- #
# the multiprocess backend
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class _SharedPopulation:
    """Marker payload: the sample axis's population travels via shared
    memory, not the pickled plan skeleton."""


def _preferred_start_method() -> Optional[str]:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else None


def _worker_initializer() -> None:
    # A tile must evaluate densely inside a worker even when the parent
    # environment routes sweeps through the process backend — nested
    # pools would deadlock-or-fork-bomb.
    os.environ[EXECUTOR_ENV] = "dense"


def _attach_shared_memory(name: str):
    """Attach an existing shared-memory block without tracker side effects.

    The resource tracker would register the segment again in the worker
    and try to unlink it at worker exit — racing the parent, which owns
    the segment's lifetime.  Attaching with registration suppressed
    leaves exactly one owner.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _export_population(plan: SweepPlan):
    """Move a stacked population out of the plan into shared memory.

    Returns ``(skeleton, shm, meta)``: the plan with the sample payload
    replaced by a marker, the owned shared-memory block (``None`` when
    there is nothing to share — no sample axis, or an unstackable
    per-sample technology list that pickles as-is), and the metadata a
    worker needs to rebuild the population zero-copy.
    """
    sample_axis = plan.axis("sample")
    if sample_axis is None or not isinstance(sample_axis.payload, TechnologyArray):
        return plan, None, None
    population = sample_axis.payload
    from multiprocessing import shared_memory

    columns = technology_column_arrays(population)
    total = sum(column.nbytes for column in columns.values())
    shm = shared_memory.SharedMemory(create=True, size=max(1, total))
    fields = []
    offset = 0
    for key, column in columns.items():
        span = np.ndarray(column.shape, dtype=np.float64, buffer=shm.buf, offset=offset)
        span[...] = column
        fields.append((key, offset, column.shape))
        offset += column.nbytes
    meta = {
        "shm_name": shm.name,
        "fields": fields,
        "name": population.name,
        "feature_size_um": population.feature_size_um,
        "min_width_um": population.min_width_um,
        "metal_layers": population.metal_layers,
        "extras": population.extras,
    }
    axes = tuple(
        Axis("sample", axis.coordinates, payload=_SharedPopulation())
        if axis.name == "sample"
        else axis
        for axis in plan.axes
    )
    return replace(plan, axes=axes), shm, meta


def _restore_population(plan: SweepPlan, population: TechnologyArray) -> SweepPlan:
    axes = tuple(
        Axis("sample", axis.coordinates, payload=population)
        if axis.name == "sample" and isinstance(axis.payload, _SharedPopulation)
        else axis
        for axis in plan.axes
    )
    return replace(plan, axes=axes)


def _rebuild_population(meta: Mapping[str, Any], shm) -> TechnologyArray:
    columns = {
        key: np.ndarray(shape, dtype=np.float64, buffer=shm.buf, offset=offset)
        for key, offset, shape in meta["fields"]
    }
    return technology_array_from_columns(
        name=meta["name"],
        feature_size_um=meta["feature_size_um"],
        min_width_um=meta["min_width_um"],
        metal_layers=meta["metal_layers"],
        extras=meta["extras"],
        columns=columns,
    )


def _evaluate_shared_tile(plan: SweepPlan, tile: Tile, meta, shm) -> np.ndarray:
    # Local scope on purpose: every shared-memory view dies with this
    # frame, so the caller's shm.close() finds no exported buffers.
    restored = _restore_population(plan, _rebuild_population(meta, shm))
    return np.ascontiguousarray(subplan(restored, tile)._execute_dense().values)


def _noop() -> None:
    """Prewarm task: forces the lazy pool to actually spawn workers."""


def _run_remote_tile(plan: SweepPlan, tile: Tile, meta) -> np.ndarray:
    """Worker entry: evaluate one tile densely and return its values."""
    if meta is None:
        return subplan(plan, tile)._execute_dense().values
    shm = _attach_shared_memory(meta["shm_name"])
    try:
        return _evaluate_shared_tile(plan, tile, meta, shm)
    finally:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - stray view; dies with worker
            pass


#: Reused worker pools, keyed by (start method, worker count).  Reuse
#: amortizes worker startup across the many small sweeps of a test lane
#: or a sweep service; pools are torn down at interpreter exit.
_POOLS: Dict[Tuple[Optional[str], int], _PoolImpl] = {}


def _shutdown_pools() -> None:  # pragma: no cover - exit hook
    for pool in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()


atexit.register(_shutdown_pools)


class ProcessExecutor(Executor):
    """Multiprocess backend over a shared-memory population transport.

    Each tile is one task: the worker receives the pickled plan
    *skeleton* (axes, base context — kilobytes) plus the tile bounds,
    attaches the population's shared-memory columns, rebuilds the
    :class:`~repro.tech.stacked.TechnologyArray` zero-copy, slices its
    rows for the tile and evaluates densely.  Results stream back in
    completion order.

    Worker processes get a cold :class:`~repro.thermal.operator.ThermalOperator`
    cache (cold under ``spawn``; a frozen copy-on-write snapshot under
    ``fork``): factorizations are warmed per tile inside the worker and
    are never pickled across the process boundary.
    """

    name = "process"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        start_method: Optional[str] = None,
        reuse: bool = True,
    ) -> None:
        workers = int(max_workers) if max_workers else (os.cpu_count() or 1)
        if workers < 1:
            raise SweepError("max_workers must be at least 1")
        self.max_workers = workers
        self.start_method = (
            start_method if start_method is not None else _preferred_start_method()
        )
        self.reuse = reuse

    def _pool(self) -> _PoolImpl:
        key = (self.start_method, self.max_workers)
        pool = _POOLS.get(key) if self.reuse else None
        if pool is None:
            context = (
                multiprocessing.get_context(self.start_method)
                if self.start_method
                else None
            )
            pool = _PoolImpl(
                max_workers=self.max_workers,
                mp_context=context,
                initializer=_worker_initializer,
            )
            if self.reuse:
                _POOLS[key] = pool
        return pool

    def prewarm(self) -> None:
        """Spin the worker pool up eagerly (it otherwise spawns lazily).

        ``ProcessPoolExecutor`` forks/spawns workers on first submit, so
        a long-lived embedder (the sweep service) would pay pool startup
        on its first request; submitting one no-op per slot moves that
        cost to initialization time.
        """
        pool = self._pool()
        for future in [pool.submit(_noop) for _ in range(self.max_workers)]:
            future.result()

    def run_tiles(self, tiling: TilingPlan) -> Iterator[Tuple[Tile, np.ndarray]]:
        skeleton, shm, meta = _export_population(tiling.plan)
        pool = self._pool()
        try:
            try:
                futures = {
                    pool.submit(_run_remote_tile, skeleton, tile, meta): tile
                    for tile in tiling.tiles
                }
            except Exception:
                # A broken reused pool (e.g. a worker killed by a
                # previous run) must not poison every later sweep.
                _POOLS.pop((self.start_method, self.max_workers), None)
                raise
            for future in as_completed(futures):
                yield futures[future], future.result()
        finally:
            if not self.reuse:
                pool.shutdown(wait=True, cancel_futures=True)
            if shm is not None:
                shm.close()
                shm.unlink()


# --------------------------------------------------------------------------- #
# resolution and orchestration
# --------------------------------------------------------------------------- #

_EXECUTOR_FACTORIES = {
    "serial": lambda workers: SerialExecutor(),
    "memmap": lambda workers: MemmapExecutor(),
    "process": lambda workers: ProcessExecutor(max_workers=workers),
}


def make_executor(name: str, max_workers: Optional[int] = None) -> Executor:
    """Build a backend from its name (``serial``/``process``/``memmap``)."""
    factory = _EXECUTOR_FACTORIES.get(name.strip().lower())
    if factory is None:
        raise SweepError(
            f"unknown executor {name!r}; choose one of "
            f"{tuple(sorted(_EXECUTOR_FACTORIES))} (or 'dense')"
        )
    return factory(max_workers)


def resolve_executor(executor: Any) -> Optional[Executor]:
    """Resolve an executor argument (or the environment) to a backend.

    ``None`` consults :data:`EXECUTOR_ENV`; an unset/empty/``dense``
    value means "no backend" (the dense single-pass path).  Strings name
    a backend; executor instances pass through.
    """
    if executor is None:
        name = os.environ.get(EXECUTOR_ENV, "").strip().lower()
        if not name or name in ("dense", "none"):
            return None
        workers_env = os.environ.get(WORKERS_ENV, "").strip()
        workers = int(workers_env) if workers_env else None
        return make_executor(name, max_workers=workers)
    if isinstance(executor, str):
        if executor.strip().lower() in ("dense", "none"):
            return None
        return make_executor(executor)
    if isinstance(executor, Executor) or callable(
        getattr(executor, "run_tiles", None)
    ):
        return executor
    raise SweepError(
        f"executor must be an Executor, a backend name or None, got "
        f"{type(executor).__name__}"
    )


def _normalise_reducers(reducers: Any) -> Tuple[Dict[str, Any], bool]:
    if reducers is None:
        raise SweepError("reduce() needs at least one streaming reducer")
    if isinstance(reducers, Mapping):
        mapping = dict(reducers)
        single = False
    else:
        mapping = {"result": reducers}
        single = True
    if not mapping:
        raise SweepError("reduce() needs at least one streaming reducer")
    for name, reducer in mapping.items():
        for method in ("prepare", "update", "result"):
            if not callable(getattr(reducer, method, None)):
                raise SweepError(
                    f"reducer {name!r} ({type(reducer).__name__}) does not "
                    f"implement {method}()"
                )
    return mapping, single


def run_plan(
    plan: SweepPlan,
    executor: Optional[Executor] = None,
    max_tile_elements: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
    reducers: Any = None,
    keep_values: bool = True,
):
    """Tile a plan, run it through a backend, assemble and/or reduce.

    The workhorse behind :meth:`SweepPlan.execute` (``keep_values=True``:
    assemble the labeled result, optionally feeding reducers on the way)
    and :meth:`SweepPlan.reduce` (``keep_values=False``: stream tiles
    through the reducers only — the full tensor never exists).
    """
    if not keep_values and reducers is None:
        raise SweepError("reduce() needs at least one streaming reducer")
    if executor is None:
        executor = SerialExecutor()
    if memory_budget_bytes is None:
        memory_budget_bytes = getattr(executor, "memory_budget_bytes", None)
    if max_tile_elements is None:
        tile_env = os.environ.get(TILE_ELEMENTS_ENV, "").strip()
        if tile_env:
            max_tile_elements = int(tile_env)
    tiling = plan_tiles(
        plan,
        max_tile_elements=max_tile_elements,
        memory_budget_bytes=memory_budget_bytes,
    )
    reducer_map: Dict[str, Any] = {}
    single = False
    if reducers is not None:
        reducer_map, single = _normalise_reducers(reducers)
        for reducer in reducer_map.values():
            reducer.prepare(tiling)
    sink: Optional[np.ndarray] = None
    for tile, values in executor.run_tiles(tiling):
        if keep_values:
            if sink is None:
                sink = executor.allocate(tiling.shape, values.dtype)
            sink[tile.slices(tiling.dims)] = values
        for reducer in reducer_map.values():
            reducer.update(tiling, tile, values)
    if keep_values:
        assert sink is not None  # a tiling always has at least one tile
        result = SweepResult(
            values=sink,
            dims=tiling.dims,
            coords=tiling.coords,
            observable=plan.observable,
        )
        if not reducer_map:
            return result
        reduced = {name: reducer.result(tiling) for name, reducer in reducer_map.items()}
        return result, (reduced["result"] if single else reduced)
    reduced = {name: reducer.result(tiling) for name, reducer in reducer_map.items()}
    return reduced["result"] if single else reduced
