"""The batch-evaluation façade — a thin adapter over the declarative sweep API.

Through PR 1/2 this module *was* the batch engine: a dozen
signature-mirroring pass-through methods, one per workload.  The engine
proper now lives in :mod:`repro.engine.sweep` — named axes
(``configuration`` / ``width_ratio`` / ``supply`` / ``sample`` /
``temperature``) composed declaratively and lowered onto numpy
broadcast dimensions in canonical order — and in the stacked data
layouts that back it (:mod:`repro.tech.stacked` for the sample and
supply axes, :mod:`repro.oscillator.bank` for the configuration axis).

:class:`BatchEvaluator` remains as the backward-compatible adapter:

* the ring primitives (:meth:`~BatchEvaluator.period_series`,
  :meth:`~BatchEvaluator.period_matrix`) build the equivalent one-axis
  / two-axis :class:`~repro.engine.sweep.Sweep` and return its raw
  values,
* the workload methods (:meth:`~BatchEvaluator.run_monte_carlo`,
  :meth:`~BatchEvaluator.sweep_width_ratio`, ... ) delegate to the free
  functions in :mod:`repro.analysis` / :mod:`repro.optimize` /
  :mod:`repro.experiments`, whose vectorized paths are themselves
  written on the sweep API, and
* ``BatchEvaluator(vectorized=False)`` still routes every workload
  through the original scalar loops — the reference oracle pinned by
  ``tests/test_engine_equivalence.py`` and
  ``tests/test_stacked_equivalence.py`` to a relative tolerance of
  1e-9 on periods.

Deprecation story: direct ``BatchEvaluator`` method calls keep working
(and keep their exact numerical behaviour — the adapter lowers onto the
same broadcasts), but new workloads should be written as
:class:`~repro.engine.sweep.Sweep` expressions; an axis added there is
available to *every* workload at once instead of growing this façade by
another mirrored method.  Two deliberate differences from the pre-sweep
façade: vectorized ring primitives now validate the temperature grid up
front (a non-finite grid raises
:class:`~repro.engine.sweep.SweepError` instead of silently propagating
NaN periods), and the delegating workload methods take ``*args`` /
``**kwargs`` — each docstring links the free function that documents
the full signature.
"""

from __future__ import annotations

from importlib import import_module
from typing import Dict, Optional, Sequence

import numpy as np

from ..tech.stacked import TechnologyArray
from .sweep import Axis, Sweep

__all__ = ["BatchEvaluator"]


def _delegated(module: str, name: str, doc: str):
    """A workload method delegating to a mode-aware free function.

    The target is imported lazily at call time: the study modules import
    :mod:`repro.engine` themselves, so binding them at class-definition
    time would make the import graph cyclic.
    """

    def method(self, *args, **kwargs):
        function = getattr(import_module(module), name)
        return function(*args, scalar=self._scalar, **kwargs)

    method.__name__ = name
    method.__qualname__ = f"BatchEvaluator.{name}"
    method.__doc__ = (
        f"{doc}\n\n        Same contract as :func:`{module}.{name}`, with the"
        "\n        evaluation mode supplied by this evaluator.\n        "
    )
    return method


class BatchEvaluator:
    """Runs ring, sensor and population workloads in batch.

    Parameters
    ----------
    vectorized:
        ``True`` (default) evaluates through the declarative sweep API's
        broadcast lowering; ``False`` routes every workload through the
        original scalar loops, which serve as the reference oracle for
        the equivalence tests.  Both modes produce the same result
        objects, so callers can switch freely.
    """

    def __init__(self, vectorized: bool = True) -> None:
        self.vectorized = bool(vectorized)

    @property
    def _scalar(self) -> bool:
        return not self.vectorized

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "vectorized" if self.vectorized else "scalar"
        return f"BatchEvaluator({mode})"

    # ------------------------------------------------------------------ #
    # ring-level primitives (lowered onto Sweep directly)
    # ------------------------------------------------------------------ #

    def period_series(self, ring, temperatures_c: Sequence[float]) -> np.ndarray:
        """Periods (s) of one ring over a temperature grid."""
        if self._scalar:
            return ring.period_series_scalar(temperatures_c)
        return Sweep(ring=ring).over(Axis.temperature(temperatures_c)).run().values

    def period_matrix(
        self, ring, technologies, temperatures_c: Sequence[float]
    ) -> np.ndarray:
        """Periods (s) on a (technology sample x temperature) grid.

        Vectorized mode lowers the two named axes onto one stacked
        broadcast; scalar mode evaluates every grid point through one
        scalar call, preserving the oracle property.
        """
        if self.vectorized:
            return (
                Sweep(ring=ring)
                .over(Axis.sample(technologies))
                .over(Axis.temperature(temperatures_c))
                .run()
                .values
            )
        if isinstance(technologies, TechnologyArray):
            technologies = technologies.technologies()
        temps = np.asarray(temperatures_c, dtype=float)
        matrix = np.zeros((len(technologies), temps.size))
        for row, tech in enumerate(technologies):
            matrix[row] = ring.rebind(tech).period_series_scalar(temps)
        return matrix

    def response(self, ring, temperatures_c: Optional[Sequence[float]] = None):
        """Temperature response of one ring (label + periods)."""
        from ..oscillator.period import analytical_response

        return analytical_response(ring, temperatures_c, scalar=self._scalar)

    # ------------------------------------------------------------------ #
    # sensor-level workloads (quantisation lives in the sensor model)
    # ------------------------------------------------------------------ #

    def transfer_function(self, sensor, temperatures_c: Optional[Sequence[float]] = None):
        """Quantised code-versus-temperature curve of a smart sensor."""
        return sensor.transfer_function(temperatures_c, scalar=self._scalar)

    def transfer_functions(
        self, sensors, temperatures_c: Optional[Sequence[float]] = None
    ) -> Dict[str, object]:
        """Transfer functions of a whole sensor bank, keyed by name."""
        return {
            sensor.name: self.transfer_function(sensor, temperatures_c)
            for sensor in sensors
        }

    # ------------------------------------------------------------------ #
    # workload delegation (the free functions are sweep-backed)
    # ------------------------------------------------------------------ #

    run_monte_carlo = _delegated(
        "repro.analysis.montecarlo",
        "run_monte_carlo",
        "Monte-Carlo linearity/spread study of one configuration.",
    )
    sweep_width_ratio = _delegated(
        "repro.optimize.sizing",
        "sweep_width_ratio",
        "Fig. 2 Wp/Wn sizing sweep (the width_ratio axis).",
    )
    optimize_width_ratio = _delegated(
        "repro.optimize.sizing",
        "optimize_width_ratio",
        "Continuous Fig. 2 optimum by bounded scalar minimisation.",
    )
    evaluate_configuration = _delegated(
        "repro.optimize.cellmix",
        "evaluate_configuration",
        "Linearity/area evaluation of one cell mix.",
    )
    search_cell_mix = _delegated(
        "repro.optimize.cellmix",
        "search_cell_mix",
        "Fig. 3 exhaustive cell-mix ranking (the configuration axis).",
    )
    run_calibration_study = _delegated(
        "repro.experiments.calibration_study",
        "run_calibration_study",
        "Calibration-scheme ablation (ABL-CAL) over the process spread.",
    )
    supply_sensitivity = _delegated(
        "repro.analysis.supply",
        "supply_sensitivity",
        "Supply cross-sensitivity (the supply axis finite difference).",
    )
    run_selfheating_study = _delegated(
        "repro.experiments.selfheating_study",
        "run_selfheating_study",
        "Self-heating ablation (ABL-SELFHEAT) via thermal linearity.",
    )
