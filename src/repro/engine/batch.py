"""The vectorized batch-evaluation engine.

Every paper-facing artefact — the Fig. 2 sizing sweep, the Fig. 3
cell-mix sweep, the Monte-Carlo calibration argument, the smart unit's
transfer function — is built from thousands of repeated ring-period
evaluations.  The scalar paths evaluate one ``(ring, temperature)``
point per Python call; this module provides the batch alternative:

* the delay stack (:mod:`repro.tech.temperature`,
  :mod:`repro.delay.alpha_power`, :mod:`repro.cells.cell`) broadcasts
  over ndarray temperature grids *and*, through the struct-of-arrays
  technology populations of :mod:`repro.tech.stacked`
  (:class:`~repro.tech.stacked.TechnologyArray`), over a leading
  technology-sample axis: a whole Monte-Carlo or corner population
  evaluates as one ``(sample x temperature)`` broadcast,
* :meth:`repro.oscillator.ring.RingOscillator.period_series` sums the
  per-stage delay vectors in one pass, and
  :meth:`~repro.oscillator.ring.RingOscillator.period_matrix` stacks the
  technology samples and gets the whole (sample x temperature) period
  matrix from that same single stage-sum — no per-sample rebind,
* :class:`BatchEvaluator` (this module) is the façade that runs whole
  workloads — Monte-Carlo populations, transfer functions, sizing and
  cell-mix sweeps, the calibration ablation, the supply-sensitivity and
  self-heating studies — through either the vectorized path or the
  original scalar loops.

The scalar loops are deliberately kept alive: they are the *reference
oracle*.  ``BatchEvaluator(vectorized=False)`` reproduces the
pre-engine behaviour step for step;
``tests/test_engine_equivalence.py`` pins the temperature axis and
``tests/test_stacked_equivalence.py`` pins the sample axis (stacked
population versus the retained per-sample loop,
:meth:`~repro.oscillator.ring.RingOscillator.period_matrix_loop`) to a
relative tolerance of 1e-9 on periods (in practice they agree to a few
ULP; the only operation whose libm/numpy implementations may differ in
the last bit is ``pow``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..analysis.montecarlo import MonteCarloStudy, run_monte_carlo
from ..cells.library import CellLibrary
from ..core.sensor import SensorTransferFunction, SmartTemperatureSensor
from ..optimize.cellmix import (
    CellMixCandidate,
    CellMixSearchResult,
    DEFAULT_MIX_CELLS,
    evaluate_configuration,
    search_cell_mix,
)
from ..optimize.sizing import (
    PAPER_FIG2_RATIOS,
    SizingPoint,
    SizingSweepResult,
    optimize_width_ratio,
    sweep_width_ratio,
)
from ..oscillator.config import RingConfiguration
from ..oscillator.period import TemperatureResponse, analytical_response
from ..oscillator.ring import RingOscillator
from ..tech.corners import VariationModel
from ..tech.parameters import Technology
from ..tech.stacked import TechnologyArray

__all__ = ["BatchEvaluator"]


class BatchEvaluator:
    """Runs ring, sensor and Monte-Carlo workloads in batch.

    Parameters
    ----------
    vectorized:
        ``True`` (default) evaluates through the ndarray broadcast path;
        ``False`` routes every workload through the original scalar
        loops, which serve as the reference oracle for the equivalence
        tests.  Both modes produce the same result objects, so callers
        can switch freely.
    """

    def __init__(self, vectorized: bool = True) -> None:
        self.vectorized = bool(vectorized)

    @property
    def _scalar(self) -> bool:
        return not self.vectorized

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "vectorized" if self.vectorized else "scalar"
        return f"BatchEvaluator({mode})"

    # ------------------------------------------------------------------ #
    # ring-level primitives
    # ------------------------------------------------------------------ #

    def period_series(
        self, ring: RingOscillator, temperatures_c: Sequence[float]
    ) -> np.ndarray:
        """Periods (s) of one ring over a temperature grid."""
        if self.vectorized:
            return ring.period_series(temperatures_c)
        return ring.period_series_scalar(temperatures_c)

    def period_matrix(
        self,
        ring: RingOscillator,
        technologies: Sequence[Technology],
        temperatures_c: Sequence[float],
    ) -> np.ndarray:
        """Periods (s) on a (technology sample x temperature) grid.

        Vectorized mode stacks the technologies into one
        struct-of-arrays population and broadcasts both axes in a single
        pass.  In scalar mode every grid point is still evaluated
        through one scalar call, preserving the oracle property.
        """
        if self.vectorized:
            return ring.period_matrix(technologies, temperatures_c)
        if isinstance(technologies, TechnologyArray):
            technologies = technologies.technologies()
        temps = np.asarray(temperatures_c, dtype=float)
        matrix = np.zeros((len(technologies), temps.size))
        for row, tech in enumerate(technologies):
            rebound = ring.rebind(tech)
            matrix[row] = rebound.period_series_scalar(temps)
        return matrix

    def response(
        self,
        ring: RingOscillator,
        temperatures_c: Optional[Sequence[float]] = None,
    ) -> TemperatureResponse:
        """Temperature response of one ring (label + periods)."""
        return analytical_response(ring, temperatures_c, scalar=self._scalar)

    # ------------------------------------------------------------------ #
    # sensor-level workloads
    # ------------------------------------------------------------------ #

    def transfer_function(
        self,
        sensor: SmartTemperatureSensor,
        temperatures_c: Optional[Sequence[float]] = None,
    ) -> SensorTransferFunction:
        """Quantised code-versus-temperature curve of a smart sensor."""
        return sensor.transfer_function(temperatures_c, scalar=self._scalar)

    def transfer_functions(
        self,
        sensors: Sequence[SmartTemperatureSensor],
        temperatures_c: Optional[Sequence[float]] = None,
    ) -> Dict[str, SensorTransferFunction]:
        """Transfer functions of a whole sensor bank, keyed by name."""
        return {
            sensor.name: self.transfer_function(sensor, temperatures_c)
            for sensor in sensors
        }

    # ------------------------------------------------------------------ #
    # population-level workloads
    # ------------------------------------------------------------------ #

    def run_monte_carlo(
        self,
        base_technology: Technology,
        configuration: RingConfiguration,
        sample_count: int = 25,
        temperatures_c: Optional[Sequence[float]] = None,
        reference_temperature_c: float = 25.0,
        variation: Optional[VariationModel] = None,
        seed: Optional[int] = 1234,
        ring_builder: Optional[
            Callable[[Technology, RingConfiguration], RingOscillator]
        ] = None,
    ) -> MonteCarloStudy:
        """Monte-Carlo linearity/spread study of one configuration.

        Same contract as :func:`repro.analysis.montecarlo.run_monte_carlo`
        with the evaluation mode supplied by this evaluator.
        """
        return run_monte_carlo(
            base_technology,
            configuration,
            sample_count=sample_count,
            temperatures_c=temperatures_c,
            reference_temperature_c=reference_temperature_c,
            variation=variation,
            seed=seed,
            ring_builder=ring_builder,
            scalar=self._scalar,
        )

    def sweep_width_ratio(
        self,
        technology: Technology,
        ratios: Sequence[float] = PAPER_FIG2_RATIOS,
        nmos_width_um: float = 1.05,
        stage_count: int = 5,
        temperatures_c: Optional[Sequence[float]] = None,
        fit_method: str = "endpoint",
    ) -> SizingSweepResult:
        """Fig. 2 Wp/Wn sizing sweep through this evaluator's mode."""
        return sweep_width_ratio(
            technology,
            ratios=ratios,
            nmos_width_um=nmos_width_um,
            stage_count=stage_count,
            temperatures_c=temperatures_c,
            fit_method=fit_method,
            scalar=self._scalar,
        )

    def optimize_width_ratio(
        self,
        technology: Technology,
        ratio_bounds: Sequence[float] = (1.0, 6.0),
        nmos_width_um: float = 1.05,
        stage_count: int = 5,
        temperatures_c: Optional[Sequence[float]] = None,
        fit_method: str = "endpoint",
    ) -> SizingPoint:
        """Continuous Fig. 2 optimum through this evaluator's mode."""
        return optimize_width_ratio(
            technology,
            ratio_bounds=ratio_bounds,
            nmos_width_um=nmos_width_um,
            stage_count=stage_count,
            temperatures_c=temperatures_c,
            fit_method=fit_method,
            scalar=self._scalar,
        )

    def evaluate_configuration(
        self,
        library: CellLibrary,
        configuration: RingConfiguration,
        temperatures_c: Optional[Sequence[float]] = None,
        fit_method: str = "endpoint",
    ) -> CellMixCandidate:
        """Linearity/area evaluation of one cell mix."""
        return evaluate_configuration(
            library,
            configuration,
            temperatures_c,
            fit_method,
            scalar=self._scalar,
        )

    def search_cell_mix(
        self,
        library: CellLibrary,
        cell_names: Sequence[str] = DEFAULT_MIX_CELLS,
        stage_count: int = 5,
        temperatures_c: Optional[Sequence[float]] = None,
        fit_method: str = "endpoint",
        top_k: int = 10,
    ) -> CellMixSearchResult:
        """Fig. 3 exhaustive cell-mix ranking through this evaluator's mode."""
        return search_cell_mix(
            library,
            cell_names=cell_names,
            stage_count=stage_count,
            temperatures_c=temperatures_c,
            fit_method=fit_method,
            top_k=top_k,
            scalar=self._scalar,
        )

    # ------------------------------------------------------------------ #
    # study-level workloads
    # ------------------------------------------------------------------ #
    # The study functions live in repro.experiments / repro.analysis /
    # repro.thermal, some of which import this module at load time, so
    # they are imported lazily here to keep the import graph acyclic.

    def run_calibration_study(self, *args, **kwargs):
        """Calibration-scheme ablation (ABL-CAL) through this evaluator's mode.

        Same contract as
        :func:`repro.experiments.calibration_study.run_calibration_study`:
        vectorized mode evaluates the whole corner + Monte-Carlo
        population as one stacked ``(sample x temperature)`` batch,
        scalar mode keeps the original one-sensor-per-sample loop.
        """
        from ..experiments.calibration_study import run_calibration_study

        return run_calibration_study(*args, scalar=self._scalar, **kwargs)

    def supply_sensitivity(self, *args, **kwargs):
        """Supply cross-sensitivity through this evaluator's mode.

        Same contract as :func:`repro.analysis.supply.supply_sensitivity`;
        vectorized mode evaluates the supply finite difference as one
        stacked two-supply population instead of rebuilding the cell
        library at every supply point.
        """
        from ..analysis.supply import supply_sensitivity

        return supply_sensitivity(*args, scalar=self._scalar, **kwargs)

    def run_selfheating_study(self, *args, **kwargs):
        """Self-heating ablation (ABL-SELFHEAT) through this evaluator's mode.

        Same contract as
        :func:`repro.experiments.selfheating_study.run_selfheating_study`;
        vectorized mode exploits the linearity of the thermal network
        (two steady-state solves for the whole duty-cycle sweep), scalar
        mode keeps the one-solve-per-duty-cycle loop as the oracle.
        """
        from ..experiments.selfheating_study import run_selfheating_study

        return run_selfheating_study(*args, scalar=self._scalar, **kwargs)
