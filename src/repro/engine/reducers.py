"""Streaming reducers: aggregate a tiled sweep without the full tensor.

A reducer consumes tile sub-tensors as the executor produces them and
finalizes an aggregate once every tile has arrived, so
:meth:`~repro.engine.sweep.Sweep.reduce` can summarize a sweep whose
dense result would never fit in memory.  The protocol is three calls:

``prepare(tiling)``
    Allocate accumulators for the tiling's full shape.
``update(tiling, tile, values)``
    Fold one tile's dense sub-tensor in.  Tiles may arrive in any
    order (the process backend streams them in completion order) and
    each result element is covered exactly once.
``result(tiling)``
    Finalize and return the aggregate.

Reduction happens over the *reduced* dims (``dims=None`` means all of
them, collapsing to a scalar); the remaining dims are kept, so
``MeanReducer(dims=("sample",))`` on a ``sample x temperature`` sweep
returns a per-temperature curve.

Exactness: :class:`MeanReducer` accumulates per-tile partial sums, so it
matches ``np.mean`` up to summation-order rounding (well inside 1e-12
for paper-scale sweeps).  :class:`PercentileReducer` is *exact* — it
stages values into an unlinked disk-backed scratch array (RAM stays
bounded by one tile plus one finalize slab) and runs ``np.percentile``
over the assembled reduced axis at finalize time; with no kept dims the
final slab is the whole reduced axis, the unavoidable cost of an exact
percentile.  :class:`HistogramReducer` needs a fixed ``range`` up front
(bin edges must agree across tiles) and accumulates counts exactly.
"""

from __future__ import annotations

import tempfile
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from .sweep import SweepError
from .tiling import Tile, TilingPlan

__all__ = [
    "MeanReducer",
    "PercentileReducer",
    "HistogramReducer",
]


def _split_dims(
    tiling: TilingPlan, dims: Optional[Sequence[str]]
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Partition the tiling's dims into (kept, reduced)."""
    if dims is None:
        reduced = tuple(tiling.dims)
    else:
        reduced = tuple(dims)
        unknown = [name for name in reduced if name not in tiling.dims]
        if unknown:
            raise SweepError(
                f"cannot reduce over {unknown}; sweep dims are {list(tiling.dims)}"
            )
        if len(set(reduced)) != len(reduced):
            raise SweepError(f"duplicate reduction dims in {list(reduced)}")
    if not reduced:
        raise SweepError("reduction needs at least one dim")
    kept = tuple(name for name in tiling.dims if name not in reduced)
    return kept, reduced


def _tile_extent(tiling: TilingPlan, tile: Tile, name: str) -> Tuple[int, int]:
    span = tile.bounds_for(name)
    if span is not None:
        return span
    return (0, tiling.shape[tiling.dims.index(name)])


class _AxisReducer:
    """Shared kept/reduced-dim bookkeeping for mean and percentile."""

    def __init__(self, dims: Optional[Sequence[str]] = None) -> None:
        self.dims = tuple(dims) if dims is not None else None
        self._kept: Tuple[str, ...] = ()
        self._reduced: Tuple[str, ...] = ()
        self._kept_shape: Tuple[int, ...] = ()
        self._reduced_shape: Tuple[int, ...] = ()

    def _bind(self, tiling: TilingPlan) -> None:
        self._kept, self._reduced = _split_dims(tiling, self.dims)
        sizes = dict(zip(tiling.dims, tiling.shape))
        self._kept_shape = tuple(sizes[name] for name in self._kept)
        self._reduced_shape = tuple(sizes[name] for name in self._reduced)

    def _reduced_total(self) -> int:
        return int(np.prod(self._reduced_shape, dtype=np.int64)) if self._reduced else 1

    def _rearranged(
        self, tiling: TilingPlan, values: np.ndarray
    ) -> np.ndarray:
        """A tile's values with kept dims leading and reduced dims flattened last."""
        order = [tiling.dims.index(name) for name in self._kept] + [
            tiling.dims.index(name) for name in self._reduced
        ]
        moved = np.transpose(values, order)
        kept_extent = moved.shape[: len(self._kept)]
        return moved.reshape(kept_extent + (-1,))

    def _kept_index(self, tiling: TilingPlan, tile: Tile) -> Tuple[slice, ...]:
        return tuple(
            slice(*_tile_extent(tiling, tile, name)) for name in self._kept
        )

    def _reduced_flat_index(self, tiling: TilingPlan, tile: Tile) -> np.ndarray:
        """Flat positions of the tile's reduced block inside the reduced space."""
        ranges = [
            np.arange(*_tile_extent(tiling, tile, name)) for name in self._reduced
        ]
        mesh = np.meshgrid(*ranges, indexing="ij")
        return np.ravel_multi_index(
            tuple(m.ravel() for m in mesh), self._reduced_shape
        )


class MeanReducer(_AxisReducer):
    """Streaming arithmetic mean over the reduced dims."""

    def __init__(self, dims: Optional[Sequence[str]] = None) -> None:
        super().__init__(dims)
        self._sums: Optional[np.ndarray] = None

    def prepare(self, tiling: TilingPlan) -> None:
        self._bind(tiling)
        self._sums = np.zeros(self._kept_shape, dtype=np.float64)

    def update(self, tiling: TilingPlan, tile: Tile, values: np.ndarray) -> None:
        assert self._sums is not None
        partial = self._rearranged(tiling, values).sum(axis=-1, dtype=np.float64)
        self._sums[self._kept_index(tiling, tile)] += partial

    def result(self, tiling: TilingPlan) -> Any:
        assert self._sums is not None
        mean = self._sums / float(self._reduced_total())
        return float(mean) if mean.ndim == 0 else mean


class PercentileReducer(_AxisReducer):
    """Exact streaming percentile via a disk-backed scratch array.

    Tiles scatter their values into an unlinked temporary-file memmap
    shaped ``kept_shape + (reduced_total,)``; finalize runs
    ``np.percentile`` slab-by-slab (``slab_elements`` bounds how much of
    the scratch is resident at once).  ``q`` may be a scalar or a
    sequence, exactly as ``np.percentile`` accepts.
    """

    def __init__(
        self,
        q: Any,
        dims: Optional[Sequence[str]] = None,
        slab_elements: int = 1 << 22,
    ) -> None:
        super().__init__(dims)
        self.q = q
        if int(slab_elements) < 1:
            raise SweepError("slab_elements must be at least 1")
        self.slab_elements = int(slab_elements)
        self._scratch: Optional[np.ndarray] = None

    def prepare(self, tiling: TilingPlan) -> None:
        self._bind(tiling)
        shape = self._kept_shape + (self._reduced_total(),)
        handle = tempfile.TemporaryFile(prefix="sweep-pct-", suffix=".scratch")
        self._scratch = np.memmap(handle, dtype=np.float64, mode="w+", shape=shape)

    def update(self, tiling: TilingPlan, tile: Tile, values: np.ndarray) -> None:
        assert self._scratch is not None
        index = self._kept_index(tiling, tile) + (
            self._reduced_flat_index(tiling, tile),
        )
        self._scratch[index] = self._rearranged(tiling, values)

    def result(self, tiling: TilingPlan) -> Any:
        assert self._scratch is not None
        q_array = np.asarray(self.q, dtype=np.float64)
        reduced_total = self._reduced_total()
        kept_total = (
            int(np.prod(self._kept_shape, dtype=np.int64)) if self._kept_shape else 1
        )
        flat = self._scratch.reshape(kept_total, reduced_total)
        rows_per_slab = max(1, self.slab_elements // max(1, reduced_total))
        out = np.empty(q_array.shape + (kept_total,), dtype=np.float64)
        for start in range(0, kept_total, rows_per_slab):
            stop = min(start + rows_per_slab, kept_total)
            slab = np.asarray(flat[start:stop])
            out[..., start:stop] = np.percentile(slab, q_array, axis=-1)
        out = out.reshape(q_array.shape + self._kept_shape)
        if out.ndim == 0:
            return float(out)
        return out


class HistogramReducer:
    """Streaming histogram with fixed, pre-declared bin edges.

    ``range`` is required: tiles are binned independently, so every
    update must agree on the edges — inferring them from the first tile
    would silently mis-bin later tiles.  Values outside ``range`` are
    dropped (``np.histogram`` semantics).  ``result`` returns
    ``(counts, edges)``.
    """

    def __init__(self, bins: int = 64, range: Optional[Tuple[float, float]] = None):
        if range is None:
            raise SweepError(
                "HistogramReducer needs an explicit range=(lo, hi); bin edges "
                "must be identical across tiles"
            )
        lo, hi = float(range[0]), float(range[1])
        if not lo < hi:
            raise SweepError(f"histogram range must satisfy lo < hi, got {(lo, hi)}")
        if int(bins) < 1:
            raise SweepError("bins must be at least 1")
        self.bins = int(bins)
        self.range = (lo, hi)
        self._edges = np.histogram_bin_edges([], bins=self.bins, range=self.range)
        self._counts: Optional[np.ndarray] = None

    def prepare(self, tiling: TilingPlan) -> None:
        self._counts = np.zeros(self.bins, dtype=np.int64)

    def update(self, tiling: TilingPlan, tile: Tile, values: np.ndarray) -> None:
        assert self._counts is not None
        counts, _ = np.histogram(
            np.asarray(values, dtype=np.float64).ravel(),
            bins=self.bins,
            range=self.range,
        )
        self._counts += counts

    def result(self, tiling: TilingPlan) -> Tuple[np.ndarray, np.ndarray]:
        assert self._counts is not None
        return self._counts.copy(), self._edges.copy()
