"""Vectorized batch evaluation of rings, sensors and populations.

See :mod:`repro.engine.batch` for the design; the public entry point is
:class:`BatchEvaluator`.
"""

from .batch import BatchEvaluator

__all__ = ["BatchEvaluator"]
