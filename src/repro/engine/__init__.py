"""Batch evaluation: the declarative sweep API and its compat façade.

:mod:`repro.engine.sweep` is the engine proper — named-axis workloads
(:class:`Sweep` / :class:`Axis`) lowered onto numpy broadcast
dimensions in canonical order, returning labeled
:class:`SweepResult` tensors.  :class:`BatchEvaluator`
(:mod:`repro.engine.batch`) remains as a thin backward-compatible
adapter over it.
"""

from .batch import BatchEvaluator
from .executors import (
    Executor,
    MemmapExecutor,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
    resolve_executor,
)
from .reducers import HistogramReducer, MeanReducer, PercentileReducer
from .sweep import (
    Axis,
    CANONICAL_AXIS_ORDER,
    OBSERVABLES,
    Sweep,
    SweepError,
    SweepPlan,
    SweepResult,
)
from .tiling import Tile, TilingPlan, plan_result_tiles, plan_tiles, subplan

__all__ = [
    "Axis",
    "BatchEvaluator",
    "CANONICAL_AXIS_ORDER",
    "Executor",
    "HistogramReducer",
    "MeanReducer",
    "MemmapExecutor",
    "OBSERVABLES",
    "PercentileReducer",
    "ProcessExecutor",
    "SerialExecutor",
    "Sweep",
    "SweepError",
    "SweepPlan",
    "SweepResult",
    "Tile",
    "TilingPlan",
    "make_executor",
    "plan_result_tiles",
    "plan_tiles",
    "resolve_executor",
    "subplan",
]
