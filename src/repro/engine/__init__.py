"""Batch evaluation: the declarative sweep API and its compat façade.

:mod:`repro.engine.sweep` is the engine proper — named-axis workloads
(:class:`Sweep` / :class:`Axis`) lowered onto numpy broadcast
dimensions in canonical order, returning labeled
:class:`SweepResult` tensors.  :class:`BatchEvaluator`
(:mod:`repro.engine.batch`) remains as a thin backward-compatible
adapter over it.
"""

from .batch import BatchEvaluator
from .sweep import (
    Axis,
    CANONICAL_AXIS_ORDER,
    OBSERVABLES,
    Sweep,
    SweepError,
    SweepPlan,
    SweepResult,
)

__all__ = [
    "Axis",
    "BatchEvaluator",
    "CANONICAL_AXIS_ORDER",
    "OBSERVABLES",
    "Sweep",
    "SweepError",
    "SweepPlan",
    "SweepResult",
]
